//! Quickstart: compile a Pandas-style function to SQL and run it in-database.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pytond_common::{Column, Relation};
use pytond_repro::pytond::{Backend, Dialect, Pytond};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load data into the embedded database (in the paper's setting the
    //    data already lives in the DBMS).
    let py = Pytond::new();
    py.register_table(
        "sales",
        Relation::new(vec![
            (
                "region".into(),
                Column::from_strs(&["eu", "us", "eu", "apac", "us", "eu"]),
            ),
            (
                "amount".into(),
                Column::from_f64(vec![10.0, 20.0, 5.0, 7.5, 12.5, 40.0]),
            ),
            (
                "discount".into(),
                Column::from_f64(vec![0.0, 0.1, 0.0, 0.2, 0.05, 0.1]),
            ),
        ])?,
        &[],
    );

    // 2. Write the analysis exactly as a data scientist would in Pandas,
    //    decorated with @pytond.
    let source = r#"
@pytond
def revenue_by_region(sales):
    s = sales[sales.amount > 6.0]
    s['net'] = s.amount * (1 - s.discount)
    g = s.groupby(['region']).agg(net_total=('net', 'sum'), n=('net', 'count'))
    return g.sort_values(by=['net_total'], ascending=False)
"#;

    // 3. Inspect the pipeline stages.
    let compiled = py.compile(source, Dialect::DuckDb)?;
    println!("--- TondIR (optimized) ---\n{}", compiled.ir_text());
    println!("--- generated SQL ---\n{}\n", compiled.sql);

    // 4. Execute on any backend profile.
    let result = py.execute(&compiled, &Backend::duckdb_sim(1))?;
    println!("--- result ---\n{result}");
    Ok(())
}
