//! Two concurrent clients over one shared database handle: client A fires
//! prepared point queries while client B appends — each query pins one
//! immutable snapshot, and the traces show which version every run saw and
//! how long it queued at the admission gate (see `docs/SERVING.md`).
//!
//! ```text
//! cargo run --release --example serving_clients
//! ```

use pytond_repro::common::{Column, Relation};
use pytond_repro::sqldb::{Database, EngineConfig, Profile};

fn batch(start: i64, rows: i64) -> Relation {
    Relation::new(vec![
        (
            "id".into(),
            Column::from_i64((start..start + rows).collect()),
        ),
        (
            "v".into(),
            Column::from_f64((start..start + rows).map(|i| (i % 97) as f64).collect()),
        ),
    ])
    .unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One database, many handles: `Database` is an Arc-cloneable handle and
    // every method takes `&self`, so clones share the same tables.
    let db = Database::new();
    db.register("events", batch(0, 40_000));

    // Both clients use prepared plans: parse/bind/optimize once, up front.
    let prepared = db.prepare(
        "SELECT COUNT(*) AS n, SUM(v) AS total FROM events WHERE id >= 35000",
        Profile::Vectorized,
    )?;
    let cfg = EngineConfig::default();

    std::thread::scope(|s| -> Result<(), pytond_repro::common::Error> {
        // Client A: a reader re-executing the prepared query. Each call pins
        // the snapshot current at that moment — results always reflect one
        // whole version, never a half-applied append.
        let reader = s.spawn(|| {
            let mut traces = Vec::new();
            for _ in 0..3 {
                let (out, trace) = db.execute_prepared_traced(&prepared, &cfg)?;
                traces.push((out.num_rows(), trace));
                std::thread::yield_now();
            }
            Ok::<_, pytond_repro::common::Error>(traces)
        });

        // Client B: an appender publishing new versions concurrently.
        // In-flight readers keep the version they pinned; only later
        // executions observe the appended rows.
        let writer = s.spawn(|| {
            for k in 0..2 {
                db.append("events", &batch(40_000 + k * 1_000, 1_000))?;
                std::thread::yield_now();
            }
            Ok::<_, pytond_repro::common::Error>(())
        });

        writer.join().expect("writer")?;
        for (rows, trace) in reader.join().expect("reader")? {
            println!("--- reader saw {rows} row(s) ---");
            println!("{}", trace.summary());
        }
        Ok(())
    })?;

    // A final query on the shared handle sees every published append.
    let (_, trace) = db.execute_prepared_traced(&prepared, &cfg)?;
    println!("--- final ---");
    println!("{}", trace.summary());
    Ok(())
}
