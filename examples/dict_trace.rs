//! A string-keyed join running fused on packed dictionary codes: registers a
//! 300 K-row fact table and a 400-row dimension keyed by strings, runs a
//! Q9-style join + grouped aggregate under the `Fused` profile, and prints
//! the real `QueryTrace` — the `dict:` summary line and the
//! `probe(inner, dict-key)` pipeline stage (see
//! `docs/EXECUTION.md#dictionary-encoding-string-columns-in-code-space`).
//!
//! ```text
//! cargo run --release --example dict_trace
//! ```

use pytond_repro::common::{Column, Relation};
use pytond_repro::sqldb::{Database, EngineConfig, Profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 300 K fact rows over 800 distinct string keys; the dimension covers
    // half of them, so the probe both hits and misses.
    let n = 300_000usize;
    let keys: Vec<String> = (0..n)
        .map(|i| format!("supplier-{:04}", i.wrapping_mul(2_654_435_761) % 800))
        .collect();
    let fact = Relation::new(vec![
        (
            "s".into(),
            Column::from_strs(&keys.iter().map(String::as_str).collect::<Vec<_>>()),
        ),
        (
            "v".into(),
            Column::from_f64((0..n).map(|i| (i % 9973) as f64 * 0.25).collect()),
        ),
        ("q".into(), Column::from_i64((0..n as i64).collect())),
    ])?;
    let dim_keys: Vec<String> = (0..400).map(|k| format!("supplier-{k:04}")).collect();
    let dim = Relation::new(vec![
        (
            "s".into(),
            Column::from_strs(&dim_keys.iter().map(String::as_str).collect::<Vec<_>>()),
        ),
        ("w".into(), Column::from_i64((0..400).collect())),
    ])?;

    // `register` dictionary-encodes the string columns at the storage
    // boundary (set PYTOND_NO_DICT=1 to watch the same query fall back to
    // the byte-key probe and lose the dict: counters).
    let db = Database::new();
    db.register("fact", fact);
    db.register("dim", dim);

    let sql = "SELECT dim.s, COUNT(*) AS n, SUM(fact.v) AS sv \
               FROM fact, dim WHERE fact.s = dim.s AND fact.q < 250000 GROUP BY dim.s";
    let cfg = EngineConfig {
        profile: Profile::Fused,
        threads: 4,
        ..EngineConfig::default()
    };
    let (rel, trace) = db.execute_sql_traced(sql, &cfg)?;

    println!("rows: {}", rel.num_rows());
    println!("--- summary ---\n{}", trace.summary());
    if let Some(i) = trace.plan.find("pipelines:") {
        println!("--- pipelines ---\n{}", &trace.plan[i..]);
    }
    Ok(())
}
