//! A standing query absorbing appends through incremental view maintenance:
//! registers a 200 K-row fact table, stands three views over it (a selective
//! filter, a filtered group-by, and a sorted top-N that is *not*
//! delta-eligible), streams a few appends, and prints each view's
//! `view_trace` — the `view:` summary line with the refresh mode
//! (`delta` vs `recompute`), rows propagated and refresh time, plus the
//! per-table eligibility matrix (see `docs/VIEWS.md`).
//!
//! ```text
//! cargo run --release --example mv_trace
//! ```
//!
//! Set `PYTOND_NO_IVM=1` to watch every view fall back to
//! recompute-on-read — the differential oracle for the delta rules.

use pytond_repro::common::{Column, Relation};
use pytond_repro::sqldb::{Database, EngineConfig, Profile};

/// `rows` fact rows starting at row id `start`: a group key over 500
/// distinct values and a float measure.
fn fact(start: usize, rows: usize) -> Relation {
    let k: Vec<i64> = (start..start + rows)
        .map(|i| (i as i64).wrapping_mul(2_654_435_761) % 500)
        .collect();
    let v: Vec<f64> = (start..start + rows)
        .map(|i| (i % 9973) as f64 * 0.25)
        .collect();
    Relation::new(vec![
        ("k".into(), Column::from_i64(k)),
        ("v".into(), Column::from_f64(v)),
    ])
    .expect("fact relation")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();
    db.register("fact", fact(0, 200_000));

    let cfg = EngineConfig {
        profile: Profile::Fused,
        ..EngineConfig::default()
    };
    // A chain view (filter/project only → delta = run the plan over the
    // appended rows and splice the survivors on), an aggregate view (delta
    // = maintain the aggregate's input, re-aggregate the maintained rows),
    // and a sorted view (ORDER BY ... LIMIT is order-sensitive, so every
    // append falls back to a full recompute — visibly, in the trace).
    db.register_view_with("hot_rows", "SELECT k, v FROM fact WHERE k = 123", &cfg)?;
    db.register_view_with(
        "rollup",
        "SELECT k, COUNT(*) AS n, SUM(v) AS sv FROM fact WHERE k < 25 GROUP BY k",
        &cfg,
    )?;
    db.register_view_with(
        "top5",
        "SELECT k, v FROM fact WHERE k < 25 ORDER BY v DESC, k LIMIT 5",
        &cfg,
    )?;

    println!("--- after registration (mode=initial) ---");
    for name in db.view_names() {
        println!("{}", db.view_trace(&name)?);
    }

    let mut start = 200_000usize;
    for batch in [4_096usize, 0, 1_024] {
        db.append("fact", &fact(start, batch))?;
        start += batch;
        println!("--- after appending {batch} rows ---");
        for name in db.view_names() {
            println!("{}", db.view_trace(&name)?);
        }
    }

    // Every view is bit-identical to a from-scratch recompute of its own
    // plan on the current snapshot — the invariant tests/mv_property.rs
    // checks after every append on every schedule.
    for name in db.view_names() {
        let state = db.view(&name)?;
        let oracle = db.view_oracle(&name)?;
        assert_eq!(state.relation(), &oracle, "{name} drifted from oracle");
        println!(
            "{name}: {} rows, stamped v{}, bit-identical to recompute",
            state.relation().num_rows(),
            state.snapshot_version()
        );
    }
    Ok(())
}
