//! The paper's flagship hybrid workload (Figure 2): join two tables with
//! Pandas, compute a covariance matrix with a NumPy einsum, and let PyTond
//! push the whole thing into the database — on both tensor layouts.
//!
//! ```text
//! cargo run --release --example hybrid_covariance
//! ```

use pytond_repro::ndarray::{einsum, NdArray};
use pytond_repro::pytond::{Backend, Dialect, OptLevel, Pytond};
use pytond_repro::workloads::covariance as cov;
use pytond_repro::workloads::{hybrid_tables, HYBRID_COVAR_NF};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: the hybrid pipeline of the paper's Figure 2 ---
    println!("== hybrid covariance (join → einsum) ==");
    let tables = hybrid_tables(1);
    let py = Pytond::new();
    for (name, rel, unique) in &tables {
        let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
        py.register_table(name, rel.clone(), &keys);
    }
    let raw = py.compile_at(HYBRID_COVAR_NF, Dialect::DuckDb, OptLevel::O0)?;
    let opt = py.compile_at(HYBRID_COVAR_NF, Dialect::DuckDb, OptLevel::O4)?;
    println!(
        "TondIR rules: {} before optimization, {} after O4",
        raw.optimized_ir.rules.len(),
        opt.optimized_ir.rules.len()
    );
    let t = Instant::now();
    let out = py.execute(&opt, &Backend::hyper_sim(4))?;
    println!(
        "covariance matrix ({}x{}) on hyper-sim/4t in {:?}:\n{}",
        out.num_rows(),
        out.num_cols() - 1,
        t.elapsed(),
        out.to_table_string(6)
    );

    // --- Part 2: dense vs sparse layouts (the Figure 9 claim) ---
    println!("== dense vs sparse layout at two sparsity points ==");
    for sparsity in [1.0, 0.001] {
        let m = cov::gen_matrix(50_000, 8, sparsity, 99);
        // NumPy-equivalent reference.
        let reference = {
            let t = Instant::now();
            let r = einsum("ij,ik->jk", &[&m, &m])?;
            (r, t.elapsed())
        };
        // Dense relational layout.
        let dense_py = Pytond::new();
        dense_py.register_table("m", cov::dense_relation(&m), &[&["__id"]]);
        let dense = dense_py.compile(cov::covariance_dense_source(), Dialect::DuckDb)?;
        let t = Instant::now();
        dense_py.execute(&dense, &Backend::duckdb_sim(1))?;
        let dense_time = t.elapsed();
        // Sparse COO layout (Blacher et al.).
        let sparse_py = Pytond::new();
        sparse_py.register_table("m", cov::sparse_relation(&m), &[]);
        let sparse = sparse_py.compile(cov::covariance_sparse_source(), Dialect::DuckDb)?;
        let t = Instant::now();
        sparse_py.execute(&sparse, &Backend::duckdb_sim(1))?;
        let sparse_time = t.elapsed();
        println!(
            "sparsity {:>6}: numpy {:>10?}  pytond-dense {:>10?}  pytond-sparse {:>10?}",
            sparsity, reference.1, dense_time, sparse_time
        );
        let _ = NdArray::zeros(vec![1]);
    }
    println!("(sparse wins only when the matrix is mostly zeros — the paper's Figure 9 shape)");
    Ok(())
}
