//! TPC-H end to end: generate the dataset, compile a Pandas-style query,
//! compare against the interpreted baseline, and show the engine backends.
//!
//! ```text
//! cargo run --release --example tpch_analytics [-- <query number>]
//! ```

use pytond_repro::pytond::{Backend, Dialect, Pytond};
use pytond_repro::tpch;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let id: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let q = tpch::query(id);
    println!("running TPC-H {} at SF 0.01\n", q.name);

    let data = tpch::generate(0.01);
    let py = Pytond::new();
    for (name, rel, unique) in data.tables() {
        let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
        py.register_table(name, rel.clone(), &keys);
    }

    println!("--- Pandas-style source ---{}", q.source);
    let compiled = py.compile(q.source, Dialect::DuckDb)?;
    println!(
        "--- generated SQL ({} CTE rules after O4) ---",
        compiled.optimized_ir.rules.len()
    );
    println!("{}\n", compiled.sql);

    // Interpreted baseline (the evaluation's "Python" bars).
    let t = Instant::now();
    let expected = q.run_baseline(&data)?;
    println!("interpreted baseline: {:?}", t.elapsed());

    for backend in [
        Backend::duckdb_sim(1),
        Backend::duckdb_sim(4),
        Backend::hyper_sim(1),
        Backend::hyper_sim(4),
    ] {
        let compiled = py.compile(q.source, backend.dialect())?;
        let t = Instant::now();
        let out = py.execute(&compiled, &backend)?;
        let elapsed = t.elapsed();
        let matches = expected
            .canonicalized()
            .approx_eq(&out.canonicalized(), 1e-6);
        println!(
            "{:>14}: {:>10?}  rows={}  matches-baseline={}",
            backend.name(),
            elapsed,
            out.num_rows(),
            matches
        );
    }

    println!("\n--- first rows ---\n{}", expected.to_table_string(5));
    Ok(())
}
