//! Differential testing for the hybrid workloads (Figures 5/6/8) and the
//! covariance micro-benchmark (Figure 9): compiled-SQL results must match
//! the interpreted frame/ndarray baselines.

use pytond::{Backend, OptLevel, Pytond};
use pytond_common::Relation;
use pytond_ndarray::einsum;
use pytond_workloads::{all_workloads, covariance as cov};

fn register(w: &pytond_workloads::Workload) -> Pytond {
    let py = Pytond::new();
    for (name, rel, unique) in &w.tables {
        let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
        py.register_table(name, rel.clone(), &keys);
    }
    py
}

/// Strips generated id columns whose numbering conventions differ between
/// the two paths (`row_number()` is 1-based; NumPy indices are 0-based).
fn strip_ids(rel: &Relation) -> Relation {
    let cols: Vec<(String, pytond_common::Column)> = rel
        .columns()
        .iter()
        .filter(|(n, _)| n != "__id" && n != "row_id" && n != "col_id")
        .cloned()
        .collect();
    Relation::new(cols).expect("filtered columns stay rectangular")
}

fn check(w: &pytond_workloads::Workload, backend: &Backend, level: OptLevel) {
    let py = register(w);
    let expected = (w.baseline)(&w.tables).unwrap_or_else(|e| panic!("{} baseline: {e}", w.name));
    let actual = py
        .run_at(w.source, backend, level)
        .unwrap_or_else(|e| panic!("{} compile/run: {e}", w.name));
    let (mut e, mut a) = (expected, actual);
    if w.ignore_id_cols {
        e = strip_ids(&e);
        a = strip_ids(&a);
    }
    let (e, a) = (e.canonicalized(), a.canonicalized());
    assert!(
        e.approx_eq(&a, 1e-6),
        "{} on {} at {}: {:?}\nexpected:\n{}\nactual:\n{}",
        w.name,
        backend.name(),
        level.name(),
        e.diff(&a, 1e-6),
        e.to_table_string(5),
        a.to_table_string(5)
    );
}

#[test]
fn all_workloads_match_baseline_at_o4() {
    for w in all_workloads(1) {
        check(&w, &Backend::duckdb_sim(1), OptLevel::O4);
    }
}

#[test]
fn workloads_agree_across_profiles_and_threads() {
    for w in all_workloads(1) {
        check(&w, &Backend::hyper_sim(1), OptLevel::O4);
        check(&w, &Backend::duckdb_sim(4), OptLevel::O4);
    }
}

#[test]
fn optimization_levels_preserve_workload_semantics() {
    for w in all_workloads(1) {
        for level in OptLevel::all() {
            check(&w, &Backend::duckdb_sim(1), level);
        }
    }
}

#[test]
fn covariance_dense_and_sparse_paths_match_numpy() {
    for sparsity in [1.0, 0.1, 0.001] {
        let m = cov::gen_matrix(500, 8, sparsity, 5);
        let reference = einsum("ij,ik->jk", &[&m, &m]).unwrap();
        // Dense path.
        let py = Pytond::new();
        py.register_table("m", cov::dense_relation(&m), &[&["__id"]]);
        let dense = py
            .run(cov::covariance_dense_source(), &Backend::duckdb_sim(1))
            .unwrap();
        for j in 0..8 {
            for k in 0..8 {
                let cell = dense.get(j, &format!("c{k}")).unwrap().as_f64().unwrap();
                let want = reference.get(&[j, k]);
                assert!(
                    (cell - want).abs() < 1e-6,
                    "dense ({j},{k}): {cell} vs {want} at sparsity {sparsity}"
                );
            }
        }
        // Sparse (COO) path: result rows exist only for non-zero cells.
        let py = Pytond::new();
        py.register_table("m", cov::sparse_relation(&m), &[]);
        let sparse = py
            .run(cov::covariance_sparse_source(), &Backend::duckdb_sim(1))
            .unwrap();
        let mut seen = std::collections::HashMap::new();
        for i in 0..sparse.num_rows() {
            let r = sparse.get(i, "row_id").unwrap().as_i64().unwrap() as usize;
            let c = sparse.get(i, "col_id").unwrap().as_i64().unwrap() as usize;
            let v = sparse.get(i, "val").unwrap().as_f64().unwrap();
            seen.insert((r, c), v);
        }
        for j in 0..8 {
            for k in 0..8 {
                let want = reference.get(&[j, k]);
                let got = seen.get(&(j, k)).copied().unwrap_or(0.0);
                assert!(
                    (got - want).abs() < 1e-6,
                    "sparse ({j},{k}): {got} vs {want} at sparsity {sparsity}"
                );
            }
        }
    }
}
