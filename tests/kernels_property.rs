//! Property tests for the typed vectorized kernels and the fixed-width key
//! packing: every typed fast path must stay **bit-identical** to the
//! row-at-a-time `Value`-based reference evaluator across dtypes, null masks
//! and selection vectors (including f64 NaN / `-0.0`), and fixed-width key
//! packing must partition rows exactly like the byte-encoded fallback
//! (including the NULL-vs-zero edge the folded validity bit exists for).

use proptest::prelude::*;
use pytond_common::hash::{encode_value, sql_key_encodings, FixedKeySpec, KeyArena, KeyWidth};
use pytond_common::{Column, DType, Value};
use pytond_sqldb::ast::BinOp;
use pytond_sqldb::exec::planned_key_width;
use pytond_sqldb::expr::{eval_bin, reference, BExpr};
use pytond_sqldb::table::Batch;

/// Builds an Int column; selector 0 → NULL.
fn int_col(rows: &[(u8, i64)]) -> Column {
    let mut c = Column::new(DType::Int);
    for (sel, v) in rows {
        if *sel == 0 {
            c.push_null();
        } else {
            c.push(Value::Int(*v)).unwrap();
        }
    }
    c
}

/// Builds a Float column; selector 0 → NULL, 1 → NaN, 2 → -0.0, 3 → 0.0.
fn float_col(rows: &[(u8, f64)]) -> Column {
    let mut c = Column::new(DType::Float);
    for (sel, v) in rows {
        match sel {
            0 => c.push_null(),
            1 => c.push(Value::Float(f64::NAN)).unwrap(),
            2 => c.push(Value::Float(-0.0)).unwrap(),
            3 => c.push(Value::Float(0.0)).unwrap(),
            _ => c.push(Value::Float(*v)).unwrap(),
        }
    }
    c
}

/// Builds a Date column; selector 0 → NULL.
fn date_col(rows: &[(u8, i64)]) -> Column {
    let mut c = Column::new(DType::Date);
    for (sel, v) in rows {
        if *sel == 0 {
            c.push_null();
        } else {
            c.push(Value::Date((*v % 50_000) as i32)).unwrap();
        }
    }
    c
}

/// Builds a Str column from a small alphabet; selector 0 → NULL.
fn str_col(rows: &[(u8, i64)]) -> Column {
    let mut c = Column::new(DType::Str);
    for (sel, v) in rows {
        if *sel == 0 {
            c.push_null();
        } else {
            c.push(Value::Str(format!("s{}", v.rem_euclid(12))))
                .unwrap();
        }
    }
    c
}

/// Bit-identical column comparison on every **valid** row (placeholder data
/// under null rows is unspecified in both evaluators). Floats compare by bit
/// pattern, with all NaNs considered one value.
fn cols_bit_identical(a: &Column, b: &Column) -> bool {
    if a.dtype() != b.dtype() || a.len() != b.len() {
        return false;
    }
    (0..a.len()).all(|i| match (a.is_valid(i), b.is_valid(i)) {
        (false, false) => true,
        (true, true) => match (a.get(i), b.get(i)) {
            (Value::Float(x), Value::Float(y)) => {
                x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan())
            }
            (x, y) => x == y,
        },
        _ => false,
    })
}

const ARITH: [BinOp; 5] = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod];
const CMP: [BinOp; 6] = [
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
];

fn assert_matches_reference(ops: &[BinOp], l: &Column, r: &Column) -> Result<(), String> {
    for &op in ops {
        let fast = eval_bin(op, l, r);
        let slow = reference::eval_bin(op, l, r);
        match (fast, slow) {
            (Ok(f), Ok(s)) => {
                if !cols_bit_identical(&f, &s) {
                    return Err(format!("{op:?} diverged: {f:?} vs {s:?}"));
                }
            }
            (Err(_), Err(_)) => {}
            (f, s) => return Err(format!("{op:?} error mismatch: {f:?} vs {s:?}")),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arithmetic kernels over every numeric column pair, with nulls and
    /// float specials mixed in.
    #[test]
    fn arith_kernels_match_reference(
        rows in prop::collection::vec(
            (0u8..6, -1000i64..1000, 0u8..8, -1e6f64..1e6), 0..80),
    ) {
        let li: Vec<(u8, i64)> = rows.iter().map(|r| (r.0, r.1)).collect();
        let lf: Vec<(u8, f64)> = rows.iter().map(|r| (r.2, r.3)).collect();
        let ri: Vec<(u8, i64)> = rows.iter().map(|r| (r.2, r.1.wrapping_mul(3) % 500)).collect();
        let rf: Vec<(u8, f64)> = rows.iter().map(|r| (r.0, r.3 * 0.5 - 17.0)).collect();
        let (a, b) = (int_col(&li), int_col(&ri));
        let (x, y) = (float_col(&lf), float_col(&rf));
        let (d, e) = (date_col(&li), date_col(&ri));
        prop_assert!(assert_matches_reference(&ARITH, &a, &b).is_ok());
        prop_assert!(assert_matches_reference(&ARITH, &x, &y).is_ok());
        prop_assert!(assert_matches_reference(&ARITH, &a, &y).is_ok());
        prop_assert!(assert_matches_reference(&ARITH, &x, &b).is_ok());
        // Date ± Int, Date - Date, and the widening fallbacks.
        prop_assert!(assert_matches_reference(&ARITH, &d, &b).is_ok());
        prop_assert!(assert_matches_reference(&ARITH, &d, &e).is_ok());
        prop_assert!(assert_matches_reference(&ARITH, &a, &e).is_ok());
    }

    /// Comparison kernels over every typed pair, NULL collapsing to false.
    #[test]
    fn cmp_kernels_match_reference(
        rows in prop::collection::vec(
            (0u8..6, -50i64..50, 0u8..8, -100.0f64..100.0), 0..80),
    ) {
        let li: Vec<(u8, i64)> = rows.iter().map(|r| (r.0, r.1)).collect();
        let lf: Vec<(u8, f64)> = rows.iter().map(|r| (r.2, r.3)).collect();
        let ri: Vec<(u8, i64)> = rows.iter().map(|r| (r.2, -r.1)).collect();
        let rf: Vec<(u8, f64)> = rows.iter().map(|r| (r.0, r.3.floor())).collect();
        let (a, b) = (int_col(&li), int_col(&ri));
        let (x, y) = (float_col(&lf), float_col(&rf));
        let (d, e) = (date_col(&li), date_col(&ri));
        let (s, t) = (str_col(&li), str_col(&ri));
        prop_assert!(assert_matches_reference(&CMP, &a, &b).is_ok());
        prop_assert!(assert_matches_reference(&CMP, &x, &y).is_ok());
        prop_assert!(assert_matches_reference(&CMP, &a, &y).is_ok());
        prop_assert!(assert_matches_reference(&CMP, &x, &b).is_ok());
        prop_assert!(assert_matches_reference(&CMP, &d, &e).is_ok());
        prop_assert!(assert_matches_reference(&CMP, &a, &e).is_ok());
        prop_assert!(assert_matches_reference(&CMP, &d, &b).is_ok());
        prop_assert!(assert_matches_reference(&CMP, &s, &t).is_ok());
    }

    /// Concat: string-string fast path and the Display fallback.
    #[test]
    fn concat_kernel_matches_reference(
        rows in prop::collection::vec((0u8..4, -50i64..50), 0..60),
    ) {
        let s = str_col(&rows);
        let t = str_col(&rows.iter().map(|r| (r.1.unsigned_abs() as u8 % 3, r.1 + 1)).collect::<Vec<_>>());
        let i = int_col(&rows);
        prop_assert!(assert_matches_reference(&[BinOp::Concat], &s, &t).is_ok());
        prop_assert!(assert_matches_reference(&[BinOp::Concat], &s, &i).is_ok());
        prop_assert!(assert_matches_reference(&[BinOp::Concat], &i, &s).is_ok());
    }

    /// IN-list typed fast paths agree with row-wise `sql_cmp` semantics.
    #[test]
    fn in_list_matches_rowwise_semantics(
        rows in prop::collection::vec((0u8..4, -20i64..20), 1..60),
        cands in prop::collection::vec(-20i64..20, 0..6),
        negated in 0u8..2,
    ) {
        let negated = negated == 1;
        for col in [int_col(&rows), date_col(&rows), str_col(&rows)] {
            let list: Vec<Value> = match col.dtype() {
                DType::Int => cands.iter().map(|&v| Value::Int(v)).collect(),
                // Mixed Int/Date candidates exercise the i64 unification.
                DType::Date => cands.iter().enumerate().map(|(i, &v)| {
                    if i % 2 == 0 { Value::Date(v as i32) } else { Value::Int(v) }
                }).collect(),
                _ => cands.iter().map(|&v| Value::Str(format!("s{}", v.rem_euclid(12)))).collect(),
            };
            let batch = Batch::from_columns(vec![col.clone()]);
            let e = BExpr::InList {
                e: Box::new(BExpr::Col(0)),
                list: list.clone(),
                negated,
            };
            let got = e.eval_mask(&batch, None).unwrap();
            let want: Vec<bool> = (0..col.len())
                .map(|i| {
                    let v = col.get(i);
                    if v.is_null() {
                        return false;
                    }
                    list.iter().any(|c| v.sql_cmp(c) == Some(std::cmp::Ordering::Equal))
                        != negated
                })
                .collect();
            prop_assert!(got == want, "IN-list diverged: {got:?} vs {want:?}");
        }
    }

    /// Evaluating under a selection vector equals full evaluation + gather.
    #[test]
    fn selection_vector_matches_gather(
        rows in prop::collection::vec((0u8..6, -100i64..100, 0u8..8, -1e3f64..1e3), 1..60),
        picks in prop::collection::vec(0usize..1000, 0..40),
    ) {
        let li: Vec<(u8, i64)> = rows.iter().map(|r| (r.0, r.1)).collect();
        let lf: Vec<(u8, f64)> = rows.iter().map(|r| (r.2, r.3)).collect();
        let batch = Batch::from_columns(vec![int_col(&li), float_col(&lf)]);
        let sel: Vec<usize> = picks.iter().map(|p| p % rows.len()).collect();
        let expr = BExpr::Bin {
            op: BinOp::Mul,
            l: Box::new(BExpr::Col(0)),
            r: Box::new(BExpr::Bin {
                op: BinOp::Add,
                l: Box::new(BExpr::Col(1)),
                r: Box::new(BExpr::Lit(Value::Float(1.5))),
            }),
        };
        let full = expr.eval(&batch, None).unwrap();
        let restricted = expr.eval(&batch, Some(&sel)).unwrap();
        prop_assert!(cols_bit_identical(&restricted, &full.gather(&sel)));
    }

    /// Fixed-width key packing partitions rows exactly like byte encoding —
    /// NULL forms its own group and never collides with 0 (the folded
    /// validity bit), across 1- and 2-column int/date/bool keys.
    #[test]
    fn key_packing_partitions_like_byte_encoding(
        rows in prop::collection::vec((0u8..3, -4i64..4, 0u8..3, 0i64..3), 1..80),
    ) {
        let a = int_col(&rows.iter().map(|r| (r.0, r.1)).collect::<Vec<_>>());
        let d = date_col(&rows.iter().map(|r| (r.2, r.3)).collect::<Vec<_>>());
        let n = rows.len();
        for cols in [vec![&a], vec![&a, &d], vec![&d]] {
            let spec = FixedKeySpec::plan(&[&cols], true).unwrap();
            let packed_groups: Vec<Vec<usize>> = match spec.width() {
                KeyWidth::U64 => partition(&spec.pack_u64(&cols).0),
                KeyWidth::U128 => partition(&spec.pack_u128(&cols).0),
            };
            // Byte-encoded reference partition.
            let byte_keys: Vec<Vec<u8>> = (0..n)
                .map(|i| {
                    let mut buf = Vec::new();
                    for c in &cols {
                        encode_value(&mut buf, &c.get(i));
                    }
                    buf
                })
                .collect();
            let byte_groups = partition(&byte_keys);
            prop_assert!(
                packed_groups == byte_groups,
                "partitions diverged: {packed_groups:?} vs {byte_groups:?}"
            );
        }
    }

    /// The executor's layout decision: all-int/date keys take the packed fast
    /// path, strings and floats fall back.
    #[test]
    fn layout_hook_classifies_keys(
        rows in prop::collection::vec((1u8..3, -5i64..5), 1..20),
    ) {
        let i = int_col(&rows);
        let d = date_col(&rows);
        let s = str_col(&rows);
        prop_assert!(planned_key_width(&[&[&i]], true).is_some());
        prop_assert!(planned_key_width(&[&[&i, &d]], true).is_some());
        prop_assert!(planned_key_width(&[&[&i], &[&d]], false).is_some());
        prop_assert!(planned_key_width(&[&[&s]], true).is_none());
        prop_assert!(planned_key_width(&[&[&i, &s]], true).is_none());
    }
}

/// SQL key equality must not depend on which layout gets chosen: beyond
/// 2^53, distinct i64 keys collapse under f64 widening, so both the packed
/// path and the SQL byte fallback must compare int keys exactly.
#[test]
fn big_int_keys_consistent_across_layouts() {
    let big = 9_007_199_254_740_992i64; // 2^53: big+1 == big as f64
    let col = Column::from_i64(vec![big, big + 1]);
    let cols = [&col];
    // Packed path: exact.
    let spec = FixedKeySpec::plan(&[&cols], true).unwrap();
    let (keys, _) = spec.pack_u64(&cols);
    assert_ne!(keys[0], keys[1]);
    // SQL byte fallback (as if a string key column forced it): also exact.
    let enc = sql_key_encodings(&[&cols]);
    let arena = KeyArena::encode(&cols, &enc, false);
    assert_ne!(arena.key(0), arena.key(1));
}

/// Groups row indices by key value, ordered by first appearance.
fn partition<K: std::hash::Hash + Eq + Clone>(keys: &[K]) -> Vec<Vec<usize>> {
    let mut order: Vec<K> = Vec::new();
    let mut map: std::collections::HashMap<K, Vec<usize>> = std::collections::HashMap::new();
    for (i, k) in keys.iter().enumerate() {
        let e = map.entry(k.clone()).or_default();
        if e.is_empty() {
            order.push(k.clone());
        }
        e.push(i);
    }
    order.into_iter().map(|k| map.remove(&k).unwrap()).collect()
}
