//! Property tests for the concurrent serving core: snapshot isolation under
//! interleaved readers and appenders.
//!
//! The correctness bar (ISSUE 6 / `docs/SERVING.md`): every query sees
//! **exactly one** table version — its result is bit-identical to a serial
//! re-run against the same pinned snapshot, and to the content that version
//! is known to hold by construction. Coverage:
//!
//! - concurrent readers + one appender: each in-flight result matches a
//!   serial re-execution on the snapshot it pinned, bit for bit;
//! - version → content reconstruction: a pinned version `v` holds exactly
//!   the rows of the first `v` deterministic appends, never a prefix of a
//!   batch (no torn reads);
//! - a row-level invariant (`a + b = 0` on every appended row) that a torn
//!   or mixed-version read would violate, checked under load;
//! - seeded-schedule interleavings of pin/append/query/drop operations;
//! - the `Pytond` facade under races: stale prepared plans transparently
//!   re-plan, and shared `&self` appends keep the catalog in lockstep.

use pytond::{Backend, Pytond};
use pytond_common::{Column, Relation, Value};
use pytond_sqldb::{Database, EngineConfig, Profile, Snapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Initial rows of the served table.
const BASE_ROWS: i64 = 4_096;

/// Rows per deterministic append batch.
const BATCH_ROWS: i64 = 512;

/// Exact equality, NaN-aware: every cell must agree under
/// `Value::total_cmp` ("bit-identical", as in `tests/parallel_property.rs`).
fn assert_bit_identical(name: &str, reference: &Relation, candidate: &Relation) {
    assert_eq!(
        reference.num_rows(),
        candidate.num_rows(),
        "{name}: row count"
    );
    assert_eq!(
        reference.num_cols(),
        candidate.num_cols(),
        "{name}: column count"
    );
    for ci in 0..reference.num_cols() {
        let a = reference.column_at(ci);
        let b = candidate.column_at(ci);
        for i in 0..a.len() {
            let (va, vb) = (a.get(i), b.get(i));
            assert!(
                va.total_cmp(&vb) == std::cmp::Ordering::Equal,
                "{name}: cell ({i}, {}) differs: {va:?} vs {vb:?}",
                reference.name_at(ci)
            );
        }
    }
}

/// The served table: `id` ascending, and on every row `a + b = 0` — the
/// invariant a torn read (a partially appended batch, or `a` from one
/// version and `b` from another) would break.
fn serve_rel(start: i64, rows: i64) -> Relation {
    Relation::new(vec![
        (
            "id".into(),
            Column::from_i64((start..start + rows).collect()),
        ),
        (
            "a".into(),
            Column::from_i64((start..start + rows).map(|i| i % 97).collect()),
        ),
        (
            "b".into(),
            Column::from_i64((start..start + rows).map(|i| -(i % 97)).collect()),
        ),
    ])
    .unwrap()
}

fn serve_db() -> Database {
    let db = Database::new();
    db.register("t", serve_rel(0, BASE_ROWS));
    db
}

/// Rows the table holds at snapshot version `v` (version 1 = the initial
/// `register`, each later version = one `BATCH_ROWS` append).
fn rows_at_version(v: u64) -> i64 {
    assert!(v >= 1, "version 0 is the empty database");
    BASE_ROWS + (v as i64 - 1) * BATCH_ROWS
}

/// The aggregate query whose result is a pure function of the version:
/// count, id checksum, and the torn-read invariant in one pass.
const AGG_SQL: &str = "SELECT COUNT(*) AS n, SUM(id) AS ids, SUM(a + b) AS torn FROM t";

/// Expected `AGG_SQL` result at version `v`, computed from first
/// principles (not through the engine).
fn expected_agg(v: u64) -> (i64, i64, i64) {
    let n = rows_at_version(v);
    (n, n * (n - 1) / 2, 0)
}

fn agg_of(rel: &Relation) -> (i64, i64, i64) {
    let get = |name: &str| match rel.column(name).unwrap().get(0) {
        Value::Int(i) => i,
        other => panic!("expected Int in {name}, got {other:?}"),
    };
    (get("n"), get("ids"), get("torn"))
}

/// Readers race an appender, each pinning snapshots mid-stream; every
/// result must match (a) a serial re-execution against the pinned snapshot
/// — bit-identical — and (b) the content version `v` is known to hold.
#[test]
fn concurrent_reads_are_snapshot_isolated() {
    let db = serve_db();
    let prepared = db.prepare(AGG_SQL, Profile::Vectorized).unwrap();
    let cfg = EngineConfig::default();
    let appends = 24;
    let readers = 4;
    let done = AtomicBool::new(false);

    let observed: Vec<(Arc<Snapshot>, Relation)> = std::thread::scope(|s| {
        let appender = s.spawn(|| {
            for k in 0..appends {
                db.append("t", &serve_rel(BASE_ROWS + k * BATCH_ROWS, BATCH_ROWS))
                    .unwrap();
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                s.spawn(|| {
                    let mut seen = Vec::new();
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let snap = db.snapshot();
                        let out = snap.execute_prepared(&prepared, &cfg).unwrap();
                        seen.push((snap, out));
                        if finished {
                            return seen;
                        }
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        appender.join().unwrap();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    assert!(!observed.is_empty());
    let mut versions_seen = std::collections::BTreeSet::new();
    for (snap, out) in &observed {
        let v = snap.version();
        versions_seen.insert(v);
        // (a) bit-identical to a serial re-run on the same pinned version,
        // even though that version may be many publishes old by now.
        let serial = snap.execute_prepared(&prepared, &cfg).unwrap();
        assert_bit_identical(&format!("v{v}"), &serial, out);
        // (b) exactly the content version v holds: whole batches only, no
        // torn append, invariant intact.
        assert_eq!(agg_of(out), expected_agg(v), "content at v{v}");
    }
    // The final version holds every append.
    assert_eq!(db.stats_version(), 1 + appends as u64);
    assert_eq!(
        agg_of(&db.execute_prepared(&prepared, &cfg).unwrap()),
        expected_agg(1 + appends as u64)
    );
}

/// A pinned snapshot is frozen: appends published after the pin never leak
/// into it, and dropping newer versions never invalidates it.
#[test]
fn pinned_snapshots_do_not_move() {
    let db = serve_db();
    let prepared = db.prepare(AGG_SQL, Profile::Vectorized).unwrap();
    let cfg = EngineConfig::default();
    let pinned = db.snapshot();
    let before = pinned.execute_prepared(&prepared, &cfg).unwrap();
    for k in 0..8 {
        db.append("t", &serve_rel(BASE_ROWS + k * BATCH_ROWS, BATCH_ROWS))
            .unwrap();
    }
    let after = pinned.execute_prepared(&prepared, &cfg).unwrap();
    assert_bit_identical("pinned", &before, &after);
    assert_eq!(pinned.version(), 1);
    assert_eq!(agg_of(&after), expected_agg(1));
    // The live handle sees all eight appends.
    assert_eq!(
        agg_of(&db.execute_prepared(&prepared, &cfg).unwrap()),
        expected_agg(9)
    );
}

/// Seeded-schedule interleavings: a deterministic xorshift stream drives
/// pin / append / query / unpin operations; every held snapshot must keep
/// reproducing exactly the content of the version it pinned, at every step.
#[test]
fn seeded_interleavings_reconstruct_every_version() {
    for seed in [3u64, 17, 2024, 987_654_321] {
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64*: deterministic, no rand dependency.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let db = serve_db();
        let prepared = db.prepare(AGG_SQL, Profile::Vectorized).unwrap();
        let cfg = EngineConfig::default();
        let mut held: Vec<Arc<Snapshot>> = vec![db.snapshot()];
        let mut appended = 0i64;
        for _ in 0..60 {
            match next() % 4 {
                0 => held.push(db.snapshot()),
                1 => {
                    db.append(
                        "t",
                        &serve_rel(BASE_ROWS + appended * BATCH_ROWS, BATCH_ROWS),
                    )
                    .unwrap();
                    appended += 1;
                }
                2 if !held.is_empty() => {
                    let idx = (next() as usize) % held.len();
                    let snap = &held[idx];
                    let out = snap.execute_prepared(&prepared, &cfg).unwrap();
                    assert_eq!(
                        agg_of(&out),
                        expected_agg(snap.version()),
                        "seed {seed}: v{} diverged",
                        snap.version()
                    );
                }
                _ if held.len() > 1 => {
                    let idx = (next() as usize) % held.len();
                    held.swap_remove(idx);
                }
                _ => {}
            }
        }
        // Every snapshot still held reconstructs its version exactly.
        for snap in &held {
            let out = snap.execute_prepared(&prepared, &cfg).unwrap();
            assert_eq!(agg_of(&out), expected_agg(snap.version()), "seed {seed}");
        }
        assert_eq!(db.stats_version(), 1 + appended as u64);
    }
}

/// A failed append publishes nothing: concurrent readers never observe a
/// half-applied version, and the version counter does not move.
#[test]
fn failed_appends_are_invisible() {
    let db = serve_db();
    let v = db.stats_version();
    let bad = Relation::new(vec![("id".into(), Column::from_i64(vec![0]))]).unwrap();
    assert!(db.append("t", &bad).is_err());
    assert_eq!(db.stats_version(), v);
    let out = db.execute_sql(AGG_SQL, &EngineConfig::default()).unwrap();
    assert_eq!(agg_of(&out), expected_agg(v));
}

/// The facade under races: shared `Arc<Pytond>` clients keep querying while
/// another thread appends. Stale prepared plans must transparently re-plan
/// (never error, never serve mixed versions), and afterwards the catalog
/// row count must be in lockstep with the data.
#[test]
fn facade_replans_stale_plans_under_concurrent_appends() {
    let py = Arc::new(Pytond::new());
    py.register_table("t", serve_rel(0, BASE_ROWS), &[]);
    let src = "@pytond\ndef q(t):\n    g = t.groupby(['a']).agg(n=('id', 'count'))\n    return g.sort_values(by=['a'])\n";
    let backend = Backend::duckdb_sim(1);
    // Warm the plan cache so the racing readers start from a cached entry.
    let first = py.run(src, &backend).unwrap();
    assert_eq!(first.num_rows(), 97);
    let appends = 12;
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let writer = {
            let py = py.clone();
            let done = &done;
            s.spawn(move || {
                for k in 0..appends {
                    py.append("t", &serve_rel(BASE_ROWS + k * BATCH_ROWS, BATCH_ROWS))
                        .unwrap();
                    std::thread::yield_now();
                }
                done.store(true, Ordering::Release);
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let py = py.clone();
                let done = &done;
                s.spawn(move || {
                    let mut runs = 0usize;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let out = py.run(src, &backend).unwrap();
                        // Group count is version-independent; total count
                        // must equal a whole number of batches.
                        assert_eq!(out.num_rows(), 97);
                        let total: i64 = (0..out.num_rows())
                            .map(|i| match out.get(i, "n") {
                                Some(Value::Int(n)) => n,
                                other => panic!("bad count cell {other:?}"),
                            })
                            .sum();
                        assert_eq!(
                            (total - BASE_ROWS) % BATCH_ROWS,
                            0,
                            "mixed-version read: {total} rows"
                        );
                        runs += 1;
                        if finished {
                            return runs;
                        }
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    });

    // Post-race: one more prepare is current and the catalog row count
    // tracked every append.
    let plan = py.prepare(src, &backend, pytond::OptLevel::O4).unwrap();
    assert!(plan.is_current(py.database()));
    assert_eq!(
        py.catalog().table("t").unwrap().row_count,
        Some((BASE_ROWS + appends * BATCH_ROWS) as u64)
    );
    let out = py.run(src, &backend).unwrap();
    let total: i64 = (0..out.num_rows())
        .map(|i| match out.get(i, "n") {
            Some(Value::Int(n)) => n,
            other => panic!("bad count cell {other:?}"),
        })
        .sum();
    assert_eq!(total, BASE_ROWS + appends * BATCH_ROWS);
}

/// Cancellation under live appends (ISSUE 7): cancelling an in-flight scan
/// must not delay the appender's publication cadence or poison the
/// snapshot — every post-cancel read still reconstructs its pinned version
/// exactly.
#[test]
fn cancelled_queries_do_not_delay_or_poison_appends() {
    use pytond_sqldb::CancelToken;
    let db = serve_db();
    let prepared = db.prepare(AGG_SQL, Profile::Vectorized).unwrap();
    // Small morsels so the cancelled scans poll their tokens frequently.
    let cfg = EngineConfig {
        morsel: 1024,
        ..EngineConfig::default()
    };
    let appends = 24;
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let appender = s.spawn(|| {
            for k in 0..appends {
                db.append("t", &serve_rel(BASE_ROWS + k * BATCH_ROWS, BATCH_ROWS))
                    .unwrap();
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
        // Readers continuously start queries and cancel them mid-flight;
        // every abort must be the transient Cancelled, never anything that
        // would block the writer.
        let cancellers: Vec<_> = (0..3)
            .map(|_| {
                s.spawn(|| {
                    let mut cancelled = 0usize;
                    while !done.load(Ordering::Acquire) {
                        let token = CancelToken::new();
                        let racer = token.clone();
                        let snap = db.snapshot();
                        racer.cancel();
                        match snap.execute_prepared_with(&prepared, &cfg, token) {
                            Err(e) => {
                                assert!(e.is_transient(), "{e}");
                                cancelled += 1;
                            }
                            Ok(out) => {
                                // A query that slipped through before the
                                // cancel still saw one exact version.
                                assert_eq!(agg_of(&out), expected_agg(snap.version()));
                            }
                        }
                        std::thread::yield_now();
                    }
                    cancelled
                })
            })
            .collect();
        appender.join().unwrap();
        for c in cancellers {
            assert!(c.join().unwrap() > 0, "no query was ever cancelled");
        }
    });

    // The appender published every batch; no snapshot was poisoned: the
    // final version reconstructs from first principles.
    assert_eq!(db.stats_version(), 1 + appends as u64);
    let out = db
        .execute_prepared(&prepared, &EngineConfig::default())
        .unwrap();
    assert_eq!(agg_of(&out), expected_agg(1 + appends as u64));
}

/// Traces carry the serving metadata: the snapshot version the query ran
/// against and the admission queue wait, in both the plan header and the
/// summary (the worked example in ARCHITECTURE.md quotes these).
#[test]
fn traces_report_snapshot_version_and_queue_wait() {
    let db = serve_db();
    let prepared = db.prepare(AGG_SQL, Profile::Vectorized).unwrap();
    let (_, trace) = db
        .execute_prepared_traced(&prepared, &EngineConfig::default())
        .unwrap();
    assert_eq!(trace.snapshot_version, 1);
    assert_eq!(trace.metrics.snapshot_version, 1);
    assert!(
        trace.plan.contains("snapshot: v1 (queue wait"),
        "{}",
        trace.plan
    );
    assert!(
        trace.summary().contains("snapshot: v1"),
        "{}",
        trace.summary()
    );
    db.append("t", &serve_rel(BASE_ROWS, BATCH_ROWS)).unwrap();
    let (_, trace) = db
        .execute_prepared_traced(&prepared, &EngineConfig::default())
        .unwrap();
    assert_eq!(trace.snapshot_version, 2, "append publishes a new version");
    // An explicitly pinned old snapshot reports its own version.
    let old = db.snapshot();
    db.append("t", &serve_rel(BASE_ROWS + BATCH_ROWS, BATCH_ROWS))
        .unwrap();
    let (_, trace) = old
        .execute_prepared_traced(&prepared, &EngineConfig::default())
        .unwrap();
    assert_eq!(trace.snapshot_version, 2);
}

// ---------------- materialized views under races (ISSUE 10) --------------

/// Concurrent view readers racing a live appender (ISSUE 10): every
/// observed [`pytond_sqldb::ViewState`] must hold **exactly** the content
/// of the version it is stamped with (the first-principles aggregate is a
/// pure function of the version, so a torn or mixed-version refresh cannot
/// pass), stamps are monotone per reader, and no observation is ever stale
/// beyond the one version the writer may currently be refreshing.
#[test]
fn concurrent_view_readers_never_observe_torn_or_overstale_results() {
    let db = serve_db();
    db.register_view("standing", AGG_SQL).unwrap();
    let appends = 24;
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let appender = s.spawn(|| {
            for k in 0..appends {
                db.append("t", &serve_rel(BASE_ROWS + k * BATCH_ROWS, BATCH_ROWS))
                    .unwrap();
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
        let readers: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let mut last_stamp = 0u64;
                    let mut observations = 0usize;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let version_before = db.stats_version();
                        let state = db.view("standing").unwrap();
                        let stamp = state.snapshot_version();
                        // Never torn: the content is exactly what the
                        // stamped version holds, by construction.
                        assert_eq!(
                            agg_of(state.relation()),
                            expected_agg(stamp),
                            "view content does not match its stamp v{stamp}"
                        );
                        // Never stale beyond the stamp: at most the one
                        // version whose writer critical section may still
                        // be refreshing can be missing.
                        assert!(
                            stamp + 1 >= version_before,
                            "view stamped v{stamp} but v{version_before} was \
                             already published before the read"
                        );
                        // Published states move forward only.
                        assert!(
                            stamp >= last_stamp,
                            "view stamp went backwards: v{last_stamp} → v{stamp}"
                        );
                        last_stamp = stamp;
                        observations += 1;
                        if finished {
                            return observations;
                        }
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        appender.join().unwrap();
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    });

    // Quiesced: the view absorbed every append and matches both the
    // first-principles content and a from-scratch recompute bit for bit.
    let final_state = db.view("standing").unwrap();
    assert_eq!(final_state.snapshot_version(), 1 + appends as u64);
    assert_eq!(
        agg_of(final_state.relation()),
        expected_agg(1 + appends as u64)
    );
    assert_bit_identical(
        "final view",
        &db.view_oracle("standing").unwrap(),
        final_state.relation(),
    );
}

/// A held [`pytond_sqldb::ViewState`] is frozen: refreshes published by
/// later appends never mutate an observation a reader already holds, even
/// while the maintained content is appended in place behind new states.
#[test]
fn held_view_states_do_not_move() {
    let db = serve_db();
    // A chain view: its maintained content grows by in-place column
    // appends, which must copy-on-write under a held reader, never mutate.
    db.register_view("ids", "SELECT id, a, b FROM t WHERE a >= 50")
        .unwrap();
    let held = db.view("ids").unwrap();
    let before = held.relation().clone();
    for k in 0..6 {
        db.append("t", &serve_rel(BASE_ROWS + k * BATCH_ROWS, BATCH_ROWS))
            .unwrap();
    }
    assert_bit_identical("held state", &before, held.relation());
    let fresh = db.view("ids").unwrap();
    assert!(fresh.relation().num_rows() > before.num_rows());
    assert_bit_identical(
        "fresh state",
        &db.view_oracle("ids").unwrap(),
        fresh.relation(),
    );
}
