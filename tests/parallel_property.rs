//! Property tests for morsel-driven parallel execution: every query must be
//! **bit-identical** across thread counts — not approximately equal, equal
//! to the last float bit — because the accumulation tree is a function of
//! the fixed morsel grid, never of the worker count (the "fixed merge
//! order" policy of `docs/EXECUTION.md`).
//!
//! Coverage: all 22 TPC-H queries, every hybrid workload, the
//! stats-property corpus (dtypes × clustering × NULL patterns ×
//! predicates), NULL-heavy joins and empty-table joins. Thread counts
//! include 1 (the serial path), 2, 7 (odd counts catch partition-skew and
//! uneven-grid bugs) and the machine's hardware parallelism.

use pytond::{Backend, EngineConfig, OptLevel, Profile, Pytond};
use pytond_common::{pool, Column, DType, Relation, Value};
use pytond_sqldb::Database;

/// The thread counts every case runs at; index 0 is the serial reference.
fn thread_counts() -> Vec<usize> {
    vec![1, 2, 7, pool::hardware_threads().max(2)]
}

/// Small morsels so even the test-sized inputs span many-morsel grids
/// (16 Ki-row production morsels would leave them single-morsel).
const TEST_MORSEL: usize = 1024;

fn config(profile: Profile, threads: usize) -> EngineConfig {
    EngineConfig {
        profile,
        threads,
        morsel: TEST_MORSEL,
        zone_prune: true,
        ..EngineConfig::default()
    }
}

/// Exact equality, NaN-aware and sign-of-zero-aware: every cell must agree
/// under `Value::total_cmp` (floats compare by total order, so `-0.0` vs
/// `0.0` or differing NaN handling fail the test — "bit-identical").
fn assert_bit_identical(name: &str, reference: &Relation, candidate: &Relation) {
    assert_eq!(
        reference.num_cols(),
        candidate.num_cols(),
        "{name}: column count"
    );
    assert_eq!(
        reference.num_rows(),
        candidate.num_rows(),
        "{name}: row count"
    );
    for ci in 0..reference.num_cols() {
        let a = reference.column_at(ci);
        let b = candidate.column_at(ci);
        for i in 0..a.len() {
            let (va, vb) = (a.get(i), b.get(i));
            assert!(
                va.total_cmp(&vb) == std::cmp::Ordering::Equal,
                "{name}: cell ({i}, {}) differs: {va:?} vs {vb:?}",
                reference.name_at(ci)
            );
        }
    }
}

/// Runs one compiled source at every thread count and asserts bit-identity
/// against the serial run.
fn check_source(name: &str, py: &Pytond, source: &str, profile: Profile) {
    let backend = Backend {
        profile,
        threads: 1,
        timeout_ms: None,
        mem_budget_mb: None,
    };
    let prepared = py
        .prepare(source, &backend, OptLevel::O4)
        .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    let reference = py
        .database()
        .execute_prepared(&prepared, &config(profile, 1))
        .unwrap_or_else(|e| panic!("{name}: serial run failed: {e}"));
    for threads in thread_counts() {
        let r = py
            .database()
            .execute_prepared(&prepared, &config(profile, threads))
            .unwrap_or_else(|e| panic!("{name}@{threads}t: run failed: {e}"));
        assert_bit_identical(&format!("{name}@{threads}t"), &reference, &r);
    }
}

#[test]
fn tpch_bit_identical_across_thread_counts() {
    let data = pytond_tpch::generate(0.002);
    let py = Pytond::new();
    for (name, rel, unique) in data.tables() {
        let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
        py.register_table(name, rel.clone(), &keys);
    }
    for q in pytond_tpch::all_queries() {
        check_source(q.name, &py, q.source, Profile::Vectorized);
    }
    // The fused profile drives the late-materialization parallel paths.
    for id in [1, 3, 6, 9, 18] {
        let q = pytond_tpch::query(id);
        check_source(&format!("{}/fused", q.name), &py, q.source, Profile::Fused);
    }
}

#[test]
fn hybrid_workloads_bit_identical_across_thread_counts() {
    for w in pytond_workloads::all_workloads(1) {
        let py = Pytond::new();
        for (name, rel, unique) in &w.tables {
            let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
            py.register_table(name, rel.clone(), &keys);
        }
        check_source(w.name, &py, w.source, Profile::Vectorized);
    }
}

// ---------------- the stats-property corpus, re-run for parallelism ------

/// Deterministic value stream: clustered (sorted, tight zone bounds) or
/// shuffled (wide zone bounds) over `[0, domain)` — the same corpus shape
/// `tests/stats_property.rs` uses for pruning soundness.
fn key_value(i: usize, n: usize, domain: i64, clustered: bool) -> i64 {
    if clustered {
        (i as i64) * domain / (n as i64).max(1)
    } else {
        ((i as i64).wrapping_mul(2_654_435_761)).rem_euclid(domain)
    }
}

fn key_column(dtype: u8, n: usize, domain: i64, clustered: bool, null_every: usize) -> Column {
    let dt = match dtype {
        0 => DType::Int,
        1 => DType::Float,
        2 => DType::Date,
        _ => DType::Bool,
    };
    let mut col = Column::new(dt);
    for i in 0..n {
        if null_every > 0 && i % (null_every + 3) == 0 {
            col.push_null();
            continue;
        }
        let v = key_value(i, n, domain, clustered);
        let val = match dt {
            DType::Int => Value::Int(v),
            DType::Float => Value::Float(v as f64 + 0.25),
            DType::Date => Value::Date(v as i32),
            DType::Bool => Value::Bool(v % 2 == 0),
            DType::Str => unreachable!(),
        };
        col.push(val).unwrap();
    }
    col
}

/// A corpus table: generated key column + float measure whose per-group sums
/// are rounding-sensitive (so any merge-order drift shows in the low bits).
fn corpus_db(dtype: u8, n: usize, domain: i64, clustered: bool, null_every: usize) -> Database {
    let k = key_column(dtype, n, domain, clustered, null_every);
    let f: Vec<f64> = (0..n)
        .map(|i| ((i as f64) * 0.618_033_988_749).fract() * 1e6 + 0.1)
        .collect();
    let db = Database::new();
    db.register(
        "t",
        Relation::new(vec![
            ("k".into(), k),
            ("f".into(), Column::from_f64(f)),
            ("v".into(), Column::from_i64((0..n as i64).collect())),
        ])
        .unwrap(),
    );
    db
}

fn check_sql(name: &str, db: &Database, sql: &str) {
    let reference = db
        .execute_sql(sql, &config(Profile::Vectorized, 1))
        .unwrap_or_else(|e| panic!("{name}: serial run failed: {e}"));
    for threads in thread_counts() {
        let r = db
            .execute_sql(sql, &config(Profile::Vectorized, threads))
            .unwrap_or_else(|e| panic!("{name}@{threads}t: run failed: {e}"));
        assert_bit_identical(&format!("{name}@{threads}t"), &reference, &r);
    }
}

#[test]
fn stats_corpus_bit_identical_across_thread_counts() {
    // Float SUM/AVG over many groups is the hardest case: the accumulation
    // tree must be grid-fixed or the low mantissa bits drift per thread
    // count. DISTINCT and predicated scans ride along.
    for dtype in 0..4u8 {
        for &clustered in &[true, false] {
            for &null_every in &[0usize, 5] {
                let db = corpus_db(dtype, 12_000, 400, clustered, null_every);
                let label = format!("dtype{dtype}/clustered={clustered}/nulls={null_every}");
                check_sql(
                    &format!("{label}/groupby"),
                    &db,
                    "SELECT k, SUM(f) AS s, AVG(f) AS m, COUNT(*) AS n, \
                     COUNT(DISTINCT v) AS d FROM t GROUP BY k",
                );
                check_sql(
                    &format!("{label}/scalar"),
                    &db,
                    "SELECT SUM(f) AS s, AVG(f) AS m, MIN(f) AS lo, MAX(f) AS hi FROM t",
                );
                check_sql(
                    &format!("{label}/pruned-scan"),
                    &db,
                    "SELECT v, f FROM t WHERE v >= 1000 AND v < 3000",
                );
                check_sql(
                    &format!("{label}/distinct"),
                    &db,
                    "SELECT DISTINCT k FROM t",
                );
            }
        }
    }
}

// ---------------- NULL-heavy and empty-table joins ----------------

/// Two tables whose join keys are NULL on every third / fourth row — the
/// case where partitioned builds must drop NULL keys exactly like the
/// serial build, for every join kind.
fn null_heavy_db(n: usize) -> Database {
    let mut l_key = Column::new(DType::Int);
    let mut r_key = Column::new(DType::Int);
    for i in 0..n {
        if i % 3 == 0 {
            l_key.push_null();
        } else {
            l_key.push(Value::Int((i % 500) as i64)).unwrap();
        }
    }
    for i in 0..n / 2 {
        if i % 4 == 0 {
            r_key.push_null();
        } else {
            r_key.push(Value::Int((i % 700) as i64)).unwrap();
        }
    }
    let db = Database::new();
    db.register(
        "l",
        Relation::new(vec![
            ("k".into(), l_key),
            ("a".into(), Column::from_i64((0..n as i64).collect())),
        ])
        .unwrap(),
    );
    db.register(
        "r",
        Relation::new(vec![
            ("k".into(), r_key),
            (
                "b".into(),
                Column::from_f64((0..n / 2).map(|i| i as f64 * 0.3).collect()),
            ),
        ])
        .unwrap(),
    );
    db.register(
        "empty",
        Relation::new(vec![("k".into(), Column::from_i64(vec![]))]).unwrap(),
    );
    db
}

#[test]
fn null_heavy_and_empty_joins_bit_identical() {
    let db = null_heavy_db(30_000);
    for sql in [
        // Inner join + aggregate over the matches.
        "SELECT l.k, COUNT(*) AS n, SUM(r.b) AS s FROM l, r WHERE l.k = r.k GROUP BY l.k",
        // Outer joins keep unmatched rows with NULL fill.
        "SELECT l.a, r.b FROM l LEFT JOIN r ON l.k = r.k",
        "SELECT l.a, r.b FROM l FULL OUTER JOIN r ON l.k = r.k",
        // Semi/anti via IN / NOT IN subqueries.
        "SELECT a FROM l WHERE k IN (SELECT k FROM r)",
        "SELECT a FROM l WHERE k NOT IN (SELECT k FROM r WHERE k IS NOT NULL)",
        // Empty build and probe sides.
        "SELECT l.a FROM l, empty WHERE l.k = empty.k",
        "SELECT empty.k FROM empty LEFT JOIN r ON empty.k = r.k",
    ] {
        check_sql(sql, &db, sql);
    }
}

// ---------------- parallel runs actually parallelize ----------------

#[test]
fn traces_report_parallelism_and_partitions() {
    let db = null_heavy_db(40_000);
    let join_agg = "SELECT l.k, SUM(r.b) AS s FROM l, r WHERE l.k = r.k GROUP BY l.k";
    // Serial trace: one worker, no concurrent partitions.
    let (_, serial) = db
        .execute_sql_traced(join_agg, &config(Profile::Vectorized, 1))
        .unwrap();
    assert_eq!(serial.threads, 1);
    assert!(
        serial.metrics.morsels_claimed_per_worker.is_empty(),
        "serial runs never touch the dispenser: {:?}",
        serial.metrics
    );
    assert_eq!(serial.metrics.partitions_built, 0);
    assert!(serial.plan.contains("parallelism: 1 worker thread(s)"));
    // Parallel trace: multiple workers claimed morsels, the join build
    // partitioned, and the plan header names the degree of parallelism.
    let (_, par) = db
        .execute_sql_traced(join_agg, &config(Profile::Vectorized, 7))
        .unwrap();
    assert_eq!(par.threads, 7);
    assert!(
        par.metrics.morsels_claimed_per_worker.len() > 1,
        "expected multi-worker claims: {:?}",
        par.metrics
    );
    assert!(
        par.metrics.morsels_claimed_per_worker.iter().sum::<u64>() > 0,
        "{:?}",
        par.metrics
    );
    assert!(
        par.metrics.partitions_built > 0,
        "the 40k-row build side should partition: {:?}",
        par.metrics
    );
    assert!(par.plan.contains("parallelism: 7 worker thread(s)"));
    assert!(par.summary().contains("morsels claimed per worker"));
}
