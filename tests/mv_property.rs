//! Differential maintenance suite for materialized views (ISSUE 10): after
//! **every** append in randomized batched schedules, every registered view
//! must be **bit-identical** — `Value::total_cmp` per cell, so NaN payloads
//! and `-0.0` count — to a from-scratch recompute of its own prepared plan
//! on the same pinned snapshot, and its stamp must equal the snapshot
//! version the append published.
//!
//! Coverage: all 22 TPC-H queries and every hybrid workload registered as
//! standing views (thread counts and profiles rotated across the corpus),
//! synthetic tables with dict-string keys, NULL densities and empty appends
//! at threads 1 / 2 / 7 / hardware under both profiles, and trace pinning
//! that incremental-eligible plan shapes actually report `delta` — not
//! `recompute` — after an append. CI re-runs the whole file under
//! `PYTOND_NO_IVM=1` (recompute-on-read oracle) and `PYTOND_NO_DICT=1`;
//! the differential checks must hold identically in every mode.

use pytond::{Backend, Profile, Pytond};
use pytond_common::{pool, Column, DType, Relation, Value};
use pytond_sqldb::{Database, EngineConfig, RefreshMode};

/// The thread counts view refresh runs at.
fn thread_counts() -> Vec<usize> {
    vec![1, 2, 7, pool::hardware_threads().max(2)]
}

/// Small morsels so test-sized inputs span many-morsel grids.
const TEST_MORSEL: usize = 1024;

fn config(profile: Profile, threads: usize) -> EngineConfig {
    EngineConfig {
        profile,
        threads,
        morsel: TEST_MORSEL,
        zone_prune: true,
        ..EngineConfig::default()
    }
}

/// `true` when the process runs with maintenance disabled
/// (`PYTOND_NO_IVM=1`): differential checks still hold (both sides
/// recompute), but assertions about refresh modes must be skipped.
fn ivm_disabled() -> bool {
    std::env::var("PYTOND_NO_IVM").is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0"
    })
}

/// Exact equality under `Value::total_cmp` — see
/// `tests/parallel_property.rs` for the rationale.
fn assert_bit_identical(name: &str, reference: &Relation, candidate: &Relation) {
    assert_eq!(
        reference.num_cols(),
        candidate.num_cols(),
        "{name}: column count"
    );
    assert_eq!(
        reference.num_rows(),
        candidate.num_rows(),
        "{name}: row count"
    );
    for ci in 0..reference.num_cols() {
        let a = reference.column_at(ci);
        let b = candidate.column_at(ci);
        for i in 0..a.len() {
            let (va, vb) = (a.get(i), b.get(i));
            assert!(
                va.total_cmp(&vb) == std::cmp::Ordering::Equal,
                "{name}: cell ({i}, {}) differs: {va:?} vs {vb:?}",
                reference.name_at(ci)
            );
        }
    }
}

/// The first `k` rows of `rel` — the generic append batch for schedules
/// over pre-generated corpora (duplicated keys are fine: both the
/// maintained side and the oracle execute the same plan over the same
/// rows). `k = 0` produces a schema-correct empty append.
fn head_rows(rel: &Relation, k: usize) -> Relation {
    let k = k.min(rel.num_rows());
    Relation::new(
        rel.columns()
            .iter()
            .map(|(n, c)| (n.clone(), c.slice(0, k)))
            .collect(),
    )
    .unwrap()
}

/// xorshift64*: deterministic schedule randomness without a rand crate.
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Checks every named view of `db` against a from-scratch recompute of its
/// own prepared plan on the current (pinned) snapshot, and that a healthy
/// view's stamp equals the version that snapshot carries.
fn check_views(db: &Database, context: &str) {
    let snap = db.snapshot();
    for name in db.view_names() {
        let state = db
            .view(&name)
            .unwrap_or_else(|e| panic!("{context}/{name}: view read failed: {e}"));
        assert_eq!(
            state.snapshot_version(),
            snap.version(),
            "{context}/{name}: stamp lags the published snapshot"
        );
        let oracle = db
            .view_oracle_at(&name, &snap)
            .unwrap_or_else(|e| panic!("{context}/{name}: oracle failed: {e}"));
        assert_bit_identical(&format!("{context}/{name}"), &oracle, state.relation());
    }
}

// ---------------- TPC-H corpus as standing views -------------------------

/// All 22 TPC-H queries registered as standing views, with thread counts
/// and profiles rotated across the corpus; a seeded schedule of batched
/// appends to the fact/dimension tables must keep every view bit-identical
/// to recompute after every single append.
#[test]
fn tpch_views_bit_identical_across_append_schedule() {
    let data = pytond_tpch::generate(0.002);
    let py = Pytond::new();
    for (name, rel, unique) in data.tables() {
        let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
        py.register_table(name, rel.clone(), &keys);
    }
    let threads = thread_counts();
    let profiles = [Profile::Vectorized, Profile::Fused];
    for (i, q) in pytond_tpch::all_queries().iter().enumerate() {
        let backend = Backend {
            profile: profiles[i % profiles.len()],
            threads: threads[i % threads.len()],
            timeout_ms: None,
            mem_budget_mb: None,
        };
        py.register_view(q.name, q.source, &backend)
            .unwrap_or_else(|e| panic!("{}: register_view failed: {e}", q.name));
    }
    check_views(py.database(), "initial");

    let mut next = rng(0xDECAF);
    let appendable = ["lineitem", "orders", "customer", "partsupp"];
    let base: Vec<(String, Relation)> = data
        .tables()
        .into_iter()
        .filter(|(name, _, _)| appendable.contains(name))
        .map(|(name, rel, _)| (name.to_string(), rel.clone()))
        .collect();
    assert_eq!(base.len(), appendable.len());
    for round in 0..3 {
        for _ in 0..2 {
            let (table, rel) = &base[(next() as usize) % base.len()];
            // Batch sizes cover empty, tiny and multi-hundred-row appends.
            let k = match next() % 4 {
                0 => 0,
                1 => 1 + (next() as usize) % 8,
                _ => 32 + (next() as usize) % 226,
            };
            py.append(table, &head_rows(rel, k))
                .unwrap_or_else(|e| panic!("append {k} rows to {table}: {e}"));
            check_views(py.database(), &format!("round{round}/{table}+{k}"));
        }
    }
}

/// Every hybrid workload registered as a standing view over its own
/// tables, absorbing appends to each table in turn.
#[test]
fn hybrid_workload_views_bit_identical_across_appends() {
    let mut next = rng(0xB0BA);
    for w in pytond_workloads::all_workloads(1) {
        let py = Pytond::new();
        for (name, rel, unique) in &w.tables {
            let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
            py.register_table(name, rel.clone(), &keys);
        }
        let backend = Backend {
            profile: if next() % 2 == 0 {
                Profile::Vectorized
            } else {
                Profile::Fused
            },
            threads: thread_counts()[(next() as usize) % 4],
            timeout_ms: None,
            mem_budget_mb: None,
        };
        py.register_view(w.name, w.source, &backend)
            .unwrap_or_else(|e| panic!("{}: register_view failed: {e}", w.name));
        check_views(py.database(), &format!("{}/initial", w.name));
        for (name, rel, _) in &w.tables {
            let k = (next() as usize) % 64;
            py.append(name, &head_rows(rel, k))
                .unwrap_or_else(|e| panic!("{}: append to {name}: {e}", w.name));
            check_views(py.database(), &format!("{}/{name}+{k}", w.name));
        }
    }
}

// ---------------- synthetic matrix: threads × profiles × data shapes -----

/// A synthetic base table with dict-string keys, NULL-bearing ints and
/// rounding-sensitive floats; `salt` varies the content between appends.
fn synth_rel(start: usize, rows: usize, null_every: usize, salt: u64) -> Relation {
    let mut k = Column::new(DType::Int);
    let mut f = Column::new(DType::Float);
    let mut s = Column::new(DType::Str);
    let cities = ["tokyo", "lima", "oslo", "cairo", "quito", "perth"];
    for i in start..start + rows {
        if null_every > 0 && i % null_every == 0 {
            k.push_null();
        } else {
            k.push(Value::Int(((i as u64).wrapping_mul(salt | 1) % 97) as i64))
                .unwrap();
        }
        f.push(Value::Float((i as f64) * 0.618_033_988_749 + 0.1))
            .unwrap();
        s.push(Value::Str(
            cities[(i + salt as usize) % cities.len()].to_string(),
        ))
        .unwrap();
    }
    Relation::new(vec![("k".into(), k), ("f".into(), f), ("s".into(), s)]).unwrap()
}

/// Filter, projection, group-by aggregation and join views over the
/// synthetic table, maintained at every thread count under both profiles:
/// after each append in a seeded schedule (varying batch sizes, NULL
/// densities and an empty batch) every view is bit-identical to recompute
/// on the pinned snapshot.
#[test]
fn synthetic_views_bit_identical_at_all_thread_counts() {
    for threads in thread_counts() {
        for profile in [Profile::Vectorized, Profile::Fused] {
            let db = Database::new();
            db.register("t", synth_rel(0, 4_000, 7, 3));
            db.register(
                "dim",
                Relation::new(vec![
                    ("k".into(), Column::from_i64((0..97).collect())),
                    (
                        "w".into(),
                        Column::from_f64((0..97).map(|i| i as f64 * 1.5).collect()),
                    ),
                ])
                .unwrap(),
            );
            let cfg = config(profile, threads);
            for (name, sql) in [
                ("v_filter", "SELECT k, f, s FROM t WHERE k >= 40"),
                (
                    "v_project",
                    "SELECT k + 1 AS k1, f * 2.0 AS f2 FROM t WHERE k IS NOT NULL",
                ),
                (
                    "v_agg",
                    "SELECT s, SUM(f) AS sf, COUNT(*) AS n, AVG(f) AS af, MIN(k) AS lo, \
                     MAX(k) AS hi FROM t GROUP BY s",
                ),
                (
                    "v_join_agg",
                    "SELECT t.s, SUM(dim.w) AS sw FROM t, dim WHERE t.k = dim.k AND t.k < 12 \
                     GROUP BY t.s",
                ),
                (
                    "v_sorted",
                    "SELECT s, k, f FROM t WHERE k < 5 ORDER BY f DESC, k",
                ),
            ] {
                db.register_view_with(name, sql, &cfg)
                    .unwrap_or_else(|e| panic!("{name}@{threads}t: register failed: {e}"));
            }
            let label = format!("{profile:?}@{threads}t");
            check_views(&db, &format!("{label}/initial"));
            let mut next = rng(threads as u64 * 7919 + 13);
            for (step, (rows, null_every)) in
                [(513usize, 0usize), (0, 0), (1_024, 3), (65, 1), (700, 11)]
                    .into_iter()
                    .enumerate()
            {
                let start = 4_000 + step * 1_100;
                db.append("t", &synth_rel(start, rows, null_every, next()))
                    .unwrap();
                check_views(&db, &format!("{label}/step{step}+{rows}"));
            }
        }
    }
}

// ---------------- trace pinning: eligible shapes say `delta` -------------

/// Incremental-eligible plan shapes must actually refresh via delta (the
/// trace says `delta`, and the chain views propagate exactly the delta's
/// output rows); ineligible shapes must say `recompute` with the blocking
/// operator named in the maintenance matrix.
#[test]
fn eligible_shapes_report_delta_in_trace() {
    if ivm_disabled() {
        eprintln!("PYTOND_NO_IVM set: skipping refresh-mode pinning");
        return;
    }
    let db = Database::new();
    db.register("t", synth_rel(0, 4_000, 7, 3));
    db.register(
        "dim",
        Relation::new(vec![
            ("k".into(), Column::from_i64((0..97).collect())),
            (
                "w".into(),
                Column::from_f64((0..97).map(|i| i as f64 * 1.5).collect()),
            ),
        ])
        .unwrap(),
    );
    let cfg = config(Profile::Fused, 2);
    let delta_views = [
        ("d_filter", "SELECT k, f FROM t WHERE k >= 40"),
        ("d_project", "SELECT k + 1 AS k1, f * 2.0 AS f2 FROM t"),
        (
            "d_agg",
            "SELECT s, SUM(f) AS sf, COUNT(*) AS n FROM t GROUP BY s",
        ),
        (
            // The selective predicate keeps `t` the cheap (probe) side, so
            // the appended rows stay on the left spine of the join.
            "d_join",
            "SELECT t.s, SUM(dim.w) AS sw FROM t, dim WHERE t.k = dim.k AND t.k < 12 \
             GROUP BY t.s",
        ),
    ];
    let recompute_views = [
        (
            "r_sort",
            "SELECT k, f FROM t WHERE k >= 40 ORDER BY f",
            "sort",
        ),
        ("r_distinct", "SELECT DISTINCT s FROM t", "distinct"),
        ("r_limit", "SELECT k, f FROM t LIMIT 10", "limit"),
    ];
    for (name, sql) in delta_views {
        db.register_view_with(name, sql, &cfg).unwrap();
    }
    for (name, sql, _) in recompute_views {
        db.register_view_with(name, sql, &cfg).unwrap();
    }
    db.append("t", &synth_rel(4_000, 800, 5, 11)).unwrap();
    for (name, _) in delta_views {
        let state = db.view(name).unwrap();
        assert_eq!(
            state.mode(),
            RefreshMode::Delta,
            "{name}: {}",
            db.view_trace(name).unwrap()
        );
        let trace = db.view_trace(name).unwrap();
        assert!(trace.contains("mode=delta"), "{name}: {trace}");
        assert!(
            trace.starts_with(&format!("view: {name} ")),
            "{name}: {trace}"
        );
    }
    // Chain views propagate exactly their delta's output rows.
    let filtered = db.view("d_filter").unwrap();
    assert!(
        filtered.rows_propagated() < 800,
        "{}",
        filtered.rows_propagated()
    );
    let projected = db.view("d_project").unwrap();
    assert_eq!(projected.rows_propagated(), 800);
    for (name, _, op) in recompute_views {
        let state = db.view(name).unwrap();
        assert_eq!(state.mode(), RefreshMode::Recompute, "{name}");
        let trace = db.view_trace(name).unwrap();
        assert!(trace.contains("mode=recompute"), "{name}: {trace}");
        assert!(
            trace.contains(&format!("recompute ({op})")),
            "{name}: {trace}"
        );
    }
    check_views(&db, "trace-pinning");
}
