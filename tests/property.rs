//! Property-based differential tests (proptest): randomly generated
//! filter/sort/aggregate pipelines must agree between the compiled SQL path
//! and the interpreted DataFrame baseline, and the engine must agree with
//! itself across profiles and thread counts.

use proptest::prelude::*;
use pytond::{Backend, OptLevel, Pytond};
use pytond_common::{Column, Relation, Value};
use pytond_frame::{AggOp, DataFrame};

fn table(rows: &[(i64, f64, u8)]) -> Relation {
    Relation::new(vec![
        (
            "k".into(),
            Column::from_i64(rows.iter().map(|(k, _, _)| *k).collect()),
        ),
        (
            "v".into(),
            Column::from_f64(rows.iter().map(|(_, v, _)| *v).collect()),
        ),
        (
            "tag".into(),
            Column::from_str_vec(rows.iter().map(|(_, _, t)| format!("t{}", t % 4)).collect()),
        ),
    ])
    .expect("rectangular")
}

fn instance(rel: &Relation) -> Pytond {
    let py = Pytond::new();
    py.register_table("t", rel.clone(), &[]);
    py
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// filter(threshold) → groupby(tag).sum/count → sort: SQL path ≡ frame path.
    #[test]
    fn filter_group_sort_agree(
        rows in prop::collection::vec((0i64..50, -100.0f64..100.0, 0u8..4), 1..200),
        threshold in -50i64..50,
    ) {
        let rel = table(&rows);
        let py = instance(&rel);
        let source = format!(
            "@pytond\ndef q(t):\n    f = t[t.k > {threshold}]\n    g = f.groupby(['tag']).agg(s=('v', 'sum'), n=('v', 'count'))\n    return g.sort_values(by=['tag'])\n"
        );
        let compiled = py.run(&source, &Backend::duckdb_sim(1)).unwrap();

        let df = DataFrame::from_relation(&rel);
        let f = df.filter(&df.col("k").unwrap().gt_val(&Value::Int(threshold))).unwrap();
        let g = f
            .groupby(&["tag"]).unwrap()
            .agg(&[("v", AggOp::Sum, "s"), ("v", AggOp::Count, "n")]).unwrap();
        let expected = g.sort_values(&[("tag", true)]).unwrap().to_relation();

        prop_assert!(
            expected.canonicalized().approx_eq(&compiled.canonicalized(), 1e-6),
            "diff: {:?}", expected.diff(&compiled, 1e-6)
        );
    }

    /// Every optimization level and profile produces identical results.
    #[test]
    fn levels_and_profiles_agree(
        rows in prop::collection::vec((0i64..20, -10.0f64..10.0, 0u8..4), 1..100),
    ) {
        let rel = table(&rows);
        let py = instance(&rel);
        let source = "@pytond\ndef q(t):\n    f = t[(t.k > 3) & (t.v < 5.0)]\n    f['w'] = f.v * 2 + 1\n    return f.sort_values(by=['k', 'v'])\n";
        let reference = py.run_at(source, &Backend::duckdb_sim(1), OptLevel::O0).unwrap();
        for level in OptLevel::all() {
            for backend in [Backend::duckdb_sim(1), Backend::hyper_sim(4)] {
                let out = py.run_at(source, &backend, level).unwrap();
                prop_assert!(
                    reference.canonicalized().approx_eq(&out.canonicalized(), 1e-9),
                    "{} on {} diverged", level.name(), backend.name()
                );
            }
        }
    }

    /// Join + isin against a second random table.
    #[test]
    fn join_and_isin_agree(
        rows in prop::collection::vec((0i64..30, -10.0f64..10.0, 0u8..4), 1..120),
        keys in prop::collection::vec(0i64..30, 1..40),
    ) {
        let rel = table(&rows);
        let other = Relation::new(vec![
            ("k".into(), Column::from_i64(keys.clone())),
            ("w".into(), Column::from_f64(keys.iter().map(|&k| k as f64).collect())),
        ]).unwrap();
        let py = Pytond::new();
        py.register_table("t", rel.clone(), &[]);
        py.register_table("u", other.clone(), &[]);
        let source = "@pytond\ndef q(t, u):\n    keep = t[t.k.isin(u['k'])]\n    return keep.sort_values(by=['k', 'v'])\n";
        let compiled = py.run(source, &Backend::duckdb_sim(1)).unwrap();

        let df = DataFrame::from_relation(&rel);
        let udf = DataFrame::from_relation(&other);
        let mask = df.col("k").unwrap().isin(udf.col("k").unwrap());
        let expected = df.filter(&mask).unwrap()
            .sort_values(&[("k", true), ("v", true)]).unwrap()
            .to_relation();
        prop_assert!(
            expected.canonicalized().approx_eq(&compiled.canonicalized(), 1e-6),
            "diff: {:?}", expected.diff(&compiled, 1e-6)
        );
    }
}
