//! Differential property tests for dictionary-encoded string columns: a
//! database whose string columns are dictionary-encoded at registration
//! (the default) must produce **bit-identical** results — `Value::total_cmp`
//! per cell — to one registered through [`Database::register_plain`], for
//! every query, profile and thread count. Code-space predicate kernels,
//! packed dictionary join keys, fused byte-key probes and zone-map pruning
//! over codes are all implementation detail the result must never betray.
//!
//! Running the whole test suite under `PYTOND_NO_DICT=1` (CI does) is the
//! complementary check: encoding is then disabled process-wide, both sides
//! of this suite take the plain path, and the comparison is the identity —
//! proving the kill switch restores pre-dictionary behavior exactly.
//!
//! Coverage: all 22 TPC-H queries, every hybrid workload, a generated
//! corpus crossing string cardinality (2 … 30 000 distinct) × NULL density ×
//! clustering, at threads 1 / 2 / 7 / hardware, fused and materializing;
//! plus regressions for dictionary-extending appends and failed appends.

use pytond::{Backend, EngineConfig, OptLevel, Profile, Pytond};
use pytond_common::{pool, Column, DType, Relation, Value};
use pytond_sqldb::Database;

fn thread_counts() -> Vec<usize> {
    vec![1, 2, 7, pool::hardware_threads().max(2)]
}

/// Small morsels so test-sized inputs span many-morsel grids.
const TEST_MORSEL: usize = 1024;

fn config(profile: Profile, threads: usize) -> EngineConfig {
    EngineConfig {
        profile,
        threads,
        morsel: TEST_MORSEL,
        zone_prune: true,
        ..EngineConfig::default()
    }
}

/// `true` when the process runs with dictionary encoding disabled
/// (`PYTOND_NO_DICT=1`): differential checks hold trivially, but assertions
/// about dictionary metrics must be skipped.
fn dict_disabled() -> bool {
    std::env::var("PYTOND_NO_DICT").is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0"
    })
}

/// Exact equality under `Value::total_cmp` — see
/// `tests/parallel_property.rs` for the rationale.
fn assert_bit_identical(name: &str, reference: &Relation, candidate: &Relation) {
    assert_eq!(
        reference.num_cols(),
        candidate.num_cols(),
        "{name}: column count"
    );
    assert_eq!(
        reference.num_rows(),
        candidate.num_rows(),
        "{name}: row count"
    );
    for ci in 0..reference.num_cols() {
        let a = reference.column_at(ci);
        let b = candidate.column_at(ci);
        for i in 0..a.len() {
            let (va, vb) = (a.get(i), b.get(i));
            assert!(
                va.total_cmp(&vb) == std::cmp::Ordering::Equal,
                "{name}: cell ({i}, {}) differs: {va:?} vs {vb:?}",
                reference.name_at(ci)
            );
        }
    }
}

/// Runs `sql` against the plain-string database (vectorized, serial — the
/// oracle) and against the dictionary-encoded database under both profiles
/// at every thread count, asserting bit-identity throughout.
fn check_sql(name: &str, plain: &Database, encoded: &Database, sql: &str) {
    let reference = plain
        .execute_sql(sql, &config(Profile::Vectorized, 1))
        .unwrap_or_else(|e| panic!("{name}: plain run failed: {e}"));
    for threads in thread_counts() {
        for profile in [Profile::Vectorized, Profile::Fused] {
            let r = encoded
                .execute_sql(sql, &config(profile, threads))
                .unwrap_or_else(|e| panic!("{name}/{profile:?}@{threads}t: run failed: {e}"));
            assert_bit_identical(&format!("{name}/{profile:?}@{threads}t"), &reference, &r);
        }
    }
}

/// Builds a `Pytond` facade from workload tables; with `plain` set, the
/// stored data is re-registered through the plain-string path afterwards
/// (the catalog entry — schema, unique keys, row counts — stays intact, so
/// both facades plan identically).
fn facade(tables: &[(&str, Relation, Vec<Vec<&str>>)], plain: bool) -> Pytond {
    let py = Pytond::new();
    for (name, rel, unique) in tables {
        let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
        py.register_table(name, rel.clone(), &keys);
        if plain {
            py.database().register_plain(name, rel.clone());
        }
    }
    py
}

/// Compiles one source on both facades and cross-checks encoded (both
/// profiles, every thread count) against the plain oracle.
fn check_source(name: &str, plain: &Pytond, encoded: &Pytond, source: &str) {
    let backend = Backend {
        profile: Profile::Fused,
        threads: 1,
        timeout_ms: None,
        mem_budget_mb: None,
    };
    let oracle = plain
        .prepare(source, &backend, OptLevel::O4)
        .unwrap_or_else(|e| panic!("{name}: plain compile failed: {e}"));
    let reference = plain
        .database()
        .execute_prepared(&oracle, &config(Profile::Vectorized, 1))
        .unwrap_or_else(|e| panic!("{name}: plain run failed: {e}"));
    let prepared = encoded
        .prepare(source, &backend, OptLevel::O4)
        .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    for threads in thread_counts() {
        for profile in [Profile::Vectorized, Profile::Fused] {
            let r = encoded
                .database()
                .execute_prepared(&prepared, &config(profile, threads))
                .unwrap_or_else(|e| panic!("{name}/{profile:?}@{threads}t: run failed: {e}"));
            assert_bit_identical(&format!("{name}/{profile:?}@{threads}t"), &reference, &r);
        }
    }
}

#[test]
fn tpch_dict_matches_plain() {
    let data = pytond_tpch::generate(0.002);
    let tables: Vec<(&str, Relation, Vec<Vec<&str>>)> = data
        .tables()
        .into_iter()
        .map(|(name, rel, unique)| (name, rel.clone(), unique))
        .collect();
    let encoded = facade(&tables, false);
    let plain = facade(&tables, true);
    for q in pytond_tpch::all_queries() {
        check_source(q.name, &plain, &encoded, q.source);
    }
}

#[test]
fn hybrid_workloads_dict_matches_plain() {
    for w in pytond_workloads::all_workloads(1) {
        let tables: Vec<(&str, Relation, Vec<Vec<&str>>)> = w
            .tables
            .iter()
            .map(|(name, rel, unique)| (*name, rel.clone(), unique.clone()))
            .collect();
        let encoded = facade(&tables, false);
        let plain = facade(&tables, true);
        check_source(w.name, &plain, &encoded, w.source);
    }
}

// ---------------- generated string corpus ----------------

/// Deterministic string key: `cardinality` distinct values, scattered or
/// clustered, with a NULL every `null_every` rows (0 = no NULLs).
fn str_column(n: usize, cardinality: usize, clustered: bool, null_every: usize) -> Column {
    let mut col = Column::new(DType::Str);
    for i in 0..n {
        if null_every > 0 && i % null_every == 0 {
            col.push_null();
            continue;
        }
        let k = if clustered {
            i * cardinality / n.max(1)
        } else {
            i.wrapping_mul(2_654_435_761) % cardinality
        };
        col.push(Value::Str(format!("key-{k:05}"))).unwrap();
    }
    col
}

fn corpus_pair(
    n: usize,
    cardinality: usize,
    clustered: bool,
    null_every: usize,
) -> (Database, Database) {
    let s = str_column(n, cardinality, clustered, null_every);
    let t = Relation::new(vec![
        ("s".into(), s),
        ("v".into(), Column::from_i64((0..n as i64).collect())),
        (
            "f".into(),
            Column::from_f64((0..n).map(|i| (i as f64) * 0.37 + 0.1).collect()),
        ),
    ])
    .unwrap();
    // A dimension table covering part of the key domain, so joins have both
    // hits and misses (and the probe side sees strings the build never did).
    let dim_keys: Vec<String> = (0..cardinality.max(2) / 2)
        .map(|k| format!("key-{k:05}"))
        .collect();
    let dim = Relation::new(vec![
        (
            "s".into(),
            Column::from_strs(&dim_keys.iter().map(String::as_str).collect::<Vec<_>>()),
        ),
        (
            "w".into(),
            Column::from_i64((0..dim_keys.len() as i64).collect()),
        ),
    ])
    .unwrap();
    let plain = Database::new();
    plain.register_plain("t", t.clone());
    plain.register_plain("dim", dim.clone());
    let encoded = Database::new();
    encoded.register("t", t);
    encoded.register("dim", dim);
    (plain, encoded)
}

#[test]
fn string_corpus_dict_matches_plain() {
    // Cardinality spans degenerate (2), hash-friendly (50), and
    // high-cardinality (30 000 over 30 000 rows ⇒ nearly unique) regimes;
    // NULL density exercises the invalid-row placeholder-code convention.
    for &cardinality in &[2usize, 50, 30_000] {
        for &clustered in &[true, false] {
            for &null_every in &[0usize, 3] {
                let (plain, encoded) = corpus_pair(30_000, cardinality, clustered, null_every);
                let label = format!("card{cardinality}/clustered={clustered}/nulls={null_every}");
                for (tag, sql) in [
                    // Code-space equality / inequality / IN, including a
                    // literal absent from every dictionary.
                    ("eq", "SELECT v FROM t WHERE s = 'key-00001'"),
                    ("eq-miss", "SELECT v FROM t WHERE s = 'no-such-key'"),
                    ("ne", "SELECT COUNT(*) AS n FROM t WHERE s <> 'key-00001'"),
                    (
                        "in",
                        "SELECT v FROM t WHERE s IN ('key-00000', 'key-00002', 'absent')",
                    ),
                    // Order comparisons and LIKE decode per dictionary
                    // entry, never per row — results must not notice.
                    ("range", "SELECT COUNT(*) AS n FROM t WHERE s < 'key-00025'"),
                    (
                        "like",
                        "SELECT COUNT(*) AS n FROM t WHERE s LIKE 'key-000%'",
                    ),
                    // String functions with per-entry tables.
                    (
                        "func",
                        "SELECT UPPER(s) AS u, LENGTH(s) AS l FROM t WHERE v < 100",
                    ),
                    ("concat", "SELECT s || '-x' AS sx FROM t WHERE v < 100"),
                    // Packed-code group keys and DISTINCT.
                    (
                        "groupby",
                        "SELECT s, COUNT(*) AS n, SUM(f) AS sf FROM t GROUP BY s",
                    ),
                    ("distinct", "SELECT DISTINCT s FROM t"),
                    ("nunique", "SELECT COUNT(DISTINCT s) AS d FROM t"),
                    // String-keyed joins: inner/left/semi/anti, fused and
                    // materializing, with hit and miss keys.
                    (
                        "join",
                        "SELECT t.v, dim.w FROM t, dim WHERE t.s = dim.s AND t.v < 20000",
                    ),
                    (
                        "left-join",
                        "SELECT t.v, dim.w FROM t LEFT JOIN dim ON t.s = dim.s",
                    ),
                    ("semi", "SELECT v FROM t WHERE s IN (SELECT s FROM dim)"),
                    (
                        "anti",
                        "SELECT v FROM t WHERE s NOT IN (SELECT s FROM dim WHERE s IS NOT NULL)",
                    ),
                    (
                        "join-agg",
                        "SELECT dim.s, COUNT(*) AS n, SUM(t.f) AS sf \
                         FROM t, dim WHERE t.s = dim.s GROUP BY dim.s",
                    ),
                    // Sort on an encoded column (lexicographic, not code
                    // order) and NULL handling.
                    (
                        "order",
                        "SELECT s, v FROM t WHERE v < 200 ORDER BY s DESC, v",
                    ),
                    ("nulls", "SELECT COUNT(*) AS n FROM t WHERE s IS NULL"),
                ] {
                    check_sql(&format!("{label}/{tag}"), &plain, &encoded, sql);
                }
            }
        }
    }
}

// ---------------- appends extend the dictionary in place ----------------

#[test]
fn append_extends_dictionary() {
    let base = Relation::new(vec![
        ("s".into(), Column::from_strs(&["a", "b", "a", "c"])),
        ("v".into(), Column::from_i64(vec![1, 2, 3, 4])),
    ])
    .unwrap();
    let extra = Relation::new(vec![
        ("s".into(), Column::from_strs(&["b", "d", "a", "e"])),
        ("v".into(), Column::from_i64(vec![5, 6, 7, 8])),
    ])
    .unwrap();
    let encoded = Database::new();
    encoded.register("t", base.clone());
    let plain = Database::new();
    plain.register_plain("t", base);
    encoded.append("t", &extra).unwrap();
    plain.append("t", &extra).unwrap();
    for sql in [
        "SELECT s, v FROM t",
        "SELECT v FROM t WHERE s = 'd'",
        "SELECT v FROM t WHERE s = 'a'",
        "SELECT s, COUNT(*) AS n FROM t GROUP BY s",
    ] {
        check_sql(sql, &plain, &encoded, sql);
    }
    if !dict_disabled() {
        // The appended rows re-encoded against the existing dictionary,
        // extending it in place: one dictionary, first-occurrence order,
        // old codes untouched.
        let stored = encoded.table("t").expect("registered");
        let (codes, dict, _) = stored.batch.cols[0]
            .dict_parts()
            .expect("string column stays dictionary-encoded across appends");
        let strs: Vec<&str> = dict.strs().iter().map(String::as_str).collect();
        assert_eq!(strs, ["a", "b", "c", "d", "e"]);
        assert_eq!(codes, [0u32, 1, 0, 2, 1, 3, 0, 4]);
    }
}

#[test]
fn failed_append_publishes_nothing() {
    let base = Relation::new(vec![
        ("s".into(), Column::from_strs(&["a", "b"])),
        ("v".into(), Column::from_i64(vec![1, 2])),
    ])
    .unwrap();
    let db = Database::new();
    db.register("t", base);
    let version = db.stats_version();
    // Second column has the wrong dtype: validation must reject the append
    // before any column (including the already-matching string column)
    // mutates — a failed append publishes nothing.
    let bad = Relation::new(vec![
        ("s".into(), Column::from_strs(&["c"])),
        ("v".into(), Column::from_strs(&["oops"])),
    ])
    .unwrap();
    assert!(db.append("t", &bad).is_err());
    assert_eq!(db.stats_version(), version, "failed append published");
    let stored = db.table("t").expect("registered");
    assert_eq!(stored.num_rows(), 2);
    if !dict_disabled() {
        let (_, dict, _) = stored.batch.cols[0].dict_parts().expect("encoded");
        let strs: Vec<&str> = dict.strs().iter().map(String::as_str).collect();
        assert_eq!(strs, ["a", "b"], "rejected rows extended the dictionary");
    }
}

// ---------------- metrics and EXPLAIN pin ----------------

/// The acceptance pin: a Q9-style string-keyed join + aggregate runs as one
/// fused pipeline whose probe packs dictionary codes, and the trace says so.
#[test]
fn string_keyed_join_fuses_with_dict_probe() {
    let (_, encoded) = corpus_pair(30_000, 50, false, 0);
    let sql = "SELECT dim.s, COUNT(*) AS n, SUM(t.f) AS sf \
               FROM t, dim WHERE t.s = dim.s AND t.v < 25000 GROUP BY dim.s";
    let (_, trace) = encoded
        .execute_sql_traced(sql, &config(Profile::Fused, 2))
        .unwrap();
    let no_fuse = std::env::var("PYTOND_NO_FUSE").is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0"
    });
    if dict_disabled() || no_fuse {
        return;
    }
    assert!(
        trace.metrics.dict_probe_pipelines >= 1,
        "expected a fused dict-code probe, got metrics {:?}",
        trace.metrics
    );
    assert!(
        trace.plan.contains("dict-key"),
        "EXPLAIN does not label the dict-code probe:\n{}",
        trace.plan
    );
    assert!(
        trace.metrics.dict_encoded_cols >= 1,
        "scan saw no dictionary-encoded columns: {:?}",
        trace.metrics
    );
    assert_eq!(
        trace.metrics.dict_decoded_cols, 1,
        "exactly the output string column decodes at materialization"
    );
}

/// Dictionary decode happens at result materialization and nowhere earlier:
/// a query whose output carries no string column decodes nothing.
#[test]
fn no_string_output_decodes_nothing() {
    let (_, encoded) = corpus_pair(10_000, 50, false, 0);
    let (_, trace) = encoded
        .execute_sql_traced(
            "SELECT COUNT(*) AS n, SUM(f) AS sf FROM t WHERE s <> 'key-00001'",
            &config(Profile::Fused, 2),
        )
        .unwrap();
    assert_eq!(trace.metrics.dict_decoded_cols, 0);
}
