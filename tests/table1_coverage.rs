//! Table I of the paper, as an executable checklist: PyTond supports Pandas
//! (RA), NumPy (LA), multiple data layouts, and SQL rewriting — the
//! capability column the paper claims over ByePy/Blacher/Grizzly/PyFroid.

use pytond::{Backend, Dialect, OptLevel, Pytond};
use pytond_common::{Column, Relation};
use pytond_workloads::covariance as cov;

fn frame_instance() -> Pytond {
    let py = Pytond::new();
    py.register_table(
        "t",
        Relation::new(vec![
            ("k".into(), Column::from_strs(&["a", "b", "a"])),
            ("v".into(), Column::from_f64(vec![1.0, 2.0, 3.0])),
        ])
        .unwrap(),
        &[],
    );
    py
}

/// Column "Pandas": relational-algebra workloads translate and run.
#[test]
fn supports_pandas() {
    let py = frame_instance();
    let out = py
        .run(
            "@pytond\ndef q(t):\n    g = t.groupby(['k']).agg(s=('v', 'sum'))\n    return g.sort_values(by=['k'])\n",
            &Backend::duckdb_sim(1),
        )
        .unwrap();
    assert_eq!(out.num_rows(), 2);
}

/// Column "NumPy": linear-algebra workloads (einsum) translate and run.
#[test]
fn supports_numpy() {
    let m = cov::gen_matrix(64, 4, 1.0, 3);
    let py = Pytond::new();
    py.register_table("m", cov::dense_relation(&m), &[&["__id"]]);
    let out = py
        .run(cov::covariance_dense_source(), &Backend::duckdb_sim(1))
        .unwrap();
    assert_eq!(out.num_rows(), 4); // 4x4 covariance
}

/// Column "Multiple Data Layout": the same einsum runs on dense and sparse.
#[test]
fn supports_multiple_layouts() {
    let m = cov::gen_matrix(64, 4, 0.2, 3);
    let dense = Pytond::new();
    dense.register_table("m", cov::dense_relation(&m), &[&["__id"]]);
    assert!(dense
        .run(cov::covariance_dense_source(), &Backend::duckdb_sim(1))
        .is_ok());
    let sparse = Pytond::new();
    sparse.register_table("m", cov::sparse_relation(&m), &[]);
    assert!(sparse
        .run(cov::covariance_sparse_source(), &Backend::duckdb_sim(1))
        .is_ok());
}

/// Column "SQL Rewriting": the optimizer changes the generated SQL (fewer
/// CTEs after rule inlining).
#[test]
fn supports_sql_rewriting() {
    let py = frame_instance();
    let src = "@pytond\ndef q(t):\n    a = t[t.v > 0.5]\n    b = a[['k', 'v']]\n    c = b[b.v < 99.0]\n    return c\n";
    let o0 = py.compile_at(src, Dialect::DuckDb, OptLevel::O0).unwrap();
    let o4 = py.compile_at(src, Dialect::DuckDb, OptLevel::O4).unwrap();
    assert!(o4.sql.matches(" AS (").count() < o0.sql.matches(" AS (").count());
}

/// Column "Generic Python" is deliberately unsupported (the paper's design
/// targets Pandas/NumPy, not arbitrary imperative Python — that row belongs
/// to ByePy).
#[test]
fn generic_python_is_out_of_scope() {
    let py = frame_instance();
    let err = py.run(
        "@pytond\ndef q(t):\n    x = 0\n    x += 1\n    return t\n",
        &Backend::duckdb_sim(1),
    );
    assert!(err.is_err());
}
