//! Deterministic fault-injection sweeps (ISSUE 7 / `docs/RESILIENCE.md`).
//!
//! The harness (`pytond_common::fault`, compiled in for test builds via the
//! `fault` feature) fires deterministic failures at three sites: pool job
//! dispatch (an injected worker panic), append publication, and the
//! executor morsel body. This suite proves the resilience invariant across
//! several seeds:
//!
//! - every injected failure surfaces as a **transient** error OR the query
//!   completes with a **bit-identical** result — never a wrong answer,
//!   never a crash;
//! - the worker pool stays serviceable afterwards;
//! - a failed append publishes nothing (version and content unchanged);
//! - subsequent queries are unaffected once the harness is cleared.
//!
//! The harness state is process-global, so this file is its own test
//! binary and every test serializes on [`FAULT_LOCK`]. CI re-runs this
//! binary with `PYTOND_FAULT=<seed>:<rate>` for several seeds; when that
//! variable is set it *replaces* the built-in seed sweep below.

use pytond_common::{fault, Column, Relation, Value};
use pytond_sqldb::{Database, EngineConfig, Profile};
use std::sync::Mutex;

/// Serializes tests in this binary: the fault harness is process-global.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

const BASE_ROWS: i64 = 64 * 1024;
const BATCH_ROWS: i64 = 1024;

const AGG_SQL: &str = "SELECT COUNT(*) AS n, SUM(id) AS ids, SUM(a + b) AS torn FROM t";

fn rel(start: i64, rows: i64) -> Relation {
    Relation::new(vec![
        (
            "id".into(),
            Column::from_i64((start..start + rows).collect()),
        ),
        (
            "a".into(),
            Column::from_i64((start..start + rows).map(|i| i % 97).collect()),
        ),
        (
            "b".into(),
            Column::from_i64((start..start + rows).map(|i| -(i % 97)).collect()),
        ),
    ])
    .unwrap()
}

fn agg_of(out: &Relation) -> (i64, i64, i64) {
    let get = |name: &str| match out.column(name).unwrap().get(0) {
        Value::Int(i) => i,
        other => panic!("expected Int in {name}, got {other:?}"),
    };
    (get("n"), get("ids"), get("torn"))
}

/// The `(seed, rate)` pairs to sweep: `PYTOND_FAULT=<seed>:<rate>` when CI
/// sets it, else three built-in seeds at increasing rates.
fn sweep() -> Vec<(u64, f64)> {
    if let Ok(raw) = std::env::var("PYTOND_FAULT") {
        if let Some((seed, rate)) = raw.split_once(':') {
            if let (Ok(seed), Ok(rate)) = (seed.trim().parse(), rate.trim().parse()) {
                return vec![(seed, rate)];
            }
        }
    }
    vec![(1, 0.02), (7, 0.1), (42, 0.3)]
}

/// Queries under injected faults, serial and parallel: every run either
/// reproduces the reference bit for bit or returns a transient error, and
/// the pool answers the next query as if nothing happened.
#[test]
fn injected_faults_yield_transient_errors_or_identical_results() {
    let _guard = FAULT_LOCK.lock().unwrap();
    // Fails to compile if the root dev-dependency drops the fault feature:
    // the whole suite would silently test nothing.
    const { assert!(fault::COMPILED) };
    fault::clear();
    let db = Database::new();
    db.register("t", rel(0, BASE_ROWS));
    let prepared = db.prepare(AGG_SQL, Profile::Vectorized).unwrap();
    let cfgs = [
        EngineConfig {
            threads: 1,
            morsel: 4096,
            ..EngineConfig::default()
        },
        EngineConfig {
            threads: 4,
            morsel: 4096,
            ..EngineConfig::default()
        },
    ];
    let reference = db.execute_prepared(&prepared, &cfgs[0]).unwrap();

    for (seed, rate) in sweep() {
        fault::set(seed, rate);
        let mut failures = 0u32;
        for round in 0..30 {
            let cfg = &cfgs[round % cfgs.len()];
            match db.execute_prepared(&prepared, cfg) {
                Ok(out) => {
                    assert_eq!(
                        out, reference,
                        "seed {seed}: a faulted run produced a different result"
                    );
                }
                Err(e) => {
                    failures += 1;
                    assert!(
                        e.is_transient(),
                        "seed {seed}: injected fault surfaced as a permanent error: {e}"
                    );
                }
            }
        }
        // The sweep rates are high enough that at least one fault fired per
        // seed; determinism means re-running reproduces exactly this split.
        assert!(
            failures > 0,
            "seed {seed}: no injected fault fired in 30 runs"
        );
        // The pool survives every injected panic: with the harness off, the
        // very next query over the same snapshot is exact.
        fault::clear();
        let after = db.execute_prepared(&prepared, &cfgs[1]).unwrap();
        assert_eq!(after, reference, "seed {seed}: pool left unserviceable");
    }
    fault::clear();
}

/// The fused pipeline driver under the same sweeps: morsel faults fire at
/// the claim inside the single-pass drive (before any stage of that morsel
/// runs), mid-pipeline rather than between materialized operators. The
/// invariant is unchanged — and strengthened: every *completed* faulted
/// run must be bit-identical to the **materializing** reference, so a
/// fault can never corrupt the fused driver's published chunks or partial
/// aggregation state.
#[test]
fn injected_faults_in_fused_pipelines_yield_transient_or_identical() {
    let _guard = FAULT_LOCK.lock().unwrap();
    fault::clear();
    let db = Database::new();
    db.register("t", rel(0, BASE_ROWS));
    // The pushed-down predicate makes this a scan→aggregate pipeline under
    // the fused profile.
    let sql = "SELECT COUNT(*) AS n, SUM(id) AS ids, SUM(a + b) AS torn FROM t WHERE id >= 0";
    let prepared = db.prepare(sql, Profile::Fused).unwrap();
    let fused_cfgs = [
        EngineConfig {
            profile: Profile::Fused,
            threads: 1,
            morsel: 4096,
            ..EngineConfig::default()
        },
        EngineConfig {
            profile: Profile::Fused,
            threads: 4,
            morsel: 4096,
            ..EngineConfig::default()
        },
    ];
    let reference = db
        .execute_prepared(
            &prepared,
            &EngineConfig {
                profile: Profile::Vectorized,
                threads: 1,
                morsel: 4096,
                ..EngineConfig::default()
            },
        )
        .unwrap();

    for (seed, rate) in sweep() {
        fault::set(seed, rate);
        let mut failures = 0u32;
        for round in 0..30 {
            let cfg = &fused_cfgs[round % fused_cfgs.len()];
            match db.execute_prepared(&prepared, cfg) {
                Ok(out) => {
                    assert_eq!(
                        out, reference,
                        "seed {seed}: a faulted fused run diverged from the \
                         materializing reference"
                    );
                }
                Err(e) => {
                    failures += 1;
                    assert!(
                        e.is_transient(),
                        "seed {seed}: fused-pipeline fault surfaced as a permanent error: {e}"
                    );
                }
            }
        }
        assert!(
            failures > 0,
            "seed {seed}: no injected fault fired in 30 fused runs"
        );
        fault::clear();
        let after = db.execute_prepared(&prepared, &fused_cfgs[1]).unwrap();
        assert_eq!(after, reference, "seed {seed}: pool left unserviceable");
    }
    fault::clear();
}

/// Appends under injected publication faults: a failed append changes
/// neither the version nor the content, and the table afterwards holds
/// exactly the successful batches.
#[test]
fn faulted_appends_publish_nothing() {
    let _guard = FAULT_LOCK.lock().unwrap();
    fault::clear();
    let db = Database::new();
    db.register("t", rel(0, BASE_ROWS));
    let prepared = db.prepare(AGG_SQL, Profile::Vectorized).unwrap();
    let cfg = EngineConfig::default();

    for (seed, rate) in sweep() {
        // Start each seed from a known version.
        let start_version = db.stats_version();
        let start_rows = agg_of(&db.execute_prepared(&prepared, &cfg).unwrap()).0;
        fault::set(seed, rate.max(0.2));
        let mut appended = 0i64;
        for _ in 0..25 {
            let before = db.stats_version();
            match db.append("t", &rel(start_rows + appended * BATCH_ROWS, BATCH_ROWS)) {
                Ok(()) => {
                    appended += 1;
                    assert_eq!(db.stats_version(), before + 1);
                }
                Err(e) => {
                    assert!(e.is_transient(), "seed {seed}: {e}");
                    assert_eq!(
                        db.stats_version(),
                        before,
                        "seed {seed}: failed append moved the version"
                    );
                }
            }
        }
        fault::clear();
        // Content check from first principles: exactly the successful
        // batches, id-dense, torn-read invariant intact.
        let n = start_rows + appended * BATCH_ROWS;
        let (count, ids, torn) = agg_of(&db.execute_prepared(&prepared, &cfg).unwrap());
        assert_eq!(count, n, "seed {seed}");
        assert_eq!(ids, n * (n - 1) / 2, "seed {seed}");
        assert_eq!(torn, 0, "seed {seed}");
        assert_eq!(db.stats_version(), start_version + appended as u64);
    }
}

// ---------------- materialized views under faults (ISSUE 10) -------------

/// `true` when the process runs with `PYTOND_NO_IVM=1`: maintenance is
/// disabled, so refresh-path fault tests have nothing to exercise.
fn ivm_disabled() -> bool {
    std::env::var("PYTOND_NO_IVM").is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0"
    })
}

/// View refresh under the fault sweeps: the `view-publish` site (plus
/// morsel and pool faults inside the refresh's own execution) can kill any
/// refresh, and every surviving observation must still hold **exactly** the
/// content of the version it is stamped with — a fault may leave the view
/// *stale* (prior consistent version) but never *wrong*. Appends themselves
/// keep succeeding, the pool stays serviceable, and after the harness
/// clears one more append heals the view back to the live version.
#[test]
fn faulted_view_refreshes_keep_a_consistent_prior_version_and_heal() {
    let _guard = FAULT_LOCK.lock().unwrap();
    fault::clear();
    let db = Database::new();
    db.register("t", rel(0, BASE_ROWS));
    db.register_view("standing", AGG_SQL).unwrap();
    let expected = |rows: i64| (rows, rows * (rows - 1) / 2, 0);
    // version → total rows at that version, for stamp-pinned checks.
    let mut rows_at = std::collections::BTreeMap::new();
    rows_at.insert(db.stats_version(), BASE_ROWS);

    for (seed, rate) in sweep() {
        fault::set(seed, rate.max(0.15));
        let mut stale_observed = false;
        for _ in 0..25 {
            let before_rows = *rows_at.values().last().unwrap();
            match db.append("t", &rel(before_rows, BATCH_ROWS)) {
                Ok(()) => {
                    rows_at.insert(db.stats_version(), before_rows + BATCH_ROWS);
                }
                Err(e) => {
                    assert!(e.is_transient(), "seed {seed}: {e}");
                    continue;
                }
            }
            // The read side: under injected faults the read itself may be
            // killed (recompute-on-read oracle mode), but a state that IS
            // observed must match its stamp exactly.
            let state = match db.view("standing") {
                Ok(s) => s,
                Err(e) => {
                    assert!(e.is_transient(), "seed {seed}: {e}");
                    continue;
                }
            };
            let stamp = state.snapshot_version();
            let rows = *rows_at
                .get(&stamp)
                .unwrap_or_else(|| panic!("seed {seed}: stamp v{stamp} was never published"));
            assert_eq!(
                agg_of(state.relation()),
                expected(rows),
                "seed {seed}: view content diverged from its stamp v{stamp}"
            );
            if stamp < db.stats_version() {
                stale_observed = true;
            }
        }
        fault::clear();
        if !ivm_disabled() {
            assert!(
                stale_observed || fault::fired() == 0 || rate < 0.1,
                "seed {seed}: refresh faults fired but the view never went stale"
            );
        }
        // Healing: with the harness off, the next append refreshes the view
        // back onto the live version, bit-exact.
        let before_rows = *rows_at.values().last().unwrap();
        db.append("t", &rel(before_rows, BATCH_ROWS)).unwrap();
        rows_at.insert(db.stats_version(), before_rows + BATCH_ROWS);
        let state = db.view("standing").unwrap();
        assert_eq!(
            state.snapshot_version(),
            db.stats_version(),
            "seed {seed}: view did not heal after the harness cleared"
        );
        assert_eq!(
            agg_of(state.relation()),
            expected(before_rows + BATCH_ROWS),
            "seed {seed}"
        );
        // The pool answers ordinary queries as if nothing happened.
        let direct = db.execute_sql(AGG_SQL, &EngineConfig::default()).unwrap();
        assert_eq!(agg_of(&direct), expected(before_rows + BATCH_ROWS));
    }
    fault::clear();
}

/// Appends to a table the view does not reference, racing injected refresh
/// faults: a stale view (a prior refresh died at the `view-publish` site)
/// must never be re-stamped as fresh by an unreferenced-table append — it
/// either heals (full recompute, content exact for the new stamp) or keeps
/// its prior stamp. With the harness cleared, a single unreferenced append
/// alone heals the view back to the live version.
#[test]
fn unreferenced_appends_heal_or_keep_stale_views() {
    let _guard = FAULT_LOCK.lock().unwrap();
    fault::clear();
    let db = Database::new();
    db.register("t", rel(0, BASE_ROWS));
    db.register("side", rel(0, 16));
    db.register_view("standing", AGG_SQL).unwrap();
    let expected = |rows: i64| (rows, rows * (rows - 1) / 2, 0);
    // version → rows of `t` at that version (unreferenced appends publish a
    // new version with the same `t` contents).
    let mut rows_at = std::collections::BTreeMap::new();
    rows_at.insert(db.stats_version(), BASE_ROWS);
    let mut side_rows = 16i64;

    for (seed, rate) in sweep() {
        fault::set(seed, rate.max(0.15));
        for round in 0..30 {
            let before_rows = *rows_at.values().last().unwrap();
            if round % 2 == 0 {
                // Referenced append: an injected refresh fault leaves the
                // view stale for the unreferenced append that follows.
                match db.append("t", &rel(before_rows, BATCH_ROWS)) {
                    Ok(()) => {
                        rows_at.insert(db.stats_version(), before_rows + BATCH_ROWS);
                    }
                    Err(e) => assert!(e.is_transient(), "seed {seed}: {e}"),
                }
            } else {
                match db.append("side", &rel(side_rows, BATCH_ROWS)) {
                    Ok(()) => {
                        side_rows += BATCH_ROWS;
                        rows_at.insert(db.stats_version(), before_rows);
                    }
                    Err(e) => assert!(e.is_transient(), "seed {seed}: {e}"),
                }
            }
            let state = match db.view("standing") {
                Ok(s) => s,
                Err(e) => {
                    assert!(e.is_transient(), "seed {seed}: {e}");
                    continue;
                }
            };
            let stamp = state.snapshot_version();
            let rows = *rows_at
                .get(&stamp)
                .unwrap_or_else(|| panic!("seed {seed}: stamp v{stamp} was never published"));
            assert_eq!(
                agg_of(state.relation()),
                expected(rows),
                "seed {seed}: view content diverged from its stamp v{stamp} \
                 (an unreferenced append must not re-stamp stale content)"
            );
        }
        fault::clear();
        // Healing via an unreferenced append alone: whether or not the view
        // ended the sweep stale, one fault-free append to `side` must leave
        // it exact at the live version.
        let live_rows = *rows_at.values().last().unwrap();
        db.append("side", &rel(side_rows, BATCH_ROWS)).unwrap();
        side_rows += BATCH_ROWS;
        rows_at.insert(db.stats_version(), live_rows);
        let state = db.view("standing").unwrap();
        assert_eq!(
            state.snapshot_version(),
            db.stats_version(),
            "seed {seed}: unreferenced append did not heal the stale view"
        );
        assert_eq!(agg_of(state.relation()), expected(live_rows), "seed {seed}");
    }
    fault::clear();
}

/// Deadline cancellation mid-refresh: a view whose refresh blows its
/// per-view deadline keeps its prior consistent version (stamp visibly
/// behind the live snapshot), the append that triggered it still succeeds,
/// the failure is reported in the view trace, and the engine stays
/// serviceable for ordinary queries and for other views.
#[test]
fn cancelled_view_refresh_leaves_prior_version() {
    let _guard = FAULT_LOCK.lock().unwrap();
    fault::clear();
    if ivm_disabled() {
        eprintln!("PYTOND_NO_IVM set: no refresh path to cancel");
        return;
    }
    let db = Database::new();
    // Start tiny so the initial materialization beats the deadline easily;
    // the append then grows the cross join past any 50ms budget.
    db.register(
        "t",
        Relation::new(vec![("k".into(), Column::from_i64((0..10).collect()))]).unwrap(),
    );
    let tight = EngineConfig {
        timeout_ms: Some(50),
        morsel: 256,
        ..EngineConfig::default()
    };
    db.register_view_with(
        "explosive",
        "SELECT SUM(a.k + b.k) AS s FROM t AS a, t AS b WHERE a.k + b.k >= 0",
        &tight,
    )
    .unwrap();
    db.register_view("cheap", "SELECT COUNT(*) AS n FROM t")
        .unwrap();
    let before = db.view("explosive").unwrap();
    assert_eq!(before.snapshot_version(), db.stats_version());

    // 3k × 3k ≈ 9M-row cross join: far past the 50ms deadline.
    db.append(
        "t",
        &Relation::new(vec![("k".into(), Column::from_i64((10..3_000).collect()))]).unwrap(),
    )
    .unwrap();
    let after = db.view("explosive").unwrap();
    assert_eq!(
        after.snapshot_version(),
        before.snapshot_version(),
        "cancelled refresh must keep the prior consistent version"
    );
    assert!(
        after.snapshot_version() < db.stats_version(),
        "staleness must be visible via the stamp"
    );
    assert_eq!(agg_of_one(after.relation()), agg_of_one(before.relation()));
    let trace = db.view_trace("explosive").unwrap();
    assert!(trace.contains("last-error"), "{trace}");
    // The sibling view refreshed normally under the same append...
    let cheap = db.view("cheap").unwrap();
    assert_eq!(cheap.snapshot_version(), db.stats_version());
    assert_eq!(agg_of_one(cheap.relation()), 3_000);
    // ...and the engine is fully serviceable.
    let n = db
        .execute_sql("SELECT COUNT(*) AS n FROM t", &EngineConfig::default())
        .unwrap();
    assert_eq!(agg_of_one(&n), 3_000);
}

fn agg_of_one(rel: &Relation) -> i64 {
    match rel.column_at(0).get(0) {
        Value::Int(i) => i,
        other => panic!("expected Int, got {other:?}"),
    }
}
