//! Deterministic fault-injection sweeps (ISSUE 7 / `docs/RESILIENCE.md`).
//!
//! The harness (`pytond_common::fault`, compiled in for test builds via the
//! `fault` feature) fires deterministic failures at three sites: pool job
//! dispatch (an injected worker panic), append publication, and the
//! executor morsel body. This suite proves the resilience invariant across
//! several seeds:
//!
//! - every injected failure surfaces as a **transient** error OR the query
//!   completes with a **bit-identical** result — never a wrong answer,
//!   never a crash;
//! - the worker pool stays serviceable afterwards;
//! - a failed append publishes nothing (version and content unchanged);
//! - subsequent queries are unaffected once the harness is cleared.
//!
//! The harness state is process-global, so this file is its own test
//! binary and every test serializes on [`FAULT_LOCK`]. CI re-runs this
//! binary with `PYTOND_FAULT=<seed>:<rate>` for several seeds; when that
//! variable is set it *replaces* the built-in seed sweep below.

use pytond_common::{fault, Column, Relation, Value};
use pytond_sqldb::{Database, EngineConfig, Profile};
use std::sync::Mutex;

/// Serializes tests in this binary: the fault harness is process-global.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

const BASE_ROWS: i64 = 64 * 1024;
const BATCH_ROWS: i64 = 1024;

const AGG_SQL: &str = "SELECT COUNT(*) AS n, SUM(id) AS ids, SUM(a + b) AS torn FROM t";

fn rel(start: i64, rows: i64) -> Relation {
    Relation::new(vec![
        (
            "id".into(),
            Column::from_i64((start..start + rows).collect()),
        ),
        (
            "a".into(),
            Column::from_i64((start..start + rows).map(|i| i % 97).collect()),
        ),
        (
            "b".into(),
            Column::from_i64((start..start + rows).map(|i| -(i % 97)).collect()),
        ),
    ])
    .unwrap()
}

fn agg_of(out: &Relation) -> (i64, i64, i64) {
    let get = |name: &str| match out.column(name).unwrap().get(0) {
        Value::Int(i) => i,
        other => panic!("expected Int in {name}, got {other:?}"),
    };
    (get("n"), get("ids"), get("torn"))
}

/// The `(seed, rate)` pairs to sweep: `PYTOND_FAULT=<seed>:<rate>` when CI
/// sets it, else three built-in seeds at increasing rates.
fn sweep() -> Vec<(u64, f64)> {
    if let Ok(raw) = std::env::var("PYTOND_FAULT") {
        if let Some((seed, rate)) = raw.split_once(':') {
            if let (Ok(seed), Ok(rate)) = (seed.trim().parse(), rate.trim().parse()) {
                return vec![(seed, rate)];
            }
        }
    }
    vec![(1, 0.02), (7, 0.1), (42, 0.3)]
}

/// Queries under injected faults, serial and parallel: every run either
/// reproduces the reference bit for bit or returns a transient error, and
/// the pool answers the next query as if nothing happened.
#[test]
fn injected_faults_yield_transient_errors_or_identical_results() {
    let _guard = FAULT_LOCK.lock().unwrap();
    // Fails to compile if the root dev-dependency drops the fault feature:
    // the whole suite would silently test nothing.
    const { assert!(fault::COMPILED) };
    fault::clear();
    let db = Database::new();
    db.register("t", rel(0, BASE_ROWS));
    let prepared = db.prepare(AGG_SQL, Profile::Vectorized).unwrap();
    let cfgs = [
        EngineConfig {
            threads: 1,
            morsel: 4096,
            ..EngineConfig::default()
        },
        EngineConfig {
            threads: 4,
            morsel: 4096,
            ..EngineConfig::default()
        },
    ];
    let reference = db.execute_prepared(&prepared, &cfgs[0]).unwrap();

    for (seed, rate) in sweep() {
        fault::set(seed, rate);
        let mut failures = 0u32;
        for round in 0..30 {
            let cfg = &cfgs[round % cfgs.len()];
            match db.execute_prepared(&prepared, cfg) {
                Ok(out) => {
                    assert_eq!(
                        out, reference,
                        "seed {seed}: a faulted run produced a different result"
                    );
                }
                Err(e) => {
                    failures += 1;
                    assert!(
                        e.is_transient(),
                        "seed {seed}: injected fault surfaced as a permanent error: {e}"
                    );
                }
            }
        }
        // The sweep rates are high enough that at least one fault fired per
        // seed; determinism means re-running reproduces exactly this split.
        assert!(
            failures > 0,
            "seed {seed}: no injected fault fired in 30 runs"
        );
        // The pool survives every injected panic: with the harness off, the
        // very next query over the same snapshot is exact.
        fault::clear();
        let after = db.execute_prepared(&prepared, &cfgs[1]).unwrap();
        assert_eq!(after, reference, "seed {seed}: pool left unserviceable");
    }
    fault::clear();
}

/// The fused pipeline driver under the same sweeps: morsel faults fire at
/// the claim inside the single-pass drive (before any stage of that morsel
/// runs), mid-pipeline rather than between materialized operators. The
/// invariant is unchanged — and strengthened: every *completed* faulted
/// run must be bit-identical to the **materializing** reference, so a
/// fault can never corrupt the fused driver's published chunks or partial
/// aggregation state.
#[test]
fn injected_faults_in_fused_pipelines_yield_transient_or_identical() {
    let _guard = FAULT_LOCK.lock().unwrap();
    fault::clear();
    let db = Database::new();
    db.register("t", rel(0, BASE_ROWS));
    // The pushed-down predicate makes this a scan→aggregate pipeline under
    // the fused profile.
    let sql = "SELECT COUNT(*) AS n, SUM(id) AS ids, SUM(a + b) AS torn FROM t WHERE id >= 0";
    let prepared = db.prepare(sql, Profile::Fused).unwrap();
    let fused_cfgs = [
        EngineConfig {
            profile: Profile::Fused,
            threads: 1,
            morsel: 4096,
            ..EngineConfig::default()
        },
        EngineConfig {
            profile: Profile::Fused,
            threads: 4,
            morsel: 4096,
            ..EngineConfig::default()
        },
    ];
    let reference = db
        .execute_prepared(
            &prepared,
            &EngineConfig {
                profile: Profile::Vectorized,
                threads: 1,
                morsel: 4096,
                ..EngineConfig::default()
            },
        )
        .unwrap();

    for (seed, rate) in sweep() {
        fault::set(seed, rate);
        let mut failures = 0u32;
        for round in 0..30 {
            let cfg = &fused_cfgs[round % fused_cfgs.len()];
            match db.execute_prepared(&prepared, cfg) {
                Ok(out) => {
                    assert_eq!(
                        out, reference,
                        "seed {seed}: a faulted fused run diverged from the \
                         materializing reference"
                    );
                }
                Err(e) => {
                    failures += 1;
                    assert!(
                        e.is_transient(),
                        "seed {seed}: fused-pipeline fault surfaced as a permanent error: {e}"
                    );
                }
            }
        }
        assert!(
            failures > 0,
            "seed {seed}: no injected fault fired in 30 fused runs"
        );
        fault::clear();
        let after = db.execute_prepared(&prepared, &fused_cfgs[1]).unwrap();
        assert_eq!(after, reference, "seed {seed}: pool left unserviceable");
    }
    fault::clear();
}

/// Appends under injected publication faults: a failed append changes
/// neither the version nor the content, and the table afterwards holds
/// exactly the successful batches.
#[test]
fn faulted_appends_publish_nothing() {
    let _guard = FAULT_LOCK.lock().unwrap();
    fault::clear();
    let db = Database::new();
    db.register("t", rel(0, BASE_ROWS));
    let prepared = db.prepare(AGG_SQL, Profile::Vectorized).unwrap();
    let cfg = EngineConfig::default();

    for (seed, rate) in sweep() {
        // Start each seed from a known version.
        let start_version = db.stats_version();
        let start_rows = agg_of(&db.execute_prepared(&prepared, &cfg).unwrap()).0;
        fault::set(seed, rate.max(0.2));
        let mut appended = 0i64;
        for _ in 0..25 {
            let before = db.stats_version();
            match db.append("t", &rel(start_rows + appended * BATCH_ROWS, BATCH_ROWS)) {
                Ok(()) => {
                    appended += 1;
                    assert_eq!(db.stats_version(), before + 1);
                }
                Err(e) => {
                    assert!(e.is_transient(), "seed {seed}: {e}");
                    assert_eq!(
                        db.stats_version(),
                        before,
                        "seed {seed}: failed append moved the version"
                    );
                }
            }
        }
        fault::clear();
        // Content check from first principles: exactly the successful
        // batches, id-dense, torn-read invariant intact.
        let n = start_rows + appended * BATCH_ROWS;
        let (count, ids, torn) = agg_of(&db.execute_prepared(&prepared, &cfg).unwrap());
        assert_eq!(count, n, "seed {seed}");
        assert_eq!(ids, n * (n - 1) / 2, "seed {seed}");
        assert_eq!(torn, 0, "seed {seed}");
        assert_eq!(db.stats_version(), start_version + appended as u64);
    }
}
