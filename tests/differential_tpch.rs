//! Differential testing: every TPC-H query compiled through the full PyTond
//! pipeline (parse → TondIR → optimize → SQL → engine) must produce the same
//! relation as the interpreted `pytond-frame` baseline — across optimization
//! levels and engine profiles.

use pytond::{Backend, OptLevel, Pytond};
use pytond_common::Relation;
use pytond_tpch::{all_queries, generate};

fn instance() -> (Pytond, pytond_tpch::TpchData) {
    let data = generate(0.002);
    let py = Pytond::new();
    for (name, rel, unique) in data.tables() {
        let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
        py.register_table(name, rel.clone(), &keys);
    }
    (py, data)
}

fn assert_matches(name: &str, expected: &Relation, actual: &Relation, ordered: bool) {
    let (e, a) = if ordered {
        (expected.clone(), actual.clone())
    } else {
        (expected.canonicalized(), actual.canonicalized())
    };
    assert!(
        e.approx_eq(&a, 1e-6),
        "{name}: compiled result diverges from baseline: {:?}\nexpected (first rows):\n{}\nactual:\n{}",
        e.diff(&a, 1e-6),
        e.to_table_string(5),
        a.to_table_string(5)
    );
}

#[test]
fn all_queries_match_baseline_at_o4() {
    let (py, data) = instance();
    let backend = Backend::duckdb_sim(1);
    for q in all_queries() {
        let expected = q.run_baseline(&data).expect(q.name);
        let actual = py
            .run(q.source, &backend)
            .unwrap_or_else(|e| panic!("{} failed to compile/run: {e}", q.name));
        // Row order is part of the contract for sorted queries; TPC-H sorts
        // can tie, so compare canonicalized (sort keys still verified by
        // content equality).
        assert_matches(q.name, &expected, &actual, false);
    }
}

#[test]
fn optimization_levels_preserve_semantics() {
    let (py, data) = instance();
    let backend = Backend::duckdb_sim(1);
    // A representative subset (Fig. 10's Q9/Q15 + isin/outer-join/scalar).
    for id in [1, 4, 9, 13, 14, 15] {
        let q = pytond_tpch::query(id);
        let expected = q.run_baseline(&data).expect(q.name);
        for level in OptLevel::all() {
            let actual = py
                .run_at(q.source, &backend, level)
                .unwrap_or_else(|e| panic!("{} at {} failed: {e}", q.name, level.name()));
            assert_matches(
                &format!("{}@{}", q.name, level.name()),
                &expected,
                &actual,
                false,
            );
        }
    }
}

#[test]
fn profiles_and_threads_agree() {
    let (py, data) = instance();
    for id in [3, 6, 12, 18] {
        let q = pytond_tpch::query(id);
        let expected = q.run_baseline(&data).expect(q.name);
        for backend in [
            Backend::duckdb_sim(4),
            Backend::hyper_sim(1),
            Backend::hyper_sim(4),
        ] {
            let actual = py
                .run(q.source, &backend)
                .unwrap_or_else(|e| panic!("{} on {} failed: {e}", q.name, backend.name()));
            assert_matches(
                &format!("{}@{}", q.name, backend.name()),
                &expected,
                &actual,
                false,
            );
        }
    }
}

#[test]
fn lingodb_profile_rejects_q12_but_runs_q6() {
    let (py, _) = instance();
    let q12 = pytond_tpch::query(12);
    let err = py.run(q12.source, &Backend::lingodb_sim(1));
    assert!(err.is_err(), "lingodb-sim unexpectedly ran Q12");
    let q6 = pytond_tpch::query(6);
    assert!(py.run(q6.source, &Backend::lingodb_sim(1)).is_ok());
}
