//! Differential property tests for fused single-pass pipelines: under the
//! fused profile every query must be **bit-identical** — `Value::total_cmp`
//! per cell, so NaN payloads and `-0.0` count — to the materializing
//! operator-at-a-time path, at every thread count. The fused analogue of
//! `tests/parallel_property.rs`.
//!
//! Why this holds by construction (and what this suite pins): fused scans
//! drive the same zone-aligned morsel grid as materializing scans, chunks
//! merge in ascending morsel order, and aggregate sinks rebuild the narrow
//! key/argument columns in that order before running the *same* fixed-grid
//! accumulation tree (`docs/EXECUTION.md` § Fusion). Running the whole
//! suite under `PYTOND_NO_FUSE=1` (CI does) re-checks the corpus with
//! fusion globally disabled — both sides then take the materializing path
//! and the comparison is the identity, proving the kill switch works.
//!
//! Coverage: all 22 TPC-H queries, every hybrid workload, the
//! stats-property corpus (dtypes × clustering × NULL patterns), NULL-heavy
//! and empty-table joins, at threads 1 / 2 / 7 / hardware.

use pytond::{Backend, EngineConfig, OptLevel, Profile, Pytond};
use pytond_common::{pool, Column, DType, Relation, Value};
use pytond_sqldb::Database;

/// The thread counts the fused candidate runs at.
fn thread_counts() -> Vec<usize> {
    vec![1, 2, 7, pool::hardware_threads().max(2)]
}

/// Small morsels so test-sized inputs span many-morsel grids.
const TEST_MORSEL: usize = 1024;

fn config(profile: Profile, threads: usize) -> EngineConfig {
    EngineConfig {
        profile,
        threads,
        morsel: TEST_MORSEL,
        zone_prune: true,
        ..EngineConfig::default()
    }
}

/// `true` when the process runs with fusion disabled (`PYTOND_NO_FUSE=1`):
/// differential checks still hold trivially, but assertions about pipeline
/// counters must be skipped.
fn fusion_disabled() -> bool {
    std::env::var("PYTOND_NO_FUSE").is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0"
    })
}

/// Exact equality under `Value::total_cmp` — see
/// `tests/parallel_property.rs` for the rationale.
fn assert_bit_identical(name: &str, reference: &Relation, candidate: &Relation) {
    assert_eq!(
        reference.num_cols(),
        candidate.num_cols(),
        "{name}: column count"
    );
    assert_eq!(
        reference.num_rows(),
        candidate.num_rows(),
        "{name}: row count"
    );
    for ci in 0..reference.num_cols() {
        let a = reference.column_at(ci);
        let b = candidate.column_at(ci);
        for i in 0..a.len() {
            let (va, vb) = (a.get(i), b.get(i));
            assert!(
                va.total_cmp(&vb) == std::cmp::Ordering::Equal,
                "{name}: cell ({i}, {}) differs: {va:?} vs {vb:?}",
                reference.name_at(ci)
            );
        }
    }
}

/// Compiles one source once, runs it materializing (vectorized profile,
/// serial — the oracle) and fused at every thread count, and asserts
/// bit-identity. One prepared plan feeds both paths, so any divergence is
/// the driver's, not the planner's.
fn check_source(name: &str, py: &Pytond, source: &str) {
    let backend = Backend {
        profile: Profile::Fused,
        threads: 1,
        timeout_ms: None,
        mem_budget_mb: None,
    };
    let prepared = py
        .prepare(source, &backend, OptLevel::O4)
        .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    let reference = py
        .database()
        .execute_prepared(&prepared, &config(Profile::Vectorized, 1))
        .unwrap_or_else(|e| panic!("{name}: materializing run failed: {e}"));
    for threads in thread_counts() {
        let r = py
            .database()
            .execute_prepared(&prepared, &config(Profile::Fused, threads))
            .unwrap_or_else(|e| panic!("{name}/fused@{threads}t: run failed: {e}"));
        assert_bit_identical(&format!("{name}/fused@{threads}t"), &reference, &r);
    }
}

/// SQL-level variant of [`check_source`].
fn check_sql(name: &str, db: &Database, sql: &str) {
    let reference = db
        .execute_sql(sql, &config(Profile::Vectorized, 1))
        .unwrap_or_else(|e| panic!("{name}: materializing run failed: {e}"));
    for threads in thread_counts() {
        let r = db
            .execute_sql(sql, &config(Profile::Fused, threads))
            .unwrap_or_else(|e| panic!("{name}/fused@{threads}t: run failed: {e}"));
        assert_bit_identical(&format!("{name}/fused@{threads}t"), &reference, &r);
    }
}

#[test]
fn tpch_fused_matches_materializing() {
    let data = pytond_tpch::generate(0.002);
    let py = Pytond::new();
    for (name, rel, unique) in data.tables() {
        let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
        py.register_table(name, rel.clone(), &keys);
    }
    for q in pytond_tpch::all_queries() {
        check_source(q.name, &py, q.source);
    }
}

#[test]
fn hybrid_workloads_fused_matches_materializing() {
    for w in pytond_workloads::all_workloads(1) {
        let py = Pytond::new();
        for (name, rel, unique) in &w.tables {
            let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
            py.register_table(name, rel.clone(), &keys);
        }
        check_source(w.name, &py, w.source);
    }
}

// ---------------- the stats-property corpus, re-run fused ----------------

fn key_value(i: usize, n: usize, domain: i64, clustered: bool) -> i64 {
    if clustered {
        (i as i64) * domain / (n as i64).max(1)
    } else {
        ((i as i64).wrapping_mul(2_654_435_761)).rem_euclid(domain)
    }
}

fn key_column(dtype: u8, n: usize, domain: i64, clustered: bool, null_every: usize) -> Column {
    let dt = match dtype {
        0 => DType::Int,
        1 => DType::Float,
        2 => DType::Date,
        _ => DType::Bool,
    };
    let mut col = Column::new(dt);
    for i in 0..n {
        if null_every > 0 && i % (null_every + 3) == 0 {
            col.push_null();
            continue;
        }
        let v = key_value(i, n, domain, clustered);
        let val = match dt {
            DType::Int => Value::Int(v),
            DType::Float => Value::Float(v as f64 + 0.25),
            DType::Date => Value::Date(v as i32),
            DType::Bool => Value::Bool(v % 2 == 0),
            DType::Str => unreachable!(),
        };
        col.push(val).unwrap();
    }
    col
}

fn corpus_db(dtype: u8, n: usize, domain: i64, clustered: bool, null_every: usize) -> Database {
    let k = key_column(dtype, n, domain, clustered, null_every);
    let f: Vec<f64> = (0..n)
        .map(|i| ((i as f64) * 0.618_033_988_749).fract() * 1e6 + 0.1)
        .collect();
    let db = Database::new();
    db.register(
        "t",
        Relation::new(vec![
            ("k".into(), k),
            ("f".into(), Column::from_f64(f)),
            ("v".into(), Column::from_i64((0..n as i64).collect())),
        ])
        .unwrap(),
    );
    db
}

#[test]
fn stats_corpus_fused_matches_materializing() {
    // Float SUM/AVG group-bys are the rounding-sensitive cases: the fused
    // aggregate sink must feed the accumulation grid the exact same rows in
    // the exact same order or low mantissa bits drift. Predicated scans
    // exercise the claim-time zone skip inside the fused source.
    for dtype in 0..4u8 {
        for &clustered in &[true, false] {
            for &null_every in &[0usize, 5] {
                let db = corpus_db(dtype, 12_000, 400, clustered, null_every);
                let label = format!("dtype{dtype}/clustered={clustered}/nulls={null_every}");
                check_sql(
                    &format!("{label}/groupby"),
                    &db,
                    "SELECT k, SUM(f) AS s, AVG(f) AS m, COUNT(*) AS n, \
                     COUNT(DISTINCT v) AS d FROM t GROUP BY k",
                );
                check_sql(
                    &format!("{label}/filtered-groupby"),
                    &db,
                    "SELECT k, SUM(f) AS s FROM t WHERE v >= 1000 AND v < 9000 GROUP BY k",
                );
                check_sql(
                    &format!("{label}/scalar"),
                    &db,
                    "SELECT SUM(f) AS s, AVG(f) AS m, MIN(f) AS lo, MAX(f) AS hi FROM t",
                );
                check_sql(
                    &format!("{label}/pruned-scan"),
                    &db,
                    "SELECT v, f FROM t WHERE v >= 1000 AND v < 3000",
                );
                check_sql(
                    &format!("{label}/projected-filter"),
                    &db,
                    "SELECT v + 1 AS v1, f * 2.0 AS f2 FROM t WHERE v < 5000",
                );
                check_sql(
                    &format!("{label}/distinct"),
                    &db,
                    "SELECT DISTINCT k FROM t",
                );
            }
        }
    }
}

// ---------------- NULL-heavy and empty-table joins, fused probes ---------

fn null_heavy_db(n: usize) -> Database {
    let mut l_key = Column::new(DType::Int);
    let mut r_key = Column::new(DType::Int);
    for i in 0..n {
        if i % 3 == 0 {
            l_key.push_null();
        } else {
            l_key.push(Value::Int((i % 500) as i64)).unwrap();
        }
    }
    for i in 0..n / 2 {
        if i % 4 == 0 {
            r_key.push_null();
        } else {
            r_key.push(Value::Int((i % 700) as i64)).unwrap();
        }
    }
    let db = Database::new();
    db.register(
        "l",
        Relation::new(vec![
            ("k".into(), l_key),
            ("a".into(), Column::from_i64((0..n as i64).collect())),
        ])
        .unwrap(),
    );
    db.register(
        "r",
        Relation::new(vec![
            ("k".into(), r_key),
            (
                "b".into(),
                Column::from_f64((0..n / 2).map(|i| i as f64 * 0.3).collect()),
            ),
        ])
        .unwrap(),
    );
    db.register(
        "empty",
        Relation::new(vec![("k".into(), Column::from_i64(vec![]))]).unwrap(),
    );
    db
}

#[test]
fn null_heavy_and_empty_joins_fused_matches_materializing() {
    let db = null_heavy_db(30_000);
    for sql in [
        // Inner probe feeding a fused aggregate sink.
        "SELECT l.k, COUNT(*) AS n, SUM(r.b) AS s FROM l, r WHERE l.k = r.k GROUP BY l.k",
        // Left probe keeps unmatched rows with NULL fill; full outer breaks
        // the pipeline (build-side backfill) and must still agree.
        "SELECT l.a, r.b FROM l LEFT JOIN r ON l.k = r.k",
        "SELECT l.a, r.b FROM l FULL OUTER JOIN r ON l.k = r.k",
        // Semi/anti probes narrow the selection without moving columns.
        "SELECT a FROM l WHERE k IN (SELECT k FROM r)",
        "SELECT a FROM l WHERE k NOT IN (SELECT k FROM r WHERE k IS NOT NULL)",
        // Empty build side, and an empty probe side.
        "SELECT l.a FROM l, empty WHERE l.k = empty.k",
        "SELECT empty.k FROM empty LEFT JOIN r ON empty.k = r.k",
        // Probe → filter → project → aggregate in one pipeline, with a
        // residual-carrying non-equi conjunct.
        "SELECT l.k, SUM(r.b) AS s FROM l, r WHERE l.k = r.k AND r.b > 10.0 \
         AND l.a < 20000 GROUP BY l.k",
    ] {
        check_sql(sql, &db, sql);
    }
}

// ---------------- pipeline metrics: counted once, shown in traces --------

#[test]
fn fused_traces_report_pipelines_and_scan_zones_once() {
    // 12 000 sequential rows span 3 zone-map zones (⌈12000/4096⌉). The
    // predicate `v >= 1000 AND v < 3000` lives entirely in zone 0, so
    // exactly 1 zone survives and 2 prune — and `morsels_scanned` must
    // report that *per-pipeline* total exactly once, not once per fused
    // operator that touches the scan (the historical double-count).
    let db = corpus_db(0, 12_000, 400, true, 0);
    let sql = "SELECT k, SUM(f) AS s FROM t WHERE v >= 1000 AND v < 3000 GROUP BY k";
    let (_, vec_trace) = db
        .execute_sql_traced(sql, &config(Profile::Vectorized, 1))
        .unwrap();
    assert_eq!(
        (
            vec_trace.metrics.morsels_scanned,
            vec_trace.metrics.morsels_pruned
        ),
        (1, 2),
        "materializing zone counts: {:?}",
        vec_trace.metrics
    );
    assert_eq!(vec_trace.metrics.pipelines, 0);
    assert!(vec_trace.metrics.pipeline_ops.is_empty());
    if fusion_disabled() {
        eprintln!("PYTOND_NO_FUSE set: skipping fused-side pipeline assertions");
        return;
    }
    for threads in [1usize, 7] {
        let (_, fused) = db
            .execute_sql_traced(sql, &config(Profile::Fused, threads))
            .unwrap();
        // The pin: fused and materializing agree on the zone totals.
        assert_eq!(
            (fused.metrics.morsels_scanned, fused.metrics.morsels_pruned),
            (1, 2),
            "fused@{threads}t zone counts: {:?}",
            fused.metrics
        );
        assert!(
            fused.metrics.pipelines >= 1,
            "fused@{threads}t: {:?}",
            fused.metrics
        );
        assert_eq!(
            fused.metrics.pipeline_ops.len(),
            fused.metrics.pipelines as usize
        );
        // scan + aggregate sink, at least; the scan's survivor gather is
        // the avoided intermediate.
        assert!(fused.metrics.pipeline_ops.iter().all(|&ops| ops >= 2));
        assert!(fused.metrics.intermediates_avoided >= 1);
        // EXPLAIN/trace surfaces: plan header shows the decomposition,
        // summary shows the counters.
        assert!(fused.plan.contains("pipelines:"), "{}", fused.plan);
        assert!(fused.plan.contains("aggregate ["), "{}", fused.plan);
        assert!(
            fused.summary().contains("pipelines: "),
            "{}",
            fused.summary()
        );
    }
}

#[test]
fn fused_join_pipeline_probes_without_flipping() {
    if fusion_disabled() {
        eprintln!("PYTOND_NO_FUSE set: skipping fused-probe trace assertions");
        return;
    }
    let db = null_heavy_db(30_000);
    let sql = "SELECT l.k, SUM(r.b) AS s FROM l, r WHERE l.k = r.k GROUP BY l.k";
    let (_, fused) = db
        .execute_sql_traced(sql, &config(Profile::Fused, 1))
        .unwrap();
    // A fused probe always builds on the plan's right side: no flips.
    assert_eq!(fused.metrics.joins_flipped, 0, "{:?}", fused.metrics);
    assert!(fused.metrics.pipelines >= 1);
    assert!(fused.plan.contains("probe(inner)"), "{}", fused.plan);
}
