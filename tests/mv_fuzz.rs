//! Seeded fuzzer for incremental view maintenance: random
//! filter / project / join / aggregate standing views against random
//! append schedules (batch sizes, NULL densities, dict-string keys, NaN
//! floats, empty appends, appends to the join build side) — after **every**
//! append the maintained state must be bit-identical (`Value::total_cmp`)
//! to a from-scratch recompute of the view's own plan on the pinned
//! snapshot, with the stamp exactly at the published version.
//!
//! The proptest shim (`shims/proptest`) has no shrinking, so failures
//! shrink by hand — same harness style as `tests/plan_fuzz.rs`: schedule
//! entries and plan features are greedily dropped while the failure
//! persists, and the panic reports the **minimal** failing (plan, schedule)
//! pair as runnable SQL plus the append list.

use proptest::prelude::*;
use pytond::{EngineConfig, Profile};
use pytond_common::{Column, DType, Relation, Value};
use pytond_sqldb::Database;

/// Tiny morsels so fuzz-sized deltas cross chunk boundaries.
const FUZZ_MORSEL: usize = 16;

fn config(profile: Profile, threads: usize) -> EngineConfig {
    EngineConfig {
        profile,
        threads,
        morsel: FUZZ_MORSEL,
        zone_prune: true,
        ..EngineConfig::default()
    }
}

/// One plan feature: `(kind, param)`. Kinds: 0 = filter conjunct,
/// 1 = projection shape, 2 = join shape, 3 = aggregate shape,
/// 4 = order-sensitive tail (sort / limit / distinct — the recompute
/// fallbacks). Later features of the same kind overwrite earlier ones, so
/// any subset of a failing feature list is still a valid plan (what the
/// greedy shrinker relies on).
type Feat = (u8, i64);

/// One schedule entry: `(table, shape, salt)` — which table grows, the
/// batch shape (size / NULL density / NaN mix), and a content salt.
type Append = (u8, u8, u16);

/// Renders a feature list as one standing-view SELECT over `t(k, f, s)`
/// and `r(k, w)`. Every variant aliases its first output as `c0` so the
/// sort tail composes with every select shape.
fn view_sql(feats: &[Feat]) -> String {
    let mut filter: Vec<i64> = Vec::new();
    let (mut proj, mut join, mut agg, mut tail) = (None, None, None, None);
    for &(kind, p) in feats {
        match kind % 5 {
            0 => filter.push(p),
            1 => proj = Some(p),
            2 => join = Some(p),
            3 => agg = Some(p),
            _ => tail = Some(p),
        }
    }
    let joined = matches!(join, Some(p) if p % 3 < 2);
    let from = match join.map(|p| p % 3) {
        Some(0) => "t JOIN r ON t.k = r.k",
        Some(1) => "t LEFT JOIN r ON t.k = r.k",
        _ => "t",
    };
    let mut preds: Vec<String> = filter
        .iter()
        .map(|p| match p % 6 {
            0 => "t.k >= 40".to_string(),
            1 => format!("t.f < {}.5", 800 + p % 700),
            2 => "t.k IS NOT NULL".to_string(),
            3 => "t.s <> 'lima'".to_string(),
            4 => "t.k < 12".to_string(),
            _ => "t.k IS NULL OR t.k > 90".to_string(),
        })
        .collect();
    if matches!(join, Some(p) if p % 3 == 2) {
        preds.push("t.k IN (SELECT k FROM r)".to_string());
    }
    let (select, group) = if let Some(p) = agg {
        match (p % 4, joined) {
            (0, _) => (
                "t.s AS c0, SUM(t.f) AS a1, COUNT(*) AS a2".to_string(),
                " GROUP BY t.s",
            ),
            (1, _) => (
                "t.k AS c0, MIN(t.f) AS a1, MAX(t.s) AS a2, AVG(t.f) AS a3".to_string(),
                " GROUP BY t.k",
            ),
            (2, _) => (
                "SUM(t.f) AS c0, AVG(t.f) AS a1, COUNT(t.k) AS a2".to_string(),
                "",
            ),
            (_, true) => (
                "t.s AS c0, SUM(r.w) AS a1, COUNT(*) AS a2".to_string(),
                " GROUP BY t.s",
            ),
            (_, false) => ("t.s AS c0, SUM(t.f) AS a1".to_string(), " GROUP BY t.s"),
        }
    } else {
        match (proj.map(|p| p % 4), joined) {
            (Some(1), _) => ("t.k + 1 AS c0, t.f * 2.0 AS c1".to_string(), ""),
            (Some(2), _) => (
                "CASE WHEN t.k > 50 THEN t.f ELSE 0.0 - t.f END AS c0, t.s AS c1".to_string(),
                "",
            ),
            (Some(3), true) => ("t.k AS c0, r.w AS c1, t.f + r.w AS c2".to_string(), ""),
            _ => ("t.k AS c0, t.f AS c1, t.s AS c2".to_string(), ""),
        }
    };
    let distinct = matches!(tail, Some(p) if p % 4 == 3) && agg.is_none();
    let where_clause = if preds.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", preds.join(" AND "))
    };
    let tail_clause = match tail.map(|p| p % 4) {
        Some(0) => " ORDER BY c0",
        Some(1) => " LIMIT 7",
        Some(2) => " ORDER BY c0 LIMIT 5",
        _ => "",
    };
    format!(
        "SELECT {}{select} FROM {from}{where_clause}{group}{tail_clause}",
        if distinct { "DISTINCT " } else { "" },
    )
}

/// The base probe table `t(k, f, s)`: nullable small-domain int keys,
/// rounding-sensitive floats (NaN sprinkled in), dict-string keys.
fn t_rel(start: usize, rows: usize, null_every: usize, salt: u64) -> Relation {
    let mut k = Column::new(DType::Int);
    let mut f = Column::new(DType::Float);
    let mut s = Column::new(DType::Str);
    let cities = ["tokyo", "lima", "oslo", "cairo", "quito", "perth"];
    for i in start..start + rows {
        if null_every > 0 && i % null_every == 0 {
            k.push_null();
        } else {
            k.push(Value::Int(((i as u64).wrapping_mul(salt | 1) % 97) as i64))
                .unwrap();
        }
        let fv = if salt % 13 == 0 && i % 29 == 0 {
            f64::NAN
        } else {
            (i as f64) * 0.618_033_988_749 + (salt % 7) as f64
        };
        f.push(Value::Float(fv)).unwrap();
        s.push(Value::Str(
            cities[(i + salt as usize) % cities.len()].to_string(),
        ))
        .unwrap();
    }
    Relation::new(vec![("k".into(), k), ("f".into(), f), ("s".into(), s)]).unwrap()
}

/// The build-side table `r(k, w)`.
fn r_rel(start: usize, rows: usize, salt: u64) -> Relation {
    Relation::new(vec![
        (
            "k".into(),
            Column::from_i64(
                (start..start + rows)
                    .map(|i| ((i as u64).wrapping_mul(salt | 1) % 97) as i64)
                    .collect(),
            ),
        ),
        (
            "w".into(),
            Column::from_f64((start..start + rows).map(|i| i as f64 * 1.5).collect()),
        ),
    ])
    .unwrap()
}

/// Batch shapes: empty, single-row, small, mid-size NULL-heavy, large.
fn append_rel(table: u8, shape: u8, salt: u16, step: usize) -> (&'static str, Relation) {
    let start = 5_000 + step * 1_000 + salt as usize;
    let (rows, null_every) = match shape % 5 {
        0 => (0, 0),
        1 => (1, 0),
        2 => (19, 3),
        3 => (160, 1),
        _ => (420, 0),
    };
    if table % 2 == 0 {
        ("t", t_rel(start, rows, null_every, salt as u64))
    } else {
        ("r", r_rel(start, rows / 2, salt as u64))
    }
}

fn diff_cells(name: &str, a: &Relation, b: &Relation) -> Option<String> {
    if a.num_cols() != b.num_cols() {
        return Some(format!(
            "{name}: column count {} vs {}",
            a.num_cols(),
            b.num_cols()
        ));
    }
    if a.num_rows() != b.num_rows() {
        return Some(format!(
            "{name}: row count {} vs {}",
            a.num_rows(),
            b.num_rows()
        ));
    }
    for ci in 0..a.num_cols() {
        let (ca, cb) = (a.column_at(ci), b.column_at(ci));
        for i in 0..ca.len() {
            let (va, vb) = (ca.get(i), cb.get(i));
            if va.total_cmp(&vb) != std::cmp::Ordering::Equal {
                return Some(format!(
                    "{name}: cell ({i}, {}) differs: {va:?} vs {vb:?}",
                    a.name_at(ci)
                ));
            }
        }
    }
    None
}

/// Runs one (plan, schedule) case. `None` = the maintained view matched a
/// from-scratch recompute on the pinned snapshot after every append;
/// `Some(why)` = a maintenance bug (a finding). The oracle itself must
/// accept the generated SQL — the generator only emits supported plans.
fn fails(feats: &[Feat], sched: &[Append], threads: usize) -> Option<String> {
    let sql = view_sql(feats);
    let db = Database::new();
    db.register("t", t_rel(0, 2_000, 7, 3));
    db.register("r", r_rel(0, 97, 1));
    if let Err(e) = db.register_view_with("v", &sql, &config(Profile::Fused, threads)) {
        return Some(format!("register_view rejected generated SQL: {e}\n{sql}"));
    }
    for (step, &(table, shape, salt)) in sched.iter().enumerate() {
        let (name, rel) = append_rel(table, shape, salt, step);
        if let Err(e) = db.append(name, &rel) {
            return Some(format!("append {} rows to {name}: {e}", rel.num_rows()));
        }
        let snap = db.snapshot();
        let state = match db.view("v") {
            Ok(s) => s,
            Err(e) => return Some(format!("step {step}: view read failed: {e}")),
        };
        if state.snapshot_version() != snap.version() {
            return Some(format!(
                "step {step}: stamp v{} lags published v{}",
                state.snapshot_version(),
                snap.version()
            ));
        }
        let oracle = match db.view_oracle_at("v", &snap) {
            Ok(r) => r,
            Err(e) => return Some(format!("step {step}: oracle failed: {e}")),
        };
        if let Some(d) = diff_cells(&format!("step {step} ({name})"), &oracle, state.relation()) {
            return Some(d);
        }
    }
    None
}

/// Hand-rolled shrinking: greedily drop schedule entries, then plan
/// features, while the case still fails; panic with the minimal pair.
fn shrink_and_report(feats: &[Feat], sched: &[Append], threads: usize, first: String) -> ! {
    let mut mf: Vec<Feat> = feats.to_vec();
    let mut ms: Vec<Append> = sched.to_vec();
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < ms.len() {
            let mut cand = ms.clone();
            cand.remove(i);
            if fails(&mf, &cand, threads).is_some() {
                ms = cand;
                reduced = true;
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < mf.len() {
            let mut cand = mf.clone();
            cand.remove(i);
            if fails(&cand, &ms, threads).is_some() {
                mf = cand;
                reduced = true;
            } else {
                i += 1;
            }
        }
        if !reduced {
            break;
        }
    }
    let why = fails(&mf, &ms, threads).unwrap_or(first);
    let appends: Vec<String> = ms
        .iter()
        .enumerate()
        .map(|(step, &(t, sh, sa))| {
            let (name, rel) = append_rel(t, sh, sa, step);
            format!(
                "append {} rows to {name} (shape {sh}, salt {sa})",
                rel.num_rows()
            )
        })
        .collect();
    panic!(
        "maintained view diverged from recompute; minimal case \
         ({} of {} features, {} of {} appends) at {threads} threads:\n{}\n{}\n{}",
        mf.len(),
        feats.len(),
        ms.len(),
        sched.len(),
        view_sql(&mf),
        appends.join("\n"),
        why
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fuzzer: random view plans × random append schedules must stay
    /// bit-identical to recompute after every append.
    #[test]
    fn random_views_match_recompute_after_every_append(
        feats in prop::collection::vec((0u8..5, 0i64..40), 0..6),
        sched in prop::collection::vec((0u8..2, 0u8..5, 0u16..1000), 1..5),
        tsel in 0u8..3,
    ) {
        let threads = [1usize, 2, 7][tsel as usize];
        if let Some(why) = fails(&feats, &sched, threads) {
            shrink_and_report(&feats, &sched, threads, why);
        }
    }
}

/// Deterministic edge grid: every single plan feature against every batch
/// shape on both tables — covers empty appends, single-row appends,
/// NULL-heavy batches and build-side growth for each maintenance class.
#[test]
fn edge_grid_every_feature_and_batch_shape() {
    for kind in 0u8..5 {
        for p in 0i64..4 {
            for table in 0u8..2 {
                for shape in 0u8..5 {
                    let feats = [(kind, p)];
                    let sched = [(table, shape, 11u16)];
                    if let Some(why) = fails(&feats, &sched, 2) {
                        panic!(
                            "feature ({kind},{p}) × append (table {table}, shape {shape}): \
                             {why}\n{}",
                            view_sql(&feats)
                        );
                    }
                }
            }
        }
    }
}

/// A multi-feature plan absorbing a long mixed schedule (both tables grow,
/// interleaved with empty batches) stays exact throughout.
#[test]
fn long_mixed_schedule_stays_exact() {
    let feats = [(0u8, 1i64), (2, 0), (3, 3)];
    let sched: Vec<Append> = (0..10)
        .map(|i| ((i % 2) as u8, (i % 5) as u8, (i * 37 % 1000) as u16))
        .collect();
    for threads in [1usize, 7] {
        if let Some(why) = fails(&feats, &sched, threads) {
            panic!("long schedule at {threads} threads: {why}");
        }
    }
}
