//! Seeded random-plan fuzzer for the fused pipeline driver: random
//! filter → project → join → aggregate chains over small typed tables
//! (NULL-heavy, empty, single-row) run **differentially** — the fused
//! profile at several thread counts against the materializing
//! operator-at-a-time oracle — and must agree bit for bit
//! (`Value::total_cmp` per cell). The sliced kernel entry points the fused
//! scan uses (`eval_range` / `eval_mask_range`) are additionally checked
//! against selection-vector evaluation and the row-at-a-time
//! `expr::reference` evaluator.
//!
//! The proptest shim (`shims/proptest`) has no shrinking, so failures
//! shrink by hand: ops are greedily dropped from the chain while the
//! divergence persists, and the panic reports the **minimal** failing plan
//! as runnable SQL.

use proptest::prelude::*;
use pytond::{EngineConfig, Profile};
use pytond_common::{Column, DType, Relation, Value};
use pytond_sqldb::ast::BinOp;
use pytond_sqldb::expr::{reference, BExpr};
use pytond_sqldb::table::Batch;
use pytond_sqldb::Database;

/// Tiny morsels so even fuzz-sized tables cross chunk boundaries inside
/// fused pipelines.
const FUZZ_MORSEL: usize = 16;

fn config(profile: Profile, threads: usize) -> EngineConfig {
    EngineConfig {
        profile,
        threads,
        morsel: FUZZ_MORSEL,
        zone_prune: true,
        ..EngineConfig::default()
    }
}

/// Probe-side table `t(k, f, v)`: `k` is NULL-heavy (≈⅓), keys land in a
/// tiny domain so joins and group-bys collide constantly.
fn table_t(rows: &[(u8, i64, f64, i64)]) -> Relation {
    let mut k = Column::new(DType::Int);
    for (nk, kv, _, _) in rows {
        if *nk == 0 {
            k.push_null();
        } else {
            k.push(Value::Int(*kv)).unwrap();
        }
    }
    Relation::new(vec![
        ("k".into(), k),
        (
            "f".into(),
            Column::from_f64(rows.iter().map(|r| r.2).collect()),
        ),
        (
            "v".into(),
            Column::from_i64(rows.iter().map(|r| r.3).collect()),
        ),
    ])
    .unwrap()
}

/// Build-side table `r(k, w)`, NULL keys on ≈¼ of rows.
fn table_r(rows: &[(u8, i64, i64)]) -> Relation {
    let mut k = Column::new(DType::Int);
    for (nk, kv, _) in rows {
        if *nk == 0 {
            k.push_null();
        } else {
            k.push(Value::Int(*kv)).unwrap();
        }
    }
    Relation::new(vec![
        ("k".into(), k),
        (
            "w".into(),
            Column::from_i64(rows.iter().map(|r| r.2).collect()),
        ),
    ])
    .unwrap()
}

/// One random plan operator. The chain keeps a fixed output schema
/// `(c0 int, c1 float, c2 int)` so every op composes with every other.
type Op = (u8, i64);

/// Renders an op chain as a CTE pipeline over `t` (joins hit `r`).
fn chain_sql(ops: &[Op]) -> String {
    let mut ctes = vec!["s0 AS (SELECT k AS c0, f AS c1, v AS c2 FROM t)".to_string()];
    for (i, &(kind, p)) in ops.iter().enumerate() {
        let prev = format!("s{i}");
        let cur = format!("s{}", i + 1);
        let body = match kind {
            // Filters: comparisons, NULL tests, conjunction/disjunction.
            0 => {
                let pred = match p % 4 {
                    0 => format!("c0 > {}", p % 5),
                    1 => format!("c1 < {}.5", p % 7),
                    2 => format!("c0 IS NOT NULL AND c2 > {}", p % 9 - 4),
                    _ => format!("c0 IS NULL OR c2 < {}", p % 11 - 5),
                };
                format!("SELECT c0 AS c0, c1 AS c1, c2 AS c2 FROM {prev} WHERE {pred}")
            }
            // Projections: arithmetic, mixed-type widening, CASE.
            1 => match p % 4 {
                0 => format!("SELECT c0 + 1 AS c0, c1 * 2.0 AS c1, c2 AS c2 FROM {prev}"),
                1 => format!(
                    "SELECT c0 AS c0, c1 + c2 AS c1, c2 - {} AS c2 FROM {prev}",
                    p % 5
                ),
                2 => format!("SELECT 0 - c0 AS c0, c1 AS c1, c2 + c2 AS c2 FROM {prev}"),
                _ => format!(
                    "SELECT c0 AS c0, CASE WHEN c2 > {} THEN c1 ELSE 0.0 - c1 END AS c1, \
                     c2 AS c2 FROM {prev}",
                    p % 6
                ),
            },
            // Joins against r: inner/left fused probes, semi/anti via
            // IN / NOT IN subqueries.
            2 => match p % 4 {
                0 => format!(
                    "SELECT {prev}.c0 AS c0, {prev}.c1 AS c1, r.w AS c2 \
                     FROM {prev} JOIN r ON {prev}.c0 = r.k"
                ),
                1 => format!(
                    "SELECT {prev}.c0 AS c0, {prev}.c1 AS c1, r.w AS c2 \
                     FROM {prev} LEFT JOIN r ON {prev}.c0 = r.k"
                ),
                2 => format!(
                    "SELECT c0 AS c0, c1 AS c1, c2 AS c2 FROM {prev} \
                     WHERE c0 IN (SELECT k FROM r)"
                ),
                _ => format!(
                    "SELECT c0 AS c0, c1 AS c1, c2 AS c2 FROM {prev} \
                     WHERE c0 NOT IN (SELECT k FROM r WHERE k IS NOT NULL)"
                ),
            },
            // Aggregations (pipeline breakers mid-chain; sinks at the end):
            // grouped float SUM (merge-order sensitive) or scalar aggs.
            _ => match p % 2 {
                0 => format!(
                    "SELECT c0 AS c0, SUM(c1) AS c1, COUNT(*) AS c2 FROM {prev} GROUP BY c0"
                ),
                _ => format!("SELECT MIN(c0) AS c0, AVG(c1) AS c1, COUNT(c2) AS c2 FROM {prev}"),
            },
        };
        ctes.push(format!("{cur} AS ({body})"));
    }
    format!(
        "WITH {} SELECT c0 AS c0, c1 AS c1, c2 AS c2 FROM s{}",
        ctes.join(", "),
        ops.len()
    )
}

fn diff_cells(name: &str, a: &Relation, b: &Relation) -> Option<String> {
    if a.num_cols() != b.num_cols() {
        return Some(format!(
            "{name}: column count {} vs {}",
            a.num_cols(),
            b.num_cols()
        ));
    }
    if a.num_rows() != b.num_rows() {
        return Some(format!(
            "{name}: row count {} vs {}",
            a.num_rows(),
            b.num_rows()
        ));
    }
    for ci in 0..a.num_cols() {
        let (ca, cb) = (a.column_at(ci), b.column_at(ci));
        for i in 0..ca.len() {
            let (va, vb) = (ca.get(i), cb.get(i));
            if va.total_cmp(&vb) != std::cmp::Ordering::Equal {
                return Some(format!(
                    "{name}: cell ({i}, {}) differs: {va:?} vs {vb:?}",
                    a.name_at(ci)
                ));
            }
        }
    }
    None
}

/// Runs one chain differentially. `None` = fused and materializing agree at
/// every thread count; `Some(why)` = divergence (a finding). The
/// materializing oracle itself must accept the generated SQL — the
/// generator only emits supported plans.
fn fails(db: &Database, ops: &[Op]) -> Option<String> {
    let sql = chain_sql(ops);
    let reference = match db.execute_sql(&sql, &config(Profile::Vectorized, 1)) {
        Ok(r) => r,
        Err(e) => return Some(format!("oracle rejected generated SQL: {e}\n{sql}")),
    };
    for threads in [1usize, 2, 7] {
        match db.execute_sql(&sql, &config(Profile::Fused, threads)) {
            Ok(fused) => {
                if let Some(d) = diff_cells(&format!("fused@{threads}t"), &reference, &fused) {
                    return Some(d);
                }
            }
            Err(e) => return Some(format!("fused@{threads}t errored where oracle ran: {e}")),
        }
    }
    None
}

/// Hand-rolled shrinking: greedily drop ops while the chain still fails,
/// then panic with the minimal plan.
fn shrink_and_report(db: &Database, ops: &[Op], first_failure: String) -> ! {
    let mut min: Vec<Op> = ops.to_vec();
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < min.len() {
            let mut cand = min.clone();
            cand.remove(i);
            if fails(db, &cand).is_some() {
                min = cand;
                reduced = true;
            } else {
                i += 1;
            }
        }
        if !reduced {
            break;
        }
    }
    let why = fails(db, &min).unwrap_or(first_failure);
    panic!(
        "fused/materializing divergence; minimal plan ({} of {} ops):\n{}\n{}",
        min.len(),
        ops.len(),
        chain_sql(&min),
        why
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fuzzer: random chains over random NULL-heavy tables (lengths
    /// 0..40 include empty and single-row probe sides) must be
    /// bit-identical fused vs materializing at threads 1/2/7.
    #[test]
    fn random_plans_fused_matches_materializing(
        trows in prop::collection::vec((0u8..3, 0i64..8, -100.0f64..100.0, -20i64..20), 0..40),
        rrows in prop::collection::vec((0u8..4, 0i64..8, 0i64..50), 0..12),
        ops in prop::collection::vec((0u8..4, 0i64..40), 0..6),
    ) {
        let db = Database::new();
        db.register("t", table_t(&trows));
        db.register("r", table_r(&rrows));
        if let Some(why) = fails(&db, &ops) {
            shrink_and_report(&db, &ops, why);
        }
    }
}

/// Deterministic edge grid: every single-op chain (and a probe→aggregate
/// pair) over the empty table and the single-row table.
#[test]
fn edge_tables_every_operator() {
    for trows in [
        vec![],
        vec![(1u8, 3i64, 0.5f64, 7i64)],
        vec![(0, 0, -1.5, -3), (1, 2, 2.5, 4), (1, 2, f64::NAN, 0)],
    ] {
        let db = Database::new();
        db.register("t", table_t(&trows));
        db.register("r", table_r(&[(0, 1, 10), (1, 2, 20), (1, 3, 30)]));
        for kind in 0u8..4 {
            for p in 0i64..4 {
                if let Some(why) = fails(&db, &[(kind, p)]) {
                    panic!("single op ({kind},{p}) over {} rows: {why}", trows.len());
                }
                if let Some(why) = fails(&db, &[(2, p), (3, 0)]) {
                    panic!("probe→agg ({p}) over {} rows: {why}", trows.len());
                }
            }
        }
        // Empty build side: fused probes against a zero-row hash table.
        let db2 = Database::new();
        db2.register("t", table_t(&trows));
        db2.register("r", table_r(&[]));
        for p in 0i64..4 {
            if let Some(why) = fails(&db2, &[(2, p)]) {
                panic!(
                    "probe vs empty build ({p}) over {} rows: {why}",
                    trows.len()
                );
            }
        }
    }
}

// ---------------- sliced kernels vs selection vectors vs reference -------

/// Bit-identical column comparison on valid rows (placeholder data under
/// null slots is unspecified) — same policy as `tests/kernels_property.rs`.
fn cols_bit_identical(a: &Column, b: &Column) -> bool {
    if a.dtype() != b.dtype() || a.len() != b.len() {
        return false;
    }
    (0..a.len()).all(|i| match (a.is_valid(i), b.is_valid(i)) {
        (false, false) => true,
        (true, true) => match (a.get(i), b.get(i)) {
            (Value::Float(x), Value::Float(y)) => {
                x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan())
            }
            (x, y) => x == y,
        },
        _ => false,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `eval_range` (the fused scan's entry point) ≡ selection-vector
    /// evaluation ≡ full evaluation + slice, and for binary nodes ≡ the
    /// row-at-a-time reference evaluator over the sliced operands.
    #[test]
    fn range_evaluation_matches_selection_and_reference(
        rows in prop::collection::vec((0u8..4, -50i64..50, 0u8..6, -1e3f64..1e3), 1..80),
        bounds in prop::collection::vec(0usize..100, 2..10),
        opsel in 0u8..11,
    ) {
        let mut ic = Column::new(DType::Int);
        let mut fc = Column::new(DType::Float);
        for &(ni, iv, nf, fv) in &rows {
            if ni == 0 { ic.push_null(); } else { ic.push(Value::Int(iv)).unwrap(); }
            match nf {
                0 => fc.push_null(),
                1 => fc.push(Value::Float(f64::NAN)).unwrap(),
                2 => fc.push(Value::Float(-0.0)).unwrap(),
                _ => fc.push(Value::Float(fv)).unwrap(),
            }
        }
        let batch = Batch::from_columns(vec![ic.clone(), fc.clone()]);
        let op = [
            BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod,
            BinOp::Eq, BinOp::Ne, BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge,
        ][opsel as usize];
        let expr = BExpr::Bin {
            op,
            l: Box::new(BExpr::Col(0)),
            r: Box::new(BExpr::Col(1)),
        };
        let full = expr.eval(&batch, None).unwrap();
        for pair in bounds.chunks_exact(2) {
            let (mut s, mut e) = (pair[0] % rows.len(), pair[1] % (rows.len() + 1));
            if s > e { std::mem::swap(&mut s, &mut e); }
            let ranged = expr.eval_range(&batch, s, e).unwrap();
            let sel: Vec<usize> = (s..e).collect();
            let selected = expr.eval(&batch, Some(&sel)).unwrap();
            prop_assert!(
                cols_bit_identical(&ranged, &selected),
                "range [{s},{e}) vs selection: {ranged:?} vs {selected:?}"
            );
            prop_assert!(
                cols_bit_identical(&ranged, &full.slice(s, e)),
                "range [{s},{e}) vs full+slice: {ranged:?} vs {:?}", full.slice(s, e)
            );
            let slow = reference::eval_bin(op, &ic.slice(s, e), &fc.slice(s, e)).unwrap();
            prop_assert!(
                cols_bit_identical(&ranged, &slow),
                "range [{s},{e}) vs reference: {ranged:?} vs {slow:?}"
            );
        }
    }

    /// `eval_mask_range` ≡ `eval_mask` restricted to the range.
    #[test]
    fn mask_range_matches_selection_mask(
        rows in prop::collection::vec((0u8..4, -20i64..20), 1..60),
        cut in -10i64..10,
        s in 0usize..60,
        e in 0usize..60,
    ) {
        let mut ic = Column::new(DType::Int);
        for &(ni, iv) in &rows {
            if ni == 0 { ic.push_null(); } else { ic.push(Value::Int(iv)).unwrap(); }
        }
        let batch = Batch::from_columns(vec![ic]);
        let pred = BExpr::Bin {
            op: BinOp::Gt,
            l: Box::new(BExpr::Col(0)),
            r: Box::new(BExpr::Lit(Value::Int(cut))),
        };
        let (mut s, mut e) = (s % rows.len(), e % (rows.len() + 1));
        if s > e { std::mem::swap(&mut s, &mut e); }
        let ranged = pred.eval_mask_range(&batch, s, e).unwrap();
        let sel: Vec<usize> = (s..e).collect();
        let masked = pred.eval_mask(&batch, Some(&sel)).unwrap();
        prop_assert!(ranged == masked, "[{s},{e}): {ranged:?} vs {masked:?}");
    }
}
