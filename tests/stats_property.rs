//! Property tests for the statistics subsystem: zone-map scan pruning must be
//! **result-identical** to unpruned scans across dtypes, data distributions
//! and NULL patterns, and incrementally-maintained statistics (multi-batch
//! loads through `Database::append`) must equal a from-scratch computation.

use proptest::prelude::*;
use pytond_common::{Column, DType, Relation, Value};
use pytond_sqldb::{Database, EngineConfig};

/// Deterministic value stream: clustered (sorted, tight zone bounds) or
/// shuffled (wide zone bounds) over `[0, domain)`.
fn key_value(i: usize, n: usize, domain: i64, clustered: bool) -> i64 {
    if clustered {
        (i as i64) * domain / (n as i64).max(1)
    } else {
        ((i as i64).wrapping_mul(2_654_435_761)).rem_euclid(domain)
    }
}

/// Builds the key column for one dtype selector, with every
/// `null_every + 3`-rd row NULL when `null_every > 0`.
fn key_column(dtype: u8, n: usize, domain: i64, clustered: bool, null_every: usize) -> Column {
    let dt = match dtype {
        0 => DType::Int,
        1 => DType::Float,
        2 => DType::Date,
        _ => DType::Bool,
    };
    let mut col = Column::new(dt);
    for i in 0..n {
        if null_every > 0 && i % (null_every + 3) == 0 {
            col.push_null();
            continue;
        }
        let v = key_value(i, n, domain, clustered);
        let val = match dt {
            DType::Int => Value::Int(v),
            DType::Float => Value::Float(v as f64 + 0.25),
            DType::Date => Value::Date(v as i32),
            DType::Bool => Value::Bool(v % 2 == 0),
            DType::Str => unreachable!(),
        };
        col.push(val).unwrap();
    }
    col
}

fn table_of(k: Column) -> Relation {
    let n = k.len();
    Relation::new(vec![
        ("k".into(), k),
        ("v".into(), Column::from_i64((0..n as i64).collect())),
    ])
    .unwrap()
}

/// Predicate SQL for the generated key column. Bool columns get their own
/// (smaller) predicate menu.
fn predicate(dtype: u8, pred_kind: u8, a: i64, b: i64) -> String {
    if dtype == 3 {
        return match pred_kind % 4 {
            0 => "k = TRUE".into(),
            1 => "k = FALSE".into(),
            2 => "k IS NULL".into(),
            _ => "k IS NOT NULL".into(),
        };
    }
    let (lo, hi) = (a.min(b), a.max(b));
    let lit = |x: i64| {
        if dtype == 1 {
            format!("{x}.5")
        } else {
            x.to_string()
        }
    };
    match pred_kind % 7 {
        0 => format!("k >= {}", lit(a)),
        1 => format!("k < {}", lit(a)),
        2 => format!("k = {}", lit(a)),
        3 => format!("k BETWEEN {} AND {}", lit(lo), lit(hi)),
        4 => format!("k IN ({}, {}, {})", lit(a), lit(b), lit(a + 7)),
        5 => "k IS NULL".into(),
        _ => format!("k IS NOT NULL AND k > {}", lit(a)),
    }
}

fn run_both(db: &Database, sql: &str) -> (Relation, Relation, u64) {
    let on = EngineConfig::default();
    let off = EngineConfig {
        zone_prune: false,
        ..EngineConfig::default()
    };
    let (pruned, trace) = db.execute_sql_traced(sql, &on).unwrap();
    let (full, t_off) = db.execute_sql_traced(sql, &off).unwrap();
    assert_eq!(t_off.metrics.morsels_pruned, 0);
    (pruned, full, trace.metrics.morsels_pruned)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pruned and unpruned scans agree bit-for-bit on every dtype, NULL
    /// pattern, distribution and predicate shape.
    #[test]
    fn pruning_is_result_identical(
        n in 1usize..12_000,
        domain in 1i64..500,
        clustered in 0u8..2,
        null_every in 0usize..6,
        dtype in 0u8..4,
        pred_kind in 0u8..8,
        a in -50i64..550,
        b in -50i64..550,
    ) {
        let db = Database::new();
        db.register(
            "t",
            table_of(key_column(dtype, n, domain, clustered == 1, null_every)),
        );
        let sql = format!("SELECT k, v FROM t WHERE {}", predicate(dtype, pred_kind, a, b));
        let (pruned, full, _) = run_both(&db, &sql);
        prop_assert!(
            pruned.approx_eq(&full, 0.0),
            "pruned scan diverged for {sql}: {:?}",
            pruned.diff(&full, 0.0)
        );
    }

    /// Clustered data + selective range ⇒ morsels actually get pruned (the
    /// counters are live, not decorative).
    #[test]
    fn clustered_selective_scans_prune(
        n in 9_000usize..20_000,
        frac in 1i64..10,
    ) {
        let db = Database::new();
        db.register("t", table_of(key_column(0, n, 1_000_000, true, 0)));
        let sql = format!("SELECT v FROM t WHERE k < {}", 1_000_000 * frac / 100);
        let (pruned, full, pruned_zones) = run_both(&db, &sql);
        prop_assert!(pruned.approx_eq(&full, 0.0));
        prop_assert!(pruned_zones > 0, "no zones pruned for {sql}");
    }

    /// Loading one relation in several batches yields the same statistics
    /// (and the same pruned query results) as loading it in one shot.
    #[test]
    fn batched_loads_match_single_load(
        n in 2usize..10_000,
        cut_a in 1usize..9_999,
        cut_b in 1usize..9_999,
        dtype in 0u8..4,
        null_every in 0usize..6,
        probe in 0i64..700,
    ) {
        let col = key_column(dtype, n, 700, false, null_every);
        let rel = table_of(col);
        let (c1, c2) = (cut_a % n, cut_b % n);
        let (c1, c2) = (c1.min(c2).max(1), c1.max(c2).max(1));

        let whole = Database::new();
        whole.register("t", rel.clone());
        let batched = Database::new();
        batched.register("t", slice_rel(&rel, 0, c1));
        if c2 > c1 {
            batched.append("t", &slice_rel(&rel, c1, c2)).unwrap();
        }
        batched.append("t", &slice_rel(&rel, c1.max(c2), n)).unwrap();

        let (ta, tb) = (whole.table("t").unwrap(), batched.table("t").unwrap());
        let (sa, sb) = (ta.stats.as_ref().unwrap(), tb.stats.as_ref().unwrap());
        prop_assert!(sa.row_count == sb.row_count);
        for (ca, cb) in sa.columns.iter().zip(&sb.columns) {
            prop_assert!(ca.null_count == cb.null_count);
            prop_assert!(ca.min == cb.min);
            prop_assert!(ca.max == cb.max);
            prop_assert!(ca.zones == cb.zones);
            prop_assert!(ca.distinct_estimate() == cb.distinct_estimate());
        }
        let sql = if dtype == 3 {
            "SELECT v FROM t WHERE k = TRUE".to_string()
        } else {
            format!("SELECT v FROM t WHERE k >= {probe}")
        };
        let ra = whole.execute_sql(&sql, &EngineConfig::default()).unwrap();
        let rb = batched.execute_sql(&sql, &EngineConfig::default()).unwrap();
        prop_assert!(ra.approx_eq(&rb, 0.0));
    }
}

/// Rows `[start, end)` of a relation as a new relation.
fn slice_rel(rel: &Relation, start: usize, end: usize) -> Relation {
    Relation::new(
        rel.columns()
            .iter()
            .map(|(n, c)| (n.clone(), c.slice(start, end)))
            .collect(),
    )
    .unwrap()
}

/// Float NaN payloads: never satisfy range predicates, never widen zone
/// bounds, and pruned/unpruned row *counts* agree (COUNT avoids NaN-equality
/// comparison noise in the harness itself).
#[test]
fn nan_floats_do_not_break_pruning() {
    let n = 10_000usize;
    let mut col = Column::new(DType::Float);
    for i in 0..n {
        if i % 97 == 0 {
            col.push(Value::Float(f64::NAN)).unwrap();
        } else {
            col.push(Value::Float(i as f64)).unwrap();
        }
    }
    let db = Database::new();
    db.register("t", table_of(col));
    for sql in [
        "SELECT COUNT(*) AS c FROM t WHERE k < 100.0",
        "SELECT COUNT(*) AS c FROM t WHERE k >= 9900.0",
        "SELECT COUNT(*) AS c FROM t WHERE k = 500.0",
    ] {
        let (pruned, full, _) = {
            let on = EngineConfig::default();
            let off = EngineConfig {
                zone_prune: false,
                ..EngineConfig::default()
            };
            (
                db.execute_sql(sql, &on).unwrap(),
                db.execute_sql(sql, &off).unwrap(),
                (),
            )
        };
        assert!(pruned.approx_eq(&full, 0.0), "{sql}");
    }
}
