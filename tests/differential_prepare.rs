//! Differential testing of the compile/execute split: the direct
//! TondIR→plan lowering (`pytond_sqldb::lower`) must be indistinguishable
//! from the SQL-text path (sqlgen → lex → parse → bind) — same results
//! (bit-identical) and same EXPLAIN plans (join order included) — across
//! every TPC-H query, every hybrid workload, and all three dialect/profile
//! pairs. sqlgen stays on as the differential oracle here.

use pytond::{Backend, Dialect, EngineConfig, OptLevel, Profile, Pytond};
use pytond_sqldb::lower::prepare_program;
use pytond_tondir::Program;
use pytond_tpch::{all_queries, generate};
use pytond_workloads::all_workloads;

/// The paper's three backend pairings: SQL dialect × engine profile.
fn pairings() -> [(Dialect, Profile); 3] {
    [
        (Dialect::DuckDb, Profile::Vectorized),
        (Dialect::Hyper, Profile::Fused),
        (Dialect::LingoDb, Profile::Lingo),
    ]
}

fn tpch_instance() -> Pytond {
    let data = generate(0.002);
    let py = Pytond::new();
    for (name, rel, unique) in data.tables() {
        let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
        py.register_table(name, rel.clone(), &keys);
    }
    py
}

/// Optimized TondIR for a source, bypassing the facade so the same program
/// can be pushed through both the text and the direct path.
fn optimize_ir(py: &Pytond, source: &str, level: OptLevel) -> Program {
    let raw = pytond_translate::translate_source(source, &py.catalog()).expect("translate");
    pytond_optimizer::optimize(raw, &py.catalog(), level)
}

/// Asserts the two paths agree for one program on one dialect/profile pair:
/// both fail (profile gates fire identically), or both succeed with equal
/// EXPLAIN text and bit-identical results.
fn assert_paths_agree(py: &Pytond, name: &str, ir: &Program, dialect: Dialect, profile: Profile) {
    let db = py.database();
    let sql = pytond_sqlgen::generate_sql(ir, &py.catalog(), dialect)
        .unwrap_or_else(|e| panic!("{name}: sqlgen failed: {e}"));
    let text = db.prepare(&sql, profile);
    let direct = prepare_program(db, ir, &py.catalog(), profile);
    match (text, direct) {
        (Err(te), Err(de)) => {
            // Typically the LingoDB profile gates (window functions, Q12's
            // disjunctive CASE aggregates): both paths must reject alike.
            assert_eq!(
                te.stage(),
                de.stage(),
                "{name} on {dialect:?}/{profile:?}: error stages diverge: {te} vs {de}"
            );
        }
        (Ok(text), Ok(direct)) => {
            assert_eq!(
                text.explain(),
                direct.explain(),
                "{name} on {dialect:?}/{profile:?}: EXPLAIN (join order) diverges"
            );
            let config = EngineConfig::new(profile, 1);
            let rt = db
                .execute_prepared(&text, &config)
                .unwrap_or_else(|e| panic!("{name} text path exec: {e}"));
            let rd = db
                .execute_prepared(&direct, &config)
                .unwrap_or_else(|e| panic!("{name} direct path exec: {e}"));
            assert!(
                rt.approx_eq(&rd, 0.0),
                "{name} on {dialect:?}/{profile:?}: results not bit-identical: {:?}",
                rt.diff(&rd, 0.0)
            );
        }
        (Ok(_), Err(e)) => panic!("{name} on {dialect:?}/{profile:?}: only direct failed: {e}"),
        (Err(e), Ok(_)) => panic!("{name} on {dialect:?}/{profile:?}: only text failed: {e}"),
    }
}

#[test]
fn tpch_direct_lowering_matches_sql_text_path_all_profiles() {
    let py = tpch_instance();
    for q in all_queries() {
        let ir = optimize_ir(&py, q.source, OptLevel::O4);
        for (dialect, profile) in pairings() {
            assert_paths_agree(&py, q.name, &ir, dialect, profile);
        }
    }
}

#[test]
fn tpch_unoptimized_ir_also_agrees() {
    // O0 keeps every intermediate rule (many more CTEs): stresses the
    // lowering over the largest programs.
    let py = tpch_instance();
    for id in [1, 4, 9, 13, 14, 15] {
        let q = pytond_tpch::query(id);
        let ir = optimize_ir(&py, q.source, OptLevel::O0);
        for (dialect, profile) in pairings() {
            assert_paths_agree(&py, &format!("{}@O0", q.name), &ir, dialect, profile);
        }
    }
}

#[test]
fn hybrid_workloads_direct_lowering_matches_sql_text_path() {
    for w in all_workloads(1) {
        let py = Pytond::new();
        for (name, rel, unique) in &w.tables {
            let keys: Vec<&[&str]> = unique.iter().map(|k| k.as_slice()).collect();
            py.register_table(name, rel.clone(), &keys);
        }
        let ir = optimize_ir(&py, w.source, OptLevel::O4);
        for (dialect, profile) in pairings() {
            assert_paths_agree(&py, w.name, &ir, dialect, profile);
        }
    }
}

#[test]
fn lingo_gated_queries_still_compile_for_export() {
    // The LingoDB profile rejects Q12's SQL shape (aggregates over
    // disjunctive CASE conditions), but `compile` must still produce the
    // SQL export — it targets the paper's real backend; the profile gate
    // fires at execute time, exactly as it did when SQL was the wire format.
    let py = tpch_instance();
    let q12 = pytond_tpch::query(12);
    let compiled = py.compile(q12.source, Dialect::LingoDb).unwrap();
    assert!(compiled.sql.starts_with("WITH"), "export SQL missing");
    let err = py.execute(&compiled, &Backend::lingodb_sim(1));
    assert!(err.is_err(), "lingo gate should fire at execute");
    // The ungated profile runs the same compiled program fine.
    assert!(py.execute(&compiled, &Backend::duckdb_sim(1)).is_ok());
    // And run() on the lingo backend still errors (gate at prepare).
    assert!(py.run(q12.source, &Backend::lingodb_sim(1)).is_err());
}

#[test]
fn facade_run_matches_exported_sql_execution() {
    // End-to-end: `Pytond::run` (cached direct plan) must equal executing
    // the exported SQL text through the engine — the facade-level statement
    // of the same property.
    let py = tpch_instance();
    for id in [3, 6, 12, 18] {
        let q = pytond_tpch::query(id);
        let backend = Backend::duckdb_sim(1);
        let compiled = py.compile(q.source, backend.dialect()).unwrap();
        let via_run = py.run(q.source, &backend).unwrap();
        let via_sql = py
            .database()
            .execute_sql(&compiled.sql, &backend.config())
            .unwrap();
        assert!(
            via_run.approx_eq(&via_sql, 0.0),
            "{}: run() diverges from exported-SQL execution",
            q.name
        );
    }
}
