//! Property tests for the query-lifecycle resilience layer (ISSUE 7 /
//! `docs/RESILIENCE.md`): deadlines, cooperative cancellation, memory
//! budgets and load shedding.
//!
//! The correctness bar: every lifecycle abort is a *transient* error (the
//! taxonomy of `pytond_common::Error::is_transient`), lands within one
//! morsel-claim granularity, and leaves the process fully serviceable —
//! the worker pool keeps running, snapshots and plan caches are untouched,
//! and the next query over the same data reproduces the reference result
//! bit for bit. Fault-injection sweeps live in `tests/fault_injection.rs`
//! (their process-global harness must not race other tests).

use pytond_common::pool::Admission;
use pytond_common::retry::{retry, RetryPolicy};
use pytond_common::{CancelToken, Column, Error, Relation};
use pytond_sqldb::{Database, EngineConfig, Profile};
use std::time::{Duration, Instant};

/// Rows of the deliberately slow table: large enough that the aggregation
/// below takes well over the 10 ms deadline on any machine, small enough
/// to build quickly.
const BIG_ROWS: i64 = 512 * 1024;

/// Distinct groups: a large hash-aggregation state (this is also what the
/// 1 MiB memory-budget test trips on).
const GROUPS: i64 = 1 << 16;

/// The seeded slow query: a full-table hash aggregation into [`GROUPS`]
/// states with three aggregates per group.
const SLOW_SQL: &str = "SELECT g, SUM(v) AS sv, SUM(w) AS sw, COUNT(*) AS n FROM big GROUP BY g";

fn big_db() -> Database {
    let db = Database::new();
    db.register(
        "big",
        Relation::new(vec![
            (
                "g".into(),
                Column::from_i64((0..BIG_ROWS).map(|i| i % GROUPS).collect()),
            ),
            (
                "v".into(),
                Column::from_i64((0..BIG_ROWS).map(|i| i % 97).collect()),
            ),
            (
                "w".into(),
                Column::from_i64((0..BIG_ROWS).map(|i| -(i % 97)).collect()),
            ),
        ])
        .unwrap(),
    );
    db
}

/// Serial, small-morsel configuration: frequent morsel claims make the
/// cancellation granularity fine even on one thread.
fn serial_cfg() -> EngineConfig {
    EngineConfig {
        threads: 1,
        morsel: 4096,
        ..EngineConfig::default()
    }
}

/// The acceptance criterion of ISSUE 7: a seeded slow query with a 10 ms
/// deadline returns `Error::Timeout` within one morsel-claim granularity —
/// orders of magnitude before the query would have finished.
#[test]
fn deadline_times_out_within_a_morsel_claim() {
    let db = big_db();
    let prepared = db.prepare(SLOW_SQL, Profile::Vectorized).unwrap();
    // Sanity: unlimited, the query succeeds and genuinely takes longer than
    // the deadline we are about to impose.
    let start = Instant::now();
    let full = db.execute_prepared(&prepared, &serial_cfg()).unwrap();
    let full_elapsed = start.elapsed();
    assert_eq!(full.num_rows() as i64, GROUPS);
    assert!(
        full_elapsed > Duration::from_millis(10),
        "slow query finished in {full_elapsed:?}; it cannot exercise a 10ms deadline"
    );
    // With a 10 ms deadline the same plan must abort with the transient
    // Timeout, promptly: one morsel claim past the deadline, bounded far
    // below the full runtime.
    let cfg = serial_cfg().with_timeout(Some(10));
    let start = Instant::now();
    let err = db.execute_prepared(&prepared, &cfg).unwrap_err();
    let elapsed = start.elapsed();
    assert!(matches!(err, Error::Timeout(_)), "{err}");
    assert!(err.is_transient());
    assert!(
        elapsed < Duration::from_millis(1500),
        "timeout surfaced only after {elapsed:?}"
    );
    // The pool and snapshot are unaffected: the same plan still completes.
    let again = db.execute_prepared(&prepared, &serial_cfg()).unwrap();
    assert_eq!(again.num_rows() as i64, GROUPS);
}

/// Explicit cancellation: a pre-tripped token aborts at the first morsel
/// claim; a mid-flight cancel from another thread aborts promptly; and
/// neither poisons the pool or the snapshot.
#[test]
fn explicit_cancel_aborts_and_leaves_the_pool_serviceable() {
    let db = big_db();
    let prepared = db.prepare(SLOW_SQL, Profile::Vectorized).unwrap();
    let snap = db.snapshot();

    // Deterministic: the token is already tripped when execution starts.
    let cancel = CancelToken::new();
    cancel.cancel();
    let err = snap
        .execute_prepared_with(&prepared, &serial_cfg(), cancel.clone())
        .unwrap_err();
    assert!(matches!(err, Error::Cancelled(_)), "{err}");
    assert!(err.is_transient());
    assert!(cancel.checks() > 0, "execution never polled the token");

    // Mid-flight: another thread cancels a few milliseconds in. The query
    // either finished first (correct result) or aborted with Cancelled —
    // nothing else.
    let token = CancelToken::new();
    let racer = token.clone();
    std::thread::scope(|s| {
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(3));
            racer.cancel();
        });
        match snap.execute_prepared_with(&prepared, &serial_cfg(), token) {
            Ok(rel) => assert_eq!(rel.num_rows() as i64, GROUPS),
            Err(e) => assert!(matches!(e, Error::Cancelled(_)), "{e}"),
        }
    });

    // Serviceability: the very next unlimited run succeeds.
    let ok = db.execute_prepared(&prepared, &serial_cfg()).unwrap();
    assert_eq!(ok.num_rows() as i64, GROUPS);
}

/// A 1 MiB budget must abort the large hash aggregation with the transient
/// `ResourceExhausted`, and the abort must not disturb the snapshot: the
/// unbudgeted re-run reproduces the reference bit for bit.
#[test]
fn memory_budget_aborts_without_poisoning_the_snapshot() {
    let db = big_db();
    let prepared = db.prepare(SLOW_SQL, Profile::Vectorized).unwrap();
    let reference = db.execute_prepared(&prepared, &serial_cfg()).unwrap();

    let tight = serial_cfg().with_mem_budget(Some(1));
    let err = db.execute_prepared(&prepared, &tight).unwrap_err();
    assert!(matches!(err, Error::ResourceExhausted(_)), "{err}");
    assert!(err.is_transient());

    let after = db.execute_prepared(&prepared, &serial_cfg()).unwrap();
    assert_eq!(reference, after, "budget abort disturbed the snapshot");

    // A generous budget admits the query and reports its accounting.
    let roomy = serial_cfg().with_mem_budget(Some(1024));
    let (out, trace) = db.execute_prepared_traced(&prepared, &roomy).unwrap();
    assert_eq!(out.num_rows() as i64, GROUPS);
    assert_eq!(trace.metrics.mem_budget_bytes, 1024 * 1024 * 1024);
    assert!(
        trace.metrics.mem_peak_bytes > 0,
        "the aggregation charged nothing against its budget"
    );
    assert!(trace.metrics.mem_peak_bytes < trace.metrics.mem_budget_bytes);
}

/// Bounded admission: a full gate rejects with the transient `Overloaded`
/// instead of queueing forever, and the jittered-backoff `retry` helper
/// recovers as soon as capacity frees up.
#[test]
fn overloaded_admission_sheds_and_retry_recovers() {
    let gate = Admission::with_capacity(1);
    let held = gate.admit_within(None).unwrap();

    // Zero timeout = shed immediately when full.
    let err = gate.admit_within(Some(Duration::ZERO)).unwrap_err();
    assert!(matches!(err, Error::Overloaded(_)), "{err}");
    assert!(err.is_transient());

    // A short bounded wait still sheds while the slot stays occupied.
    let err = gate
        .admit_within(Some(Duration::from_millis(5)))
        .unwrap_err();
    assert!(matches!(err, Error::Overloaded(_)), "{err}");

    // retry: the first attempt sheds, the slot frees, the second succeeds.
    let mut held = Some(held);
    let admitted_at = retry(RetryPolicy::default(), |attempt| {
        if attempt >= 1 {
            held.take();
        }
        gate.admit_within(Some(Duration::ZERO)).map(|t| {
            drop(t);
            attempt
        })
    })
    .unwrap();
    assert_eq!(admitted_at, 1);

    // Permanent errors are not retried.
    let mut calls = 0u32;
    let err = retry(RetryPolicy::default(), |_| -> Result<(), Error> {
        calls += 1;
        Err(Error::Data("schema mismatch".into()))
    })
    .unwrap_err();
    assert!(matches!(err, Error::Data(_)));
    assert_eq!(calls, 1);
}

/// The EXPLAIN/trace header reports the lifecycle limits in force, and the
/// metrics carry the cancellation-poll and memory-accounting counters.
#[test]
fn traces_report_limits_and_lifecycle_counters() {
    let db = Database::new();
    db.register(
        "t",
        Relation::new(vec![("x".into(), Column::from_i64((0..1024).collect()))]).unwrap(),
    );
    let prepared = db
        .prepare("SELECT COUNT(*) AS n FROM t", Profile::Vectorized)
        .unwrap();

    let cfg = EngineConfig::default()
        .with_timeout(Some(5000))
        .with_mem_budget(Some(64));
    let (_, trace) = db.execute_prepared_traced(&prepared, &cfg).unwrap();
    assert!(
        trace
            .plan
            .contains("limits: deadline 5000ms, mem budget 67108864 bytes"),
        "{}",
        trace.plan
    );
    assert!(
        trace.summary().contains("limits: deadline 5000ms"),
        "{}",
        trace.summary()
    );
    assert_eq!(trace.metrics.deadline_ms, 5000);
    assert_eq!(trace.metrics.mem_budget_bytes, 64 * 1024 * 1024);
    assert!(trace.metrics.cancel_checks > 0);

    // Unlimited runs say so explicitly. A default config defers to the
    // environment (the CI resilience job runs this suite under
    // PYTOND_QUERY_TIMEOUT_MS), so force "no limits" with the explicit
    // `Some(0)` override rather than assuming a clean environment.
    let off = EngineConfig::default()
        .with_timeout(Some(0))
        .with_mem_budget(Some(0));
    let (_, unlimited) = db.execute_prepared_traced(&prepared, &off).unwrap();
    assert!(
        unlimited
            .plan
            .contains("limits: deadline none, mem budget none"),
        "{}",
        unlimited.plan
    );
    assert_eq!(unlimited.metrics.deadline_ms, 0);
    assert_eq!(unlimited.metrics.mem_budget_bytes, 0);
}

// ---------------- fused pipelines under lifecycle limits ----------------

/// [`serial_cfg`] under the fused profile: the queries below execute as
/// single-pass pipelines (scan → … → sink) instead of materializing
/// operators.
fn fused_cfg() -> EngineConfig {
    EngineConfig {
        profile: Profile::Fused,
        ..serial_cfg()
    }
}

/// [`SLOW_SQL`] with a pushed-down scan predicate, so the fused profile
/// drives it as one scan→aggregate pipeline rather than falling back to
/// the bare-aggregate operator.
const SLOW_FUSED_SQL: &str =
    "SELECT g, SUM(v) AS sv, SUM(w) AS sw, COUNT(*) AS n FROM big WHERE v >= 0 GROUP BY g";

/// Lifecycle limits must trip *inside* a fused pipeline with the same
/// one-morsel granularity as the materializing path: the driver polls the
/// token at every claim and at every stage boundary, so a deadline, a
/// pre-tripped cancel and a tight memory budget all abort mid-pipeline
/// with their transient errors — and a clean re-run afterwards is
/// bit-identical to the materializing oracle.
#[test]
fn fused_pipeline_trips_limits_within_a_morsel() {
    let db = big_db();
    let prepared = db.prepare(SLOW_FUSED_SQL, Profile::Fused).unwrap();
    let reference = db.execute_prepared(&prepared, &serial_cfg()).unwrap();
    assert_eq!(reference.num_rows() as i64, GROUPS);

    // Deadline: aborts long before the pipeline would finish.
    let start = Instant::now();
    let err = db
        .execute_prepared(&prepared, &fused_cfg().with_timeout(Some(10)))
        .unwrap_err();
    assert!(matches!(err, Error::Timeout(_)), "{err}");
    assert!(err.is_transient());
    assert!(
        start.elapsed() < Duration::from_millis(1500),
        "fused timeout surfaced only after {:?}",
        start.elapsed()
    );

    // Pre-tripped cancel: the first morsel claim inside the pipeline polls
    // the token and aborts before any chunk flows.
    let cancel = CancelToken::new();
    cancel.cancel();
    let err = db
        .snapshot()
        .execute_prepared_with(&prepared, &fused_cfg(), cancel.clone())
        .unwrap_err();
    assert!(matches!(err, Error::Cancelled(_)), "{err}");
    assert!(cancel.checks() > 0, "fused drive never polled the token");

    // Memory budget: the aggregation state blows a 1 MiB budget whether or
    // not the input streamed through a pipeline.
    let err = db
        .execute_prepared(&prepared, &fused_cfg().with_mem_budget(Some(1)))
        .unwrap_err();
    assert!(matches!(err, Error::ResourceExhausted(_)), "{err}");
    assert!(err.is_transient());

    // No abort disturbed anything: the clean fused run reproduces the
    // materializing reference bit for bit.
    let after = db.execute_prepared(&prepared, &fused_cfg()).unwrap();
    assert_eq!(reference, after, "fused abort disturbed the snapshot");
}

/// A materialize-sink pipeline (scan → project, no aggregation) charges its
/// per-chunk stage outputs against the budget, so a tight budget trips
/// mid-pipeline — within one morsel of crossing the line, not after the
/// full output materialized.
#[test]
fn fused_projection_pipeline_charges_chunks_against_the_budget() {
    let db = big_db();
    let sql = "SELECT v + w AS x FROM big WHERE v >= 0";
    let prepared = db.prepare(sql, Profile::Fused).unwrap();

    let err = db
        .execute_prepared(&prepared, &fused_cfg().with_mem_budget(Some(1)))
        .unwrap_err();
    assert!(matches!(err, Error::ResourceExhausted(_)), "{err}");

    // Unbudgeted, fused output equals the materializing oracle's.
    let reference = db.execute_prepared(&prepared, &serial_cfg()).unwrap();
    let fused = db.execute_prepared(&prepared, &fused_cfg()).unwrap();
    assert_eq!(reference, fused);
    assert_eq!(reference.num_rows() as i64, BIG_ROWS);
}

/// `Some(0)` on the config explicitly disables a limit (distinct from
/// `None` = "defer to the environment default").
#[test]
fn zero_disables_the_limit_explicitly() {
    let db = big_db();
    let prepared = db.prepare(SLOW_SQL, Profile::Vectorized).unwrap();
    let cfg = serial_cfg().with_timeout(Some(0)).with_mem_budget(Some(0));
    let (out, trace) = db.execute_prepared_traced(&prepared, &cfg).unwrap();
    assert_eq!(out.num_rows() as i64, GROUPS);
    assert_eq!(trace.metrics.deadline_ms, 0);
    assert_eq!(trace.metrics.mem_budget_bytes, 0);
}
