//! Offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Implements the subset the `paper_figures` bench uses: benchmark
//! groups with `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark runs one
//! warm-up iteration plus `sample_size` timed iterations and reports the
//! mean; no statistical machinery.
//!
//! Environment knobs (used by CI):
//! - `PYTOND_BENCH_SMOKE=1` — cap every benchmark at 2 timed iterations
//!   with no warm-up, so the whole suite finishes in seconds.
//! - `PYTOND_BENCH_JSON=<path>` — additionally write the results as a
//!   JSON array of `{group, bench, iters, mean_ns}` objects.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// One recorded measurement.
#[derive(Debug, Clone)]
struct Sample {
    group: String,
    bench: String,
    iters: u64,
    mean_ns: f64,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    samples: Vec<Sample>,
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Print the summary table and honor `PYTOND_BENCH_JSON`.
    pub fn final_summary(&self) {
        println!("{:<28} {:<44} {:>12}", "group", "benchmark", "mean");
        for s in &self.samples {
            println!(
                "{:<28} {:<44} {:>12}",
                s.group,
                s.bench,
                format_ns(s.mean_ns)
            );
        }
        if let Ok(path) = std::env::var("PYTOND_BENCH_JSON") {
            let mut out = String::from("[\n");
            for (i, s) in self.samples.iter().enumerate() {
                out.push_str(&format!(
                    "  {{\"group\": {:?}, \"bench\": {:?}, \"iters\": {}, \"mean_ns\": {:.1}}}{}\n",
                    s.group,
                    s.bench,
                    s.iters,
                    s.mean_ns,
                    if i + 1 == self.samples.len() { "" } else { "," }
                ));
            }
            out.push_str("]\n");
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("criterion shim: failed to write {path}: {e}");
            } else {
                eprintln!("criterion shim: wrote {path}");
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn smoke() -> bool {
    std::env::var("PYTOND_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim always warms up with a
    /// single iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times a fixed number of
    /// iterations instead of filling a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, |b| f(b));
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let iters = if smoke() { 2 } else { self.sample_size as u64 };
        let mut bencher = Bencher {
            iters,
            warmup: !smoke(),
            elapsed: Duration::ZERO,
            timed: 0,
        };
        f(&mut bencher);
        let mean_ns = if bencher.timed == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.timed as f64
        };
        self.criterion.samples.push(Sample {
            group: self.name.clone(),
            bench: id.label,
            iters: bencher.timed,
            mean_ns,
        });
    }

    /// End the group (all work already happened eagerly).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, as rendered by real criterion.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    warmup: bool,
    elapsed: Duration,
    timed: u64,
}

impl Bencher {
    /// Run the routine once as warm-up, then time the configured number
    /// of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.warmup {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.timed += self.iters;
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point running the given groups and printing the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); the
            // shim has no CLI of its own and ignores them.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let input = 21u64;
        group.bench_with_input(BenchmarkId::new("double", "21"), &input, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function(BenchmarkId::new("noop", 0), |b| b.iter(|| ()));
        group.finish();
    }

    #[test]
    fn records_samples() {
        let mut c = Criterion::default();
        work(&mut c);
        assert_eq!(c.samples.len(), 2);
        assert_eq!(c.samples[0].label_for_test(), "g double/21");
        assert!(c.samples.iter().all(|s| s.iters >= 1));
    }

    impl Sample {
        fn label_for_test(&self) -> String {
            format!("{} {}", self.group, self.bench)
        }
    }
}
