//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest!` item macro with a `#![proptest_config(..)]` header,
//! `prop_assert!`, `ProptestConfig::with_cases`, range/tuple strategies
//! and `prop::collection::vec`. There is no shrinking — a failing case
//! panics immediately with the deterministic case index, so a failure
//! reproduces by rerunning the same test binary.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{prop, prop_assert, proptest, ProptestConfig, Strategy};
}

/// Re-export namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::collection::vec;
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;
    /// Sample one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Rng, StdRng, Strategy};
    use std::ops::Range;

    /// Strategy producing a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-case generator: the same `(test name, case index)`
/// always replays the same inputs.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ ((case as u64) << 32 | case as u64))
}

/// Assert inside a property test; on failure the harness reports the
/// case index and sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let inputs = format!(
                    concat!("case ", "{}", $(", ", stringify!($arg), " = {:?}",)*),
                    case $(, $arg)*
                );
                let result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = result {
                    eprintln!("proptest case failed: {inputs}");
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn vec_lengths_in_bounds(
            rows in prop::collection::vec((0i64..50, -1.0f64..1.0, 0u8..4), 1..20),
            k in -5i64..5,
        ) {
            prop_assert!((1..20).contains(&rows.len()));
            prop_assert!((-5..5).contains(&k), "k = {}", k);
            for (a, b, c) in &rows {
                prop_assert!((0..50).contains(a));
                prop_assert!((-1.0..1.0).contains(b));
                prop_assert!(*c < 4);
            }
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng as _;
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
    }
}
