//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Implements the subset of the rand 0.8 API the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}` over the
//! integer and float range types that appear in the data generators.
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic
//! and fast, which is all the synthetic-data generators need.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64 bits from the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, in the style of rand 0.8.
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`
    /// (for `f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one sample from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Uniform integer in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — bias is < 2^-64, irrelevant for
/// synthetic benchmark data).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        ((rng.next_u64() as u128 * span) >> 64) & (u128::MAX >> 64)
    } else {
        rng.next_u64() as u128 % span
    }
}

macro_rules! float_sample_range {
    // Exactly one mantissa's worth of bits per type: more would round up
    // to 1.0 at the top of the range, breaking the half-open contract.
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    * (1.0 / (1u64 << $bits) as $t);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32 => 24, f64 => 53);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-99_999i64..1_000_000);
            assert!((-99_999..1_000_000).contains(&v));
            let w = rng.gen_range(1..=7usize);
            assert!((1..=7).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_ranges_stay_half_open_at_the_top() {
        struct MaxRng;
        impl crate::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = MaxRng;
        assert!(rng.gen_range(0.0f32..1.0) < 1.0);
        assert!(rng.gen_range(0.0f64..1.0) < 1.0);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }
}
