//! Recursive-descent parser with CPython operator precedence.

use crate::ast::*;
use crate::lexer::{tokenize, SpannedTok, Tok};
use pytond_common::{Error, Result};

/// Parses a complete source file into a [`Module`].
pub fn parse_module(src: &str) -> Result<Module> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut stmts = Vec::new();
    loop {
        p.skip_newlines();
        if p.check(&Tok::Eof) {
            break;
        }
        stmts.push(p.statement()?);
    }
    Ok(Module { stmts })
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

/// Positional arguments plus `name=value` keyword arguments of a call.
type CallArgs = (Vec<Expr>, Vec<(String, Expr)>);

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_ahead(&self, n: usize) -> &Tok {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn check(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn check_op(&self, op: &str) -> bool {
        matches!(self.peek(), Tok::Op(o) if *o == op)
    }

    fn check_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Name(n) if n == kw)
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.check_op(op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.check_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &str) -> Result<()> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{op}', found {:?}", self.peek())))
        }
    }

    fn expect_name(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Name(n) => Ok(n),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse(format!("line {}: {}", self.line(), msg.into()))
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
    }

    fn end_statement(&mut self) -> Result<()> {
        if self.eat_op(";") {
            return Ok(());
        }
        match self.peek() {
            Tok::Newline => {
                self.bump();
                Ok(())
            }
            Tok::Eof | Tok::Dedent => Ok(()),
            other => Err(self.err(format!("expected end of statement, found {other:?}"))),
        }
    }

    // ---------------- statements ----------------

    fn statement(&mut self) -> Result<Stmt> {
        if self.check_op("@") || self.check_kw("def") {
            return Ok(Stmt::FuncDef(self.funcdef()?));
        }
        if self.eat_kw("return") {
            if matches!(self.peek(), Tok::Newline | Tok::Eof | Tok::Dedent) {
                self.end_statement()?;
                return Ok(Stmt::Return(None));
            }
            let v = self.expression()?;
            self.end_statement()?;
            return Ok(Stmt::Return(Some(v)));
        }
        if self.eat_kw("pass") {
            self.end_statement()?;
            return Ok(Stmt::Pass);
        }
        if self.eat_kw("import") || self.eat_kw("from") {
            // imports are irrelevant to translation; consume the line
            while !matches!(self.peek(), Tok::Newline | Tok::Eof) {
                self.bump();
            }
            self.end_statement()?;
            return Ok(Stmt::Pass);
        }
        let first = self.expression()?;
        const AUG: &[(&str, BinOp)] = &[
            ("+=", BinOp::Add),
            ("-=", BinOp::Sub),
            ("*=", BinOp::Mul),
            ("/=", BinOp::Div),
            ("//=", BinOp::FloorDiv),
            ("%=", BinOp::Mod),
            ("**=", BinOp::Pow),
            ("&=", BinOp::BitAnd),
            ("|=", BinOp::BitOr),
            ("^=", BinOp::BitXor),
        ];
        for (op, bop) in AUG {
            if self.check_op(op) {
                self.bump();
                let value = self.expression()?;
                self.end_statement()?;
                return Ok(Stmt::AugAssign {
                    target: first,
                    op: *bop,
                    value,
                });
            }
        }
        if self.eat_op("=") {
            let mut value = self.expression()?;
            // Chained assignment a = b = expr: right-associate; we only keep
            // the first target (sufficient for straight-line DS code).
            while self.eat_op("=") {
                value = self.expression()?;
            }
            self.end_statement()?;
            return Ok(Stmt::Assign {
                target: first,
                value,
            });
        }
        self.end_statement()?;
        Ok(Stmt::Expr(first))
    }

    fn funcdef(&mut self) -> Result<FuncDef> {
        let mut decorators = Vec::new();
        while self.eat_op("@") {
            let mut name = self.expect_name()?;
            while self.eat_op(".") {
                name.push('.');
                name.push_str(&self.expect_name()?);
            }
            let (args, kwargs) = if self.check_op("(") {
                self.call_args()?
            } else {
                (Vec::new(), Vec::new())
            };
            decorators.push(Decorator { name, args, kwargs });
            self.skip_newlines();
        }
        if !self.eat_kw("def") {
            return Err(self.err("expected 'def' after decorators"));
        }
        let name = self.expect_name()?;
        self.expect_op("(")?;
        let mut params = Vec::new();
        while !self.check_op(")") {
            params.push(self.expect_name()?);
            // ignore default values / annotations
            if self.eat_op(":") {
                self.expression()?;
            }
            if self.eat_op("=") {
                self.expression()?;
            }
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(")")?;
        if self.eat_op("->") {
            self.expression()?;
        }
        self.expect_op(":")?;
        self.end_statement()?;
        self.skip_newlines();
        if !matches!(self.peek(), Tok::Indent) {
            return Err(self.err("expected indented function body"));
        }
        self.bump();
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            if matches!(self.peek(), Tok::Dedent) {
                self.bump();
                break;
            }
            if matches!(self.peek(), Tok::Eof) {
                break;
            }
            body.push(self.statement()?);
        }
        Ok(FuncDef {
            name,
            params,
            decorators,
            body,
        })
    }

    // ---------------- expressions ----------------

    /// Entry: lambda | ternary.
    fn expression(&mut self) -> Result<Expr> {
        if self.check_kw("lambda") {
            return self.lambda();
        }
        self.ternary()
    }

    fn lambda(&mut self) -> Result<Expr> {
        self.bump(); // lambda
        let mut params = Vec::new();
        while !self.check_op(":") {
            params.push(self.expect_name()?);
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(":")?;
        let body = self.expression()?;
        Ok(Expr::Lambda {
            params,
            body: Box::new(body),
        })
    }

    fn ternary(&mut self) -> Result<Expr> {
        let body = self.or_expr()?;
        if self.eat_kw("if") {
            let test = self.or_expr()?;
            if !self.eat_kw("else") {
                return Err(self.err("expected 'else' in conditional expression"));
            }
            let orelse = self.expression()?;
            return Ok(Expr::IfExp {
                test: Box::new(test),
                body: Box::new(body),
                orelse: Box::new(orelse),
            });
        }
        Ok(body)
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let operand = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let first = self.bitor()?;
        let mut comparisons: Vec<(CmpOp, Expr)> = Vec::new();
        let mut prev = first.clone();
        loop {
            let op = if self.eat_op("==") {
                CmpOp::Eq
            } else if self.eat_op("!=") {
                CmpOp::Ne
            } else if self.eat_op("<=") {
                CmpOp::Le
            } else if self.eat_op(">=") {
                CmpOp::Ge
            } else if self.eat_op("<") {
                CmpOp::Lt
            } else if self.eat_op(">") {
                CmpOp::Gt
            } else if self.check_kw("in") {
                self.bump();
                CmpOp::In
            } else if self.check_kw("not")
                && matches!(self.peek_ahead(1), Tok::Name(n) if n == "in")
            {
                self.bump();
                self.bump();
                CmpOp::NotIn
            } else if self.check_kw("is") {
                self.bump();
                if self.eat_kw("not") {
                    CmpOp::IsNot
                } else {
                    CmpOp::Is
                }
            } else {
                break;
            };
            let right = self.bitor()?;
            comparisons.push((op, right.clone()));
            prev = right;
        }
        let _ = prev;
        match comparisons.len() {
            0 => Ok(first),
            1 => {
                let (op, right) = comparisons.into_iter().next().unwrap();
                Ok(Expr::Compare {
                    op,
                    left: Box::new(first),
                    right: Box::new(right),
                })
            }
            _ => {
                // a < b < c  →  (a < b) and (b < c)
                let mut left_operand = first;
                let mut result: Option<Expr> = None;
                for (op, right) in comparisons {
                    let cmp = Expr::Compare {
                        op,
                        left: Box::new(left_operand.clone()),
                        right: Box::new(right.clone()),
                    };
                    result = Some(match result {
                        None => cmp,
                        Some(acc) => Expr::Binary {
                            op: BinOp::And,
                            left: Box::new(acc),
                            right: Box::new(cmp),
                        },
                    });
                    left_operand = right;
                }
                Ok(result.unwrap())
            }
        }
    }

    fn bitor(&mut self) -> Result<Expr> {
        let mut left = self.bitxor()?;
        while self.check_op("|") {
            self.bump();
            let right = self.bitxor()?;
            left = Expr::Binary {
                op: BinOp::BitOr,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn bitxor(&mut self) -> Result<Expr> {
        let mut left = self.bitand()?;
        while self.check_op("^") {
            self.bump();
            let right = self.bitand()?;
            left = Expr::Binary {
                op: BinOp::BitXor,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn bitand(&mut self) -> Result<Expr> {
        let mut left = self.additive()?;
        while self.check_op("&") {
            self.bump();
            let right = self.additive()?;
            left = Expr::Binary {
                op: BinOp::BitAnd,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.check_op("+") {
                BinOp::Add
            } else if self.check_op("-") {
                BinOp::Sub
            } else {
                break;
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = if self.check_op("*") {
                BinOp::Mul
            } else if self.check_op("/") {
                BinOp::Div
            } else if self.check_op("//") {
                BinOp::FloorDiv
            } else if self.check_op("%") {
                BinOp::Mod
            } else {
                break;
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        let op = if self.check_op("-") {
            Some(UnaryOp::Neg)
        } else if self.check_op("+") {
            Some(UnaryOp::Pos)
        } else if self.check_op("~") {
            Some(UnaryOp::Invert)
        } else {
            None
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            // Constant-fold negative literals for nicer downstream matching.
            if op == UnaryOp::Neg {
                match &operand {
                    Expr::Int(i) => return Ok(Expr::Int(-i)),
                    Expr::Float(f) => return Ok(Expr::Float(-f)),
                    _ => {}
                }
            }
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
            });
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr> {
        let base = self.postfix()?;
        if self.eat_op("**") {
            let exp = self.unary()?; // right-assoc, allows -x in exponent
            return Ok(Expr::Binary {
                op: BinOp::Pow,
                left: Box::new(base),
                right: Box::new(exp),
            });
        }
        Ok(base)
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.atom()?;
        loop {
            if self.check_op("(") {
                let (args, kwargs) = self.call_args()?;
                e = Expr::Call {
                    func: Box::new(e),
                    args,
                    kwargs,
                };
            } else if self.eat_op(".") {
                let attr = self.expect_name()?;
                e = Expr::Attribute {
                    value: Box::new(e),
                    attr,
                };
            } else if self.eat_op("[") {
                let index = self.subscript_index()?;
                self.expect_op("]")?;
                e = Expr::Subscript {
                    value: Box::new(e),
                    index: Box::new(index),
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    /// Parses the inside of `[...]`: slices, tuples of slices, expressions.
    fn subscript_index(&mut self) -> Result<Expr> {
        let mut items = Vec::new();
        loop {
            items.push(self.slice_item()?);
            if !self.eat_op(",") {
                break;
            }
            if self.check_op("]") {
                break;
            }
        }
        Ok(if items.len() == 1 {
            items.into_iter().next().unwrap()
        } else {
            Expr::Tuple(items)
        })
    }

    fn slice_item(&mut self) -> Result<Expr> {
        let lower = if self.check_op(":") {
            None
        } else {
            Some(Box::new(self.expression()?))
        };
        if !self.eat_op(":") {
            return Ok(*lower.expect("non-slice item has expression"));
        }
        let upper = if self.check_op(":") || self.check_op("]") || self.check_op(",") {
            None
        } else {
            Some(Box::new(self.expression()?))
        };
        let step = if self.eat_op(":") {
            if self.check_op("]") || self.check_op(",") {
                None
            } else {
                Some(Box::new(self.expression()?))
            }
        } else {
            None
        };
        Ok(Expr::Slice { lower, upper, step })
    }

    fn call_args(&mut self) -> Result<CallArgs> {
        self.expect_op("(")?;
        let mut args = Vec::new();
        let mut kwargs = Vec::new();
        while !self.check_op(")") {
            if self.eat_op("*") {
                let inner = self.expression()?;
                args.push(Expr::Starred(Box::new(inner)));
            } else if matches!(self.peek(), Tok::Name(_))
                && matches!(self.peek_ahead(1), Tok::Op("="))
            {
                let name = self.expect_name()?;
                self.expect_op("=")?;
                let value = self.expression()?;
                kwargs.push((name, value));
            } else {
                args.push(self.expression()?);
            }
            if !self.eat_op(",") {
                break;
            }
        }
        self.expect_op(")")?;
        Ok((args, kwargs))
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.bump() {
            Tok::Int(i) => Ok(Expr::Int(i)),
            Tok::Float(f) => Ok(Expr::Float(f)),
            Tok::Str(s) => {
                // adjacent string literal concatenation
                let mut out = s;
                while let Tok::Str(next) = self.peek() {
                    out.push_str(next);
                    self.bump();
                }
                Ok(Expr::Str(out))
            }
            Tok::Name(n) => match n.as_str() {
                "True" => Ok(Expr::Bool(true)),
                "False" => Ok(Expr::Bool(false)),
                "None" => Ok(Expr::NoneLit),
                "lambda" => {
                    // lambda appearing as an argument: back up and reparse
                    self.pos -= 1;
                    self.lambda()
                }
                _ => Ok(Expr::Name(n)),
            },
            Tok::Op("(") => {
                if self.eat_op(")") {
                    return Ok(Expr::Tuple(Vec::new()));
                }
                let first = self.expression()?;
                if self.eat_op(",") {
                    let mut items = vec![first];
                    while !self.check_op(")") {
                        items.push(self.expression()?);
                        if !self.eat_op(",") {
                            break;
                        }
                    }
                    self.expect_op(")")?;
                    return Ok(Expr::Tuple(items));
                }
                self.expect_op(")")?;
                Ok(first)
            }
            Tok::Op("[") => {
                let mut items = Vec::new();
                while !self.check_op("]") {
                    items.push(self.expression()?);
                    if !self.eat_op(",") {
                        break;
                    }
                }
                self.expect_op("]")?;
                Ok(Expr::List(items))
            }
            Tok::Op("{") => {
                let mut items = Vec::new();
                while !self.check_op("}") {
                    let k = self.expression()?;
                    self.expect_op(":")?;
                    let v = self.expression()?;
                    items.push((k, v));
                    if !self.eat_op(",") {
                        break;
                    }
                }
                self.expect_op("}")?;
                Ok(Expr::Dict(items))
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        let m = parse_module(src).unwrap();
        match m.stmts.into_iter().next().unwrap() {
            Stmt::Expr(e) => e,
            Stmt::Assign { value, .. } => value,
            other => panic!("expected expression, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mask_ops_bind_tighter_than_comparison() {
        // CPython precedence: `&` binds tighter than `>`, which is exactly
        // why pandas masks need parentheses. `a & b > 1` = `(a & b) > 1`.
        let e = expr("a & b > 1");
        match e {
            Expr::Compare {
                op: CmpOp::Gt,
                left,
                ..
            } => {
                assert!(matches!(
                    *left,
                    Expr::Binary {
                        op: BinOp::BitAnd,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = expr("1 + 2 * 3");
        match e {
            Expr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn power_is_right_associative() {
        let e = expr("2 ** 3 ** 2");
        match e {
            Expr::Binary {
                op: BinOp::Pow,
                right,
                ..
            } => assert!(matches!(*right, Expr::Binary { op: BinOp::Pow, .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chained_comparison_desugars_to_and() {
        let e = expr("1 < x < 10");
        assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn method_chain_with_kwargs() {
        let e = expr("df.sort_values(by=['a', 'b'], ascending=False).head(5)");
        match e {
            Expr::Call { func, args, .. } => {
                assert_eq!(args, vec![Expr::Int(5)]);
                match *func {
                    Expr::Attribute { attr, value } => {
                        assert_eq!(attr, "head");
                        match *value {
                            Expr::Call { kwargs, .. } => {
                                assert_eq!(kwargs.len(), 2);
                                assert_eq!(kwargs[0].0, "by");
                                assert_eq!(kwargs[1].1, Expr::Bool(false));
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boolean_mask_expression() {
        let e = expr("df[(df.a > 1) & ~(df.b == 'x')]");
        match e {
            Expr::Subscript { index, .. } => match *index {
                Expr::Binary {
                    op: BinOp::BitAnd,
                    right,
                    ..
                } => assert!(matches!(
                    *right,
                    Expr::Unary {
                        op: UnaryOp::Invert,
                        ..
                    }
                )),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn slices() {
        let e = expr("a[1:10:2]");
        match e {
            Expr::Subscript { index, .. } => match *index {
                Expr::Slice { lower, upper, step } => {
                    assert_eq!(*lower.unwrap(), Expr::Int(1));
                    assert_eq!(*upper.unwrap(), Expr::Int(10));
                    assert_eq!(*step.unwrap(), Expr::Int(2));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        let open = expr("a[:, 0]");
        match open {
            Expr::Subscript { index, .. } => assert!(matches!(*index, Expr::Tuple(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decorated_function() {
        let src = r#"
@pytond(layout='dense', unique=['id'])
def q(df):
    v = df[df.a > 10]
    return v
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("q").unwrap();
        assert_eq!(f.params, vec!["df"]);
        assert_eq!(f.decorators.len(), 1);
        assert_eq!(
            f.decorators[0].kwarg("layout").unwrap().as_str_lit(),
            Some("dense")
        );
        assert_eq!(f.body.len(), 2);
        assert!(matches!(f.body[1], Stmt::Return(Some(_))));
    }

    #[test]
    fn lambda_expressions() {
        let e = expr("df.apply(lambda x: x + 1)");
        match e {
            Expr::Call { args, .. } => match &args[0] {
                Expr::Lambda { params, body } => {
                    assert_eq!(params, &vec!["x".to_string()]);
                    assert!(matches!(**body, Expr::Binary { .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ternary_expression() {
        let e = expr("1 if x > 0 else 2");
        assert!(matches!(e, Expr::IfExp { .. }));
    }

    #[test]
    fn dict_and_list_literals() {
        let e = expr("{'a': 'sum', 'b': 'mean'}");
        match e {
            Expr::Dict(items) => assert_eq!(items.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        let e = expr("[1, 2, 3]");
        assert_eq!(
            e,
            Expr::List(vec![Expr::Int(1), Expr::Int(2), Expr::Int(3)])
        );
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(expr("-3"), Expr::Int(-3));
        assert_eq!(expr("-2.5"), Expr::Float(-2.5));
    }

    #[test]
    fn multiline_call_with_comments() {
        let src = r#"
res = df.merge(  # join
    other,
    left_on='a',
    right_on='b',
)
"#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.stmts.len(), 1);
    }

    #[test]
    fn subscript_assignment_statement() {
        let m = parse_module("df['c'] = df['a'] + df['b']\n").unwrap();
        match &m.stmts[0] {
            Stmt::Assign { target, .. } => assert!(matches!(target, Expr::Subscript { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn imports_become_pass() {
        let m = parse_module("import numpy as np\nfrom pandas import DataFrame\nx = 1\n").unwrap();
        assert_eq!(m.stmts.len(), 3);
        assert!(matches!(m.stmts[0], Stmt::Pass));
        assert!(matches!(m.stmts[1], Stmt::Pass));
    }

    #[test]
    fn starred_args() {
        let e = expr("f(*cols)");
        match e {
            Expr::Call { args, .. } => assert!(matches!(args[0], Expr::Starred(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tuple_subscript_fancy_indexing() {
        let e = expr("m[rows, 1]");
        match e {
            Expr::Subscript { index, .. } => match *index {
                Expr::Tuple(items) => assert_eq!(items.len(), 2),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_module("x = 1\ny = ][\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}
