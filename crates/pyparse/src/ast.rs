//! Abstract syntax tree of the supported Python subset.
//!
//! Node shapes intentionally mirror CPython's `ast` module (`Attribute`,
//! `Subscript`, `Call` with `args`/`keywords`, ...) so the translation rules
//! in `pytond-translate` read like the paper's.

use std::fmt;

/// A parsed source file: a sequence of top-level statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Top-level statements (function definitions and straight-line code).
    pub stmts: Vec<Stmt>,
}

impl Module {
    /// Finds a function definition by name.
    pub fn function(&self, name: &str) -> Option<&FuncDef> {
        self.stmts.iter().find_map(|s| match s {
            Stmt::FuncDef(f) if f.name == name => Some(f),
            _ => None,
        })
    }

    /// All function definitions carrying a decorator called `deco`.
    pub fn decorated_functions(&self, deco: &str) -> Vec<&FuncDef> {
        self.stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::FuncDef(f) if f.decorators.iter().any(|d| d.name == deco) => Some(f),
                _ => None,
            })
            .collect()
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `def name(params): body` with optional decorators.
    FuncDef(FuncDef),
    /// `target = value` (target is a name, attribute, or subscript).
    Assign {
        /// Assignment target.
        target: Expr,
        /// Right-hand side.
        value: Expr,
    },
    /// `target op= value`.
    AugAssign {
        /// Assignment target.
        target: Expr,
        /// The augmenting operator (`+=` → `Add`, ...).
        op: BinOp,
        /// Right-hand side.
        value: Expr,
    },
    /// A bare expression statement.
    Expr(Expr),
    /// `return [value]`.
    Return(Option<Expr>),
    /// `pass`.
    Pass,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Positional parameter names.
    pub params: Vec<String>,
    /// Decorators, outermost first.
    pub decorators: Vec<Decorator>,
    /// Straight-line body.
    pub body: Vec<Stmt>,
}

/// A decorator application: `@name` or `@name(args, kw=...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decorator {
    /// Decorator name (dotted names are joined with `.`).
    pub name: String,
    /// Positional arguments.
    pub args: Vec<Expr>,
    /// Keyword arguments.
    pub kwargs: Vec<(String, Expr)>,
}

impl Decorator {
    /// Looks up a keyword argument by name.
    pub fn kwarg(&self, name: &str) -> Option<&Expr> {
        self.kwargs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Identifier.
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `True` / `False`.
    Bool(bool),
    /// `None`.
    NoneLit,
    /// `value.attr`.
    Attribute {
        /// The object.
        value: Box<Expr>,
        /// The attribute name.
        attr: String,
    },
    /// `value[index]`.
    Subscript {
        /// The subscripted object.
        value: Box<Expr>,
        /// The index expression (may be a [`Expr::Slice`] or tuple).
        index: Box<Expr>,
    },
    /// `lower:upper:step` inside a subscript.
    Slice {
        /// Lower bound.
        lower: Option<Box<Expr>>,
        /// Upper bound.
        upper: Option<Box<Expr>>,
        /// Step.
        step: Option<Box<Expr>>,
    },
    /// `func(args, kw=...)`.
    Call {
        /// Callee expression.
        func: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Keyword arguments.
        kwargs: Vec<(String, Expr)>,
    },
    /// `[a, b, ...]`.
    List(Vec<Expr>),
    /// `(a, b, ...)`.
    Tuple(Vec<Expr>),
    /// `{k: v, ...}`.
    Dict(Vec<(Expr, Expr)>),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation (arithmetic, bitwise-mask, or `and`/`or`).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A single comparison (chains are desugared to `and` of pairs).
    Compare {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `body if test else orelse`.
    IfExp {
        /// Condition.
        test: Box<Expr>,
        /// Value when true.
        body: Box<Expr>,
        /// Value when false.
        orelse: Box<Expr>,
    },
    /// `lambda params: body`.
    Lambda {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
    },
    /// `*value` in a call argument list (e.g. `f(*args)`).
    Starred(Box<Expr>),
}

impl Expr {
    /// Convenience: the string when this is a string literal.
    pub fn as_str_lit(&self) -> Option<&str> {
        match self {
            Expr::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience: the identifier when this is a plain name.
    pub fn as_name(&self) -> Option<&str> {
        match self {
            Expr::Name(n) => Some(n),
            _ => None,
        }
    }

    /// Flattens a dotted attribute chain to `a.b.c` when the base is a name.
    pub fn dotted_name(&self) -> Option<String> {
        match self {
            Expr::Name(n) => Some(n.clone()),
            Expr::Attribute { value, attr } => {
                value.dotted_name().map(|base| format!("{base}.{attr}"))
            }
            _ => None,
        }
    }
}

/// Binary operators, including the boolean-mask bitwise family and the
/// short-circuit keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `//`
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `&` (element-wise AND on masks)
    BitAnd,
    /// `|` (element-wise OR on masks)
    BitOr,
    /// `^`
    BitXor,
    /// `and`
    And,
    /// `or`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `+`
    Pos,
    /// `not`
    Not,
    /// `~` (element-wise NOT on masks)
    Invert,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `in`
    In,
    /// `not in`
    NotIn,
    /// `is`
    Is,
    /// `is not`
    IsNot,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::In => "in",
            CmpOp::NotIn => "not in",
            CmpOp::Is => "is",
            CmpOp::IsNot => "is not",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotted_name_flattening() {
        let e = Expr::Attribute {
            value: Box::new(Expr::Attribute {
                value: Box::new(Expr::Name("np".into())),
                attr: "linalg".into(),
            }),
            attr: "norm".into(),
        };
        assert_eq!(e.dotted_name().unwrap(), "np.linalg.norm");
        let call = Expr::Call {
            func: Box::new(e),
            args: vec![],
            kwargs: vec![],
        };
        assert_eq!(call.dotted_name(), None);
    }

    #[test]
    fn module_function_lookup() {
        let m = Module {
            stmts: vec![Stmt::FuncDef(FuncDef {
                name: "q".into(),
                params: vec![],
                decorators: vec![Decorator {
                    name: "pytond".into(),
                    args: vec![],
                    kwargs: vec![("layout".into(), Expr::Str("dense".into()))],
                }],
                body: vec![Stmt::Pass],
            })],
        };
        assert!(m.function("q").is_some());
        assert_eq!(m.decorated_functions("pytond").len(), 1);
        let d = &m.function("q").unwrap().decorators[0];
        assert_eq!(d.kwarg("layout").unwrap().as_str_lit(), Some("dense"));
    }
}
