//! Python-subset front-end for PyTond.
//!
//! PyTond consumes the abstract syntax tree of functions decorated with
//! `@pytond` (paper, Section III-B). In the original system that AST comes
//! from CPython's `ast` module; here we implement a self-contained lexer and
//! recursive-descent parser for the Python subset that Pandas/NumPy
//! data-science pipelines use:
//!
//! * module-level (optionally decorated) function definitions,
//! * straight-line bodies of assignments / expression statements / `return`,
//! * the full Python expression grammar down to lambdas, conditional
//!   expressions, boolean-mask operators (`&`, `|`, `~`), comparisons
//!   (including `in`/`not in` and chained comparisons), subscripts, slices,
//!   attribute access, calls with keyword arguments, and the literal forms
//!   (numbers, strings, lists, tuples, dicts, `True`/`False`/`None`).
//!
//! Indentation, comments and implicit line-joining inside brackets follow the
//! CPython tokenizer rules.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{BinOp, CmpOp, Decorator, Expr, FuncDef, Module, Stmt, UnaryOp};
pub use parser::parse_module;
