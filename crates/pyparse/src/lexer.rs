//! CPython-style tokenizer for the supported subset.
//!
//! Produces a token stream with explicit `Newline`, `Indent` and `Dedent`
//! tokens. Inside `()`/`[]`/`{}` newlines are ignored (implicit line
//! joining), as are backslash-continued lines. `#` comments run to end of
//! line. String literals support single/double quotes and `''' / \"\"\"`
//! triple-quoted forms with the common escape sequences.

use pytond_common::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are recognized by the parser).
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped content).
    Str(String),
    /// Any operator or delimiter, stored canonically (`"=="`, `"("`, ...).
    Op(&'static str),
    /// Logical end of line.
    Newline,
    /// Indentation increased.
    Indent,
    /// Indentation decreased (one token per level closed).
    Dedent,
    /// End of input.
    Eof,
}

/// A token plus its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// All multi-character operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "**=", "//=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "->", "**", "//", "<<", ">>", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "@=", "(", ")", "[", "]", "{", "}", ",", ":", ".",
    ";", "@", "=", "+", "-", "*", "/", "%", "&", "|", "^", "~", "<", ">",
];

/// Tokenizes `src`, returning the token stream ending in `Eof`.
pub fn tokenize(src: &str) -> Result<Vec<SpannedTok>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    paren_depth: usize,
    indents: Vec<usize>,
    toks: Vec<SpannedTok>,
    at_line_start: bool,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            paren_depth: 0,
            indents: vec![0],
            toks: Vec::new(),
            at_line_start: true,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok) {
        self.toks.push(SpannedTok {
            tok,
            line: self.line,
        });
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse(format!("line {}: {}", self.line, msg.into()))
    }

    fn run(mut self) -> Result<Vec<SpannedTok>> {
        loop {
            if self.at_line_start && self.paren_depth == 0 {
                if !self.handle_indentation()? {
                    break; // EOF reached while scanning indentation
                }
                self.at_line_start = false;
            }
            let Some(c) = self.peek() else { break };
            match c {
                b' ' | b'\t' | b'\r' => {
                    self.bump();
                }
                b'#' => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'\\' if self.peek2() == Some(b'\n') => {
                    self.bump();
                    self.bump();
                }
                b'\n' => {
                    self.bump();
                    if self.paren_depth == 0 {
                        // Collapse blank lines: only emit Newline after real tokens.
                        if matches!(
                            self.toks.last().map(|t| &t.tok),
                            Some(Tok::Newline) | Some(Tok::Indent) | Some(Tok::Dedent) | None
                        ) {
                            // skip
                        } else {
                            self.push(Tok::Newline);
                        }
                        self.at_line_start = true;
                    }
                }
                b'\'' | b'"' => self.lex_string()?,
                b'0'..=b'9' => self.lex_number()?,
                b'.' if matches!(self.peek2(), Some(b'0'..=b'9')) => self.lex_number()?,
                c if c.is_ascii_alphabetic() || c == b'_' => self.lex_name(),
                _ => self.lex_operator()?,
            }
        }
        // Close the final line and any open indentation.
        if !matches!(
            self.toks.last().map(|t| &t.tok),
            Some(Tok::Newline) | Some(Tok::Dedent) | None
        ) {
            self.push(Tok::Newline);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.push(Tok::Dedent);
        }
        self.push(Tok::Eof);
        Ok(self.toks)
    }

    /// Measures leading whitespace, emitting Indent/Dedent. Returns false at EOF.
    fn handle_indentation(&mut self) -> Result<bool> {
        loop {
            let start = self.pos;
            let mut width = 0usize;
            while let Some(c) = self.peek() {
                match c {
                    b' ' => {
                        width += 1;
                        self.bump();
                    }
                    b'\t' => {
                        width += 8 - width % 8;
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                None => return Ok(false),
                Some(b'\n') => {
                    self.bump(); // blank line: ignore
                    continue;
                }
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                    continue;
                }
                Some(_) => {
                    let _ = start;
                    let current = *self.indents.last().unwrap();
                    if width > current {
                        self.indents.push(width);
                        self.push(Tok::Indent);
                    } else if width < current {
                        while *self.indents.last().unwrap() > width {
                            self.indents.pop();
                            self.push(Tok::Dedent);
                        }
                        if *self.indents.last().unwrap() != width {
                            return Err(self.err("inconsistent dedent"));
                        }
                    }
                    return Ok(true);
                }
            }
        }
    }

    fn lex_name(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii ident")
            .to_string();
        self.push(Tok::Name(s));
    }

    fn lex_number(&mut self) -> Result<()> {
        let start = self.pos;
        let mut is_float = false;
        // Hex/octal/binary integer prefixes.
        if self.peek() == Some(b'0')
            && matches!(self.peek2(), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.bump();
            let base_char = self.bump().unwrap();
            let base = match base_char {
                b'x' | b'X' => 16,
                b'o' | b'O' => 8,
                _ => 2,
            };
            let digs = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let text: String = std::str::from_utf8(&self.src[digs..self.pos])
                .unwrap()
                .chars()
                .filter(|&c| c != '_')
                .collect();
            let v = i64::from_str_radix(&text, base)
                .map_err(|_| self.err(format!("bad integer literal '{text}'")))?;
            self.push(Tok::Int(v));
            return Ok(());
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' | b'_' => {
                    self.bump();
                }
                b'.' if !is_float && matches!(self.peek2(), Some(b'0'..=b'9') | None)
                    || c == b'.'
                        && !is_float
                        && !matches!(
                            self.peek2(),
                            Some(b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'.')
                        ) =>
                {
                    is_float = true;
                    self.bump();
                }
                b'e' | b'E' => {
                    // exponent only if followed by digit or sign+digit
                    let next = self.peek2();
                    let after_sign = self.src.get(self.pos + 2).copied();
                    let valid = matches!(next, Some(b'0'..=b'9'))
                        || (matches!(next, Some(b'+' | b'-'))
                            && matches!(after_sign, Some(b'0'..=b'9')));
                    if valid {
                        is_float = true;
                        self.bump(); // e
                        if matches!(self.peek(), Some(b'+' | b'-')) {
                            self.bump();
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .chars()
            .filter(|&c| c != '_')
            .collect();
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(format!("bad float literal '{text}'")))?;
            self.push(Tok::Float(v));
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err(format!("bad integer literal '{text}'")))?;
            self.push(Tok::Int(v));
        }
        Ok(())
    }

    fn lex_string(&mut self) -> Result<()> {
        let quote = self.bump().unwrap();
        let triple = self.peek() == Some(quote) && self.peek2() == Some(quote);
        if triple {
            self.bump();
            self.bump();
        }
        let mut out = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.err("unterminated string literal"));
            };
            if c == b'\\' {
                let Some(esc) = self.bump() else {
                    return Err(self.err("unterminated escape"));
                };
                match esc {
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'\\' => out.push('\\'),
                    b'\'' => out.push('\''),
                    b'"' => out.push('"'),
                    b'0' => out.push('\0'),
                    b'\n' => {} // line continuation inside string
                    other => {
                        out.push('\\');
                        out.push(other as char);
                    }
                }
            } else if c == quote {
                if triple {
                    if self.peek() == Some(quote) && self.peek2() == Some(quote) {
                        self.bump();
                        self.bump();
                        break;
                    }
                    out.push(quote as char);
                } else {
                    break;
                }
            } else if c == b'\n' && !triple {
                return Err(self.err("newline in string literal"));
            } else {
                // Collect full UTF-8 sequences byte-wise.
                out.push(c as char);
            }
        }
        self.push(Tok::Str(out));
        Ok(())
    }

    fn lex_operator(&mut self) -> Result<()> {
        let rest = &self.src[self.pos..];
        for op in OPERATORS {
            if rest.starts_with(op.as_bytes()) {
                for _ in 0..op.len() {
                    self.bump();
                }
                match *op {
                    "(" | "[" | "{" => self.paren_depth += 1,
                    ")" | "]" | "}" => {
                        self.paren_depth = self.paren_depth.saturating_sub(1);
                    }
                    _ => {}
                }
                self.push(Tok::Op(op));
                return Ok(());
            }
        }
        Err(self.err(format!(
            "unexpected character '{}'",
            self.peek().map(|c| c as char).unwrap_or('?')
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            toks("x = 1\n"),
            vec![
                Tok::Name("x".into()),
                Tok::Op("="),
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 1e3 0x10 1_000 .5"),
            vec![
                Tok::Int(1),
                Tok::Float(2.5),
                Tok::Float(1000.0),
                Tok::Int(16),
                Tok::Int(1000),
                Tok::Float(0.5),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn method_call_on_int_like_attr_not_float() {
        // `df.head` after a number-ish context: "x.sum()" must not lex `.sum` as float.
        assert_eq!(
            toks("x.sum()"),
            vec![
                Tok::Name("x".into()),
                Tok::Op("."),
                Tok::Name("sum".into()),
                Tok::Op("("),
                Tok::Op(")"),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_quotes() {
        assert_eq!(
            toks(r#"'a\'b' "c\nd""#),
            vec![
                Tok::Str("a'b".into()),
                Tok::Str("c\nd".into()),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn triple_quoted_string_spans_lines() {
        assert_eq!(
            toks("s = '''a\nb'''\n"),
            vec![
                Tok::Name("s".into()),
                Tok::Op("="),
                Tok::Str("a\nb".into()),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn implicit_line_joining_in_brackets() {
        let t = toks("f(a,\n  b)\n");
        assert!(!t
            .iter()
            .take(t.len() - 2)
            .any(|t| matches!(t, Tok::Newline | Tok::Indent)));
    }

    #[test]
    fn indentation_blocks() {
        let t = toks("def f():\n    x = 1\n    y = 2\nz = 3\n");
        let indents = t.iter().filter(|t| matches!(t, Tok::Indent)).count();
        let dedents = t.iter().filter(|t| matches!(t, Tok::Dedent)).count();
        assert_eq!(indents, 1);
        assert_eq!(dedents, 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let t = toks("# header\n\nx = 1  # trailing\n\n\ny = 2\n");
        let names: Vec<_> = t
            .iter()
            .filter_map(|t| match t {
                Tok::Name(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["x", "y"]);
        let newlines = t.iter().filter(|t| matches!(t, Tok::Newline)).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn operators_maximal_munch() {
        assert_eq!(
            toks("a ** b // c == d"),
            vec![
                Tok::Name("a".into()),
                Tok::Op("**"),
                Tok::Name("b".into()),
                Tok::Op("//"),
                Tok::Name("c".into()),
                Tok::Op("=="),
                Tok::Name("d".into()),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn dedent_multiple_levels() {
        let t = toks("def f():\n  if_x = 1\n  def g():\n    y = 2\nz = 1\n");
        let dedents = t.iter().filter(|t| matches!(t, Tok::Dedent)).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn backslash_continuation() {
        let t = toks("x = 1 + \\\n    2\n");
        let newlines = t.iter().filter(|t| matches!(t, Tok::Newline)).count();
        assert_eq!(newlines, 1);
    }
}
