//! `df1.merge(df2, how, on)` — the Pandas join, including the implicit
//! `_x`/`_y` renaming rules described in Section III-C of the paper.

use crate::dataframe::DataFrame;
use crate::series::Series;
use pytond_common::hash::{opt_keys, FixedKeySpec, KeyArena, KeyWidth, PartitionedIndex};
use pytond_common::{pool, Column, Error, Result};
use std::hash::Hash;

/// Rows per probe morsel (matches the engine's default morsel).
const PROBE_MORSEL: usize = 16 * 1024;

/// Join kinds accepted by the `how` argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinHow {
    /// Matching rows only (the Pandas default).
    Inner,
    /// All left rows; unmatched right columns become null.
    Left,
    /// All right rows; unmatched left columns become null.
    Right,
    /// Union of left and right matches.
    Outer,
    /// Cartesian product (`how='cross'`; no keys).
    Cross,
}

impl JoinHow {
    /// Parses the Pandas spelling.
    pub fn parse(name: &str) -> Result<JoinHow> {
        match name {
            "inner" => Ok(JoinHow::Inner),
            "left" => Ok(JoinHow::Left),
            "right" => Ok(JoinHow::Right),
            "outer" | "full" => Ok(JoinHow::Outer),
            "cross" => Ok(JoinHow::Cross),
            other => Err(Error::Data(format!("unknown join type '{other}'"))),
        }
    }
}

/// Hash join with Pandas output-column semantics:
///
/// * when `left_on == right_on` for a key pair, the key appears **once**
///   under its original name;
/// * any other column name shared by both inputs is suffixed (`_x` for the
///   left, `_y` for the right — or the caller's `suffixes`).
pub fn merge(
    left: &DataFrame,
    right: &DataFrame,
    how: JoinHow,
    left_on: &[&str],
    right_on: &[&str],
    suffixes: (&str, &str),
) -> Result<DataFrame> {
    if how == JoinHow::Cross {
        return cross_join(left, right, suffixes);
    }
    if left_on.len() != right_on.len() || left_on.is_empty() {
        return Err(Error::Data("merge requires matching key lists".into()));
    }
    for k in left_on {
        left.col(k)?;
    }
    for k in right_on {
        right.col(k)?;
    }

    // Same key machinery as the SQL engine (the fairness rule): fixed-width
    // keys pack into machine words, anything else arena-encodes into borrowed
    // byte slices — either way, build and probe never clone a key. NULL keys
    // never match (SQL/Pandas semantics). Pandas equality is type-sensitive
    // (Int never equals Date), so the packed path — whose slot unification
    // would equate them — only applies when each key position carries the
    // same dtype on both sides; the byte encoding stays raw (type-tagged).
    let left_keys: Vec<&Series> = left_on.iter().map(|k| left.col(k).unwrap()).collect();
    let right_keys: Vec<&Series> = right_on.iter().map(|k| right.col(k).unwrap()).collect();
    let lcols: Vec<&Column> = left_keys.iter().map(|s| &s.col).collect();
    let rcols: Vec<&Column> = right_keys.iter().map(|s| &s.col).collect();
    let same_dtypes = lcols
        .iter()
        .zip(&rcols)
        .all(|(l, r)| l.dtype() == r.dtype());
    let plan = if same_dtypes {
        FixedKeySpec::plan(&[&lcols, &rcols], false)
    } else {
        None
    };
    let (left_idx, right_idx) = match plan {
        Some(spec) if spec.width() == KeyWidth::U64 => probe_indices(
            &opt_keys(spec.pack_u64(&lcols)),
            &opt_keys(spec.pack_u64(&rcols)),
            how,
        ),
        Some(spec) => probe_indices(
            &opt_keys(spec.pack_u128(&lcols)),
            &opt_keys(spec.pack_u128(&rcols)),
            how,
        ),
        None => {
            let la = KeyArena::encode_raw(&lcols, true);
            let ra = KeyArena::encode_raw(&rcols, true);
            probe_indices(&la.keys(), &ra.keys(), how)
        }
    };

    assemble(
        left, right, &left_idx, &right_idx, left_on, right_on, suffixes,
    )
}

/// Hash build (right) + ordered probe (left) over precomputed per-row keys;
/// `None` keys never match.
///
/// Reuses the engine's machinery on large inputs: the build side partitions
/// by key hash and builds concurrently ([`PartitionedIndex`]), the probe
/// side claims morsels from the shared pool and match lists stitch in
/// morsel order — the output pairing is byte-for-byte the serial one at
/// every thread count.
#[allow(clippy::type_complexity)]
fn probe_indices<K: Hash + Eq + Copy + Send + Sync>(
    lkeys: &[Option<K>],
    rkeys: &[Option<K>],
    how: JoinHow,
) -> (Vec<Option<usize>>, Vec<Option<usize>>) {
    let threads = if lkeys.len().max(rkeys.len()) >= crate::groupby::PARALLEL_MIN_ROWS {
        pool::default_threads()
    } else {
        1
    };
    probe_indices_with(lkeys, rkeys, how, threads)
}

/// [`probe_indices`] at an explicit worker count (the testable core).
#[allow(clippy::type_complexity)]
fn probe_indices_with<K: Hash + Eq + Copy + Send + Sync>(
    lkeys: &[Option<K>],
    rkeys: &[Option<K>],
    how: JoinHow,
    threads: usize,
) -> (Vec<Option<usize>>, Vec<Option<usize>>) {
    let table = PartitionedIndex::build(rkeys, threads);
    let keep_unmatched_left = matches!(how, JoinHow::Left | JoinHow::Outer);
    if threads <= 1 {
        // Serial probe: push straight into the output vectors.
        let mut left_idx: Vec<Option<usize>> = Vec::new();
        let mut right_idx: Vec<Option<usize>> = Vec::new();
        let mut right_matched = vec![false; rkeys.len()];
        for (i, k) in lkeys.iter().enumerate() {
            match k.as_ref().and_then(|k| table.get(k)) {
                Some(rows) => {
                    for &r in rows {
                        left_idx.push(Some(i));
                        right_idx.push(Some(r as usize));
                        right_matched[r as usize] = true;
                    }
                }
                None => {
                    if keep_unmatched_left {
                        left_idx.push(Some(i));
                        right_idx.push(None);
                    }
                }
            }
        }
        append_unmatched_right(&mut left_idx, &mut right_idx, &right_matched, how);
        return (left_idx, right_idx);
    }
    let chunks = pool::par_morsels(
        threads,
        lkeys.len(),
        PROBE_MORSEL,
        "frame-join-probe",
        |_, range| {
            let mut li: Vec<Option<usize>> = Vec::new();
            let mut ri: Vec<Option<usize>> = Vec::new();
            let mut matched: Vec<u32> = Vec::new();
            for i in range {
                match lkeys[i].as_ref().and_then(|k| table.get(k)) {
                    Some(rows) => {
                        for &r in rows {
                            li.push(Some(i));
                            ri.push(Some(r as usize));
                            matched.push(r);
                        }
                    }
                    None => {
                        if keep_unmatched_left {
                            li.push(Some(i));
                            ri.push(None);
                        }
                    }
                }
            }
            Ok((li, ri, matched))
        },
    )
    .expect("probe is infallible");
    let mut left_idx: Vec<Option<usize>> = Vec::new();
    let mut right_idx: Vec<Option<usize>> = Vec::new();
    let mut right_matched = vec![false; rkeys.len()];
    for (li, ri, matched) in chunks.results {
        left_idx.extend(li);
        right_idx.extend(ri);
        for r in matched {
            right_matched[r as usize] = true;
        }
    }
    append_unmatched_right(&mut left_idx, &mut right_idx, &right_matched, how);
    (left_idx, right_idx)
}

/// RIGHT/OUTER tail: unmatched right rows appended in right-row order.
fn append_unmatched_right(
    left_idx: &mut Vec<Option<usize>>,
    right_idx: &mut Vec<Option<usize>>,
    right_matched: &[bool],
    how: JoinHow,
) {
    if matches!(how, JoinHow::Right | JoinHow::Outer) {
        for (r, matched) in right_matched.iter().enumerate() {
            if !matched {
                left_idx.push(None);
                right_idx.push(Some(r));
            }
        }
    }
}

fn cross_join(left: &DataFrame, right: &DataFrame, suffixes: (&str, &str)) -> Result<DataFrame> {
    let mut left_idx = Vec::with_capacity(left.num_rows() * right.num_rows());
    let mut right_idx = Vec::with_capacity(left.num_rows() * right.num_rows());
    for i in 0..left.num_rows() {
        for j in 0..right.num_rows() {
            left_idx.push(Some(i));
            right_idx.push(Some(j));
        }
    }
    assemble(left, right, &left_idx, &right_idx, &[], &[], suffixes)
}

fn assemble(
    left: &DataFrame,
    right: &DataFrame,
    left_idx: &[Option<usize>],
    right_idx: &[Option<usize>],
    left_on: &[&str],
    right_on: &[&str],
    suffixes: (&str, &str),
) -> Result<DataFrame> {
    // Key pairs with identical names are merged into a single output column.
    let merged_keys: Vec<&str> = left_on
        .iter()
        .zip(right_on)
        .filter(|(l, r)| l == r)
        .map(|(l, _)| *l)
        .collect();
    let mut out = DataFrame::new();
    for s in left.series() {
        let name = if merged_keys.contains(&s.name.as_str()) {
            s.name.clone()
        } else if right.col(&s.name).is_ok() {
            format!("{}{}", s.name, suffixes.0)
        } else {
            s.name.clone()
        };
        let mut col = s.col.gather_opt(left_idx);
        // For merged key columns, fill left-nulls (right-only rows) from the right.
        if merged_keys.contains(&s.name.as_str()) {
            let rk = right.col(&s.name)?;
            for (pos, (li, ri)) in left_idx.iter().zip(right_idx).enumerate() {
                if li.is_none() {
                    if let Some(r) = ri {
                        // rebuild affected cell: gather produced null there
                        let mut vals: Vec<pytond_common::Value> =
                            (0..col.len()).map(|i| col.get(i)).collect();
                        vals[pos] = rk.get(*r);
                        col = pytond_common::Column::from_values(&vals)?;
                    }
                }
            }
        }
        out.insert(Series::new(name, col))?;
    }
    for s in right.series() {
        if merged_keys.contains(&s.name.as_str()) {
            continue;
        }
        let name = if left.col(&s.name).is_ok() {
            format!("{}{}", s.name, suffixes.1)
        } else {
            s.name.clone()
        };
        out.insert(Series::new(name, s.col.gather_opt(right_idx)))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_common::{Column, Value};

    fn left() -> DataFrame {
        DataFrame::from_cols(vec![
            ("id", Column::from_i64(vec![1, 2, 3])),
            ("v", Column::from_strs(&["a", "b", "c"])),
        ])
        .unwrap()
    }

    fn right() -> DataFrame {
        DataFrame::from_cols(vec![
            ("id", Column::from_i64(vec![2, 3, 4])),
            ("w", Column::from_i64(vec![20, 30, 40])),
        ])
        .unwrap()
    }

    #[test]
    fn inner_join_on_shared_name_keeps_one_key() {
        let j = merge(
            &left(),
            &right(),
            JoinHow::Inner,
            &["id"],
            &["id"],
            ("_x", "_y"),
        )
        .unwrap();
        assert_eq!(j.columns(), vec!["id", "v", "w"]);
        assert_eq!(j.col("id").unwrap().col.as_int(), &[2, 3]);
        assert_eq!(j.col("w").unwrap().col.as_int(), &[20, 30]);
    }

    #[test]
    fn left_join_fills_nulls() {
        let j = merge(
            &left(),
            &right(),
            JoinHow::Left,
            &["id"],
            &["id"],
            ("_x", "_y"),
        )
        .unwrap();
        assert_eq!(j.num_rows(), 3);
        assert_eq!(j.col("w").unwrap().get(0), Value::Null);
        assert_eq!(j.col("w").unwrap().get(1), Value::Int(20));
    }

    #[test]
    fn right_join_mirrors() {
        let j = merge(
            &left(),
            &right(),
            JoinHow::Right,
            &["id"],
            &["id"],
            ("_x", "_y"),
        )
        .unwrap();
        assert_eq!(j.num_rows(), 3);
        // unmatched right row id=4 appears with null v but key filled
        let ids: Vec<Value> = (0..3).map(|i| j.col("id").unwrap().get(i)).collect();
        assert!(ids.contains(&Value::Int(4)));
        let pos = ids.iter().position(|v| *v == Value::Int(4)).unwrap();
        assert_eq!(j.col("v").unwrap().get(pos), Value::Null);
    }

    #[test]
    fn outer_join_is_union() {
        let j = merge(
            &left(),
            &right(),
            JoinHow::Outer,
            &["id"],
            &["id"],
            ("_x", "_y"),
        )
        .unwrap();
        assert_eq!(j.num_rows(), 4);
    }

    #[test]
    fn overlapping_non_key_columns_get_suffixes() {
        // Paper example: df1 [a,b,c] merge df2 [a,c,d] on a → [a, b, c_x, c_y, d]
        let df1 = DataFrame::from_cols(vec![
            ("a", Column::from_i64(vec![1])),
            ("b", Column::from_i64(vec![2])),
            ("c", Column::from_i64(vec![3])),
        ])
        .unwrap();
        let df2 = DataFrame::from_cols(vec![
            ("a", Column::from_i64(vec![1])),
            ("c", Column::from_i64(vec![30])),
            ("d", Column::from_i64(vec![4])),
        ])
        .unwrap();
        let j = merge(&df1, &df2, JoinHow::Inner, &["a"], &["a"], ("_x", "_y")).unwrap();
        assert_eq!(j.columns(), vec!["a", "b", "c_x", "c_y", "d"]);
    }

    #[test]
    fn different_key_names_keep_both() {
        let df1 = DataFrame::from_cols(vec![("a", Column::from_i64(vec![1, 2]))]).unwrap();
        let df2 = DataFrame::from_cols(vec![("x", Column::from_i64(vec![2, 3]))]).unwrap();
        let j = merge(&df1, &df2, JoinHow::Inner, &["a"], &["x"], ("_x", "_y")).unwrap();
        assert_eq!(j.columns(), vec!["a", "x"]);
        assert_eq!(j.num_rows(), 1);
    }

    #[test]
    fn cross_join_sizes() {
        let j = merge(&left(), &right(), JoinHow::Cross, &[], &[], ("_x", "_y")).unwrap();
        assert_eq!(j.num_rows(), 9);
        assert_eq!(j.columns(), vec!["id_x", "v", "id_y", "w"]);
    }

    #[test]
    fn duplicate_right_keys_multiply() {
        let df2 = DataFrame::from_cols(vec![
            ("id", Column::from_i64(vec![2, 2])),
            ("w", Column::from_i64(vec![1, 2])),
        ])
        .unwrap();
        let j = merge(
            &left(),
            &df2,
            JoinHow::Inner,
            &["id"],
            &["id"],
            ("_x", "_y"),
        )
        .unwrap();
        assert_eq!(j.num_rows(), 2);
        assert_eq!(j.col("w").unwrap().col.as_int(), &[1, 2]);
    }

    #[test]
    fn cross_dtype_keys_never_match() {
        // Pandas equality is type-sensitive: Int 5 must not match Date 5
        // (the packed fast path is bypassed for mixed-dtype key positions).
        let df1 = DataFrame::from_cols(vec![("k", Column::from_i64(vec![5, 6]))]).unwrap();
        let df2 = DataFrame::from_cols(vec![("k", Column::from_dates(vec![5, 7]))]).unwrap();
        let j = merge(&df1, &df2, JoinHow::Inner, &["k"], &["k"], ("_x", "_y")).unwrap();
        assert_eq!(j.num_rows(), 0);
        // Same-dtype joins still match (and take the packed path).
        let df3 = DataFrame::from_cols(vec![("k", Column::from_i64(vec![5, 9]))]).unwrap();
        let j2 = merge(&df1, &df3, JoinHow::Inner, &["k"], &["k"], ("_x", "_y")).unwrap();
        assert_eq!(j2.num_rows(), 1);
    }

    /// Parallel probe + partitioned build must reproduce the serial pairing
    /// byte-for-byte — for every join kind, at worker counts that do not
    /// divide the morsel grid, with NULL keys in the mix.
    #[test]
    fn parallel_probe_matches_serial_for_all_join_kinds() {
        let n = 70_000usize;
        let lkeys: Vec<Option<u64>> = (0..n)
            .map(|i| (i % 89 != 0).then_some((i % 3001) as u64))
            .collect();
        let rkeys: Vec<Option<u64>> = (0..n / 2)
            .map(|i| (i % 97 != 0).then_some((i % 4001) as u64))
            .collect();
        for how in [
            JoinHow::Inner,
            JoinHow::Left,
            JoinHow::Right,
            JoinHow::Outer,
        ] {
            let serial = probe_indices_with(&lkeys, &rkeys, how, 1);
            for threads in [2, 7] {
                let par = probe_indices_with(&lkeys, &rkeys, how, threads);
                assert_eq!(serial, par, "{how:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn null_keys_never_match() {
        let mut idc = Column::new(pytond_common::DType::Int);
        idc.push(Value::Int(1)).unwrap();
        idc.push_null();
        let df1 = DataFrame::from_cols(vec![("id", idc)]).unwrap();
        let j = merge(
            &df1,
            &right(),
            JoinHow::Left,
            &["id"],
            &["id"],
            ("_x", "_y"),
        )
        .unwrap();
        assert_eq!(j.num_rows(), 2);
        assert_eq!(j.col("w").unwrap().get(1), Value::Null);
    }
}
