//! The `DataFrame`: Pandas' primary data structure (paper, Section II-A).

use crate::groupby::{AggOp, GroupBy};
use crate::join::{merge, JoinHow};
use crate::pivot::pivot_table;
use crate::series::Series;
use pytond_common::{Column, Error, Relation, Result, Value};

/// A 2-dimensional, column-major, eagerly-evaluated table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataFrame {
    cols: Vec<Series>,
}

impl DataFrame {
    /// Empty frame.
    pub fn new() -> DataFrame {
        DataFrame::default()
    }

    /// Builds from `(name, column)` pairs.
    pub fn from_cols(cols: Vec<(&str, Column)>) -> Result<DataFrame> {
        let mut df = DataFrame::new();
        for (name, col) in cols {
            df.insert(Series::new(name, col))?;
        }
        Ok(df)
    }

    /// Builds from a [`Relation`].
    pub fn from_relation(rel: &Relation) -> DataFrame {
        DataFrame {
            cols: rel
                .columns()
                .iter()
                .map(|(n, c)| Series::new(n.clone(), c.clone()))
                .collect(),
        }
    }

    /// Converts into a [`Relation`].
    pub fn to_relation(&self) -> Relation {
        Relation::new(
            self.cols
                .iter()
                .map(|s| (s.name.clone(), s.col.clone()))
                .collect(),
        )
        .expect("DataFrame invariants imply a valid relation")
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.cols.first().map_or(0, |s| s.len())
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Column labels in order.
    pub fn columns(&self) -> Vec<&str> {
        self.cols.iter().map(|s| s.name.as_str()).collect()
    }

    /// All series in order.
    pub fn series(&self) -> &[Series] {
        &self.cols
    }

    /// Column selection `df[col]` / `df.col`.
    pub fn col(&self, name: &str) -> Result<&Series> {
        self.cols
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| Error::Data(format!("no column '{name}'")))
    }

    /// Adds or replaces a column (`df[name] = series`). Pandas' implicit-join
    /// semantics for frames of equal length: assignment is positional.
    pub fn insert(&mut self, series: Series) -> Result<()> {
        if !self.cols.is_empty() && series.len() != self.num_rows() && self.num_cols() > 0 {
            return Err(Error::Data(format!(
                "column '{}' has {} rows, frame has {}",
                series.name,
                series.len(),
                self.num_rows()
            )));
        }
        if let Some(existing) = self.cols.iter_mut().find(|s| s.name == series.name) {
            *existing = series;
        } else {
            self.cols.push(series);
        }
        Ok(())
    }

    /// `df[[c1, c2, ...]]` — projection.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        for n in names {
            out.insert(self.col(n)?.clone())?;
        }
        Ok(out)
    }

    /// `df.drop(columns=[...])`.
    pub fn drop(&self, names: &[&str]) -> DataFrame {
        DataFrame {
            cols: self
                .cols
                .iter()
                .filter(|s| !names.contains(&s.name.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// `df.rename(columns={from: to})`.
    pub fn rename(&self, mapping: &[(&str, &str)]) -> DataFrame {
        DataFrame {
            cols: self
                .cols
                .iter()
                .map(|s| {
                    let name = mapping
                        .iter()
                        .find(|(f, _)| *f == s.name)
                        .map(|(_, t)| t.to_string())
                        .unwrap_or_else(|| s.name.clone());
                    Series::new(name, s.col.clone())
                })
                .collect(),
        }
    }

    /// `df[mask]` — row filtering; copies every surviving row.
    pub fn filter(&self, mask: &Series) -> Result<DataFrame> {
        let m = match &mask.col {
            Column::Bool(d, _) => d,
            _ => return Err(Error::Data("filter mask must be boolean".into())),
        };
        if m.len() != self.num_rows() {
            return Err(Error::Data("mask length mismatch".into()));
        }
        Ok(DataFrame {
            cols: self
                .cols
                .iter()
                .map(|s| Series::new(s.name.clone(), s.col.filter(m)))
                .collect(),
        })
    }

    /// Row gather by index.
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        DataFrame {
            cols: self
                .cols
                .iter()
                .map(|s| Series::new(s.name.clone(), s.col.gather(indices)))
                .collect(),
        }
    }

    /// `df.head(n)`.
    pub fn head(&self, n: usize) -> DataFrame {
        let indices: Vec<usize> = (0..n.min(self.num_rows())).collect();
        self.take(&indices)
    }

    /// `df.sort_values(by, ascending)` — stable multi-key sort.
    pub fn sort_values(&self, by: &[(&str, bool)]) -> Result<DataFrame> {
        for (k, _) in by {
            self.col(k)?;
        }
        let mut idx: Vec<usize> = (0..self.num_rows()).collect();
        let keys: Vec<(&Series, bool)> = by
            .iter()
            .map(|(k, asc)| (self.col(k).unwrap(), *asc))
            .collect();
        idx.sort_by(|&a, &b| {
            for (s, asc) in &keys {
                let ord = s.get(a).total_cmp(&s.get(b));
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(self.take(&idx))
    }

    /// `df.drop_duplicates()` over all columns, keeping first occurrences.
    pub fn drop_duplicates(&self) -> DataFrame {
        use pytond_common::hash::{distinct_keep, FixedKeySpec, KeyArena, KeyWidth};
        let cols: Vec<&pytond_common::Column> = self.cols.iter().map(|s| &s.col).collect();
        let keep = match FixedKeySpec::plan(&[&cols], true) {
            Some(spec) if spec.width() == KeyWidth::U64 => distinct_keep(&spec.pack_u64(&cols).0),
            Some(spec) => distinct_keep(&spec.pack_u128(&cols).0),
            None => {
                let arena = KeyArena::encode_raw(&cols, false);
                distinct_keep(&arena.dense_keys())
            }
        };
        self.take(&keep)
    }

    /// `df.merge(other, how, left_on, right_on, suffixes)` — see
    /// [`crate::join::merge`] for the implicit `_x`/`_y` renaming rules.
    pub fn merge(
        &self,
        other: &DataFrame,
        how: JoinHow,
        left_on: &[&str],
        right_on: &[&str],
    ) -> Result<DataFrame> {
        merge(self, other, how, left_on, right_on, ("_x", "_y"))
    }

    /// [`DataFrame::merge`] with custom suffixes.
    pub fn merge_suffixes(
        &self,
        other: &DataFrame,
        how: JoinHow,
        left_on: &[&str],
        right_on: &[&str],
        suffixes: (&str, &str),
    ) -> Result<DataFrame> {
        merge(self, other, how, left_on, right_on, suffixes)
    }

    /// `df.groupby(by)` — returns a lazy group-by handle.
    pub fn groupby<'a>(&'a self, by: &[&str]) -> Result<GroupBy<'a>> {
        GroupBy::new(self, by)
    }

    /// `df.pivot_table(index, columns, values, aggfunc)`.
    pub fn pivot_table(
        &self,
        index: &str,
        columns: &str,
        values: &str,
        func: AggOp,
    ) -> Result<DataFrame> {
        pivot_table(self, index, columns, values, func)
    }

    /// `df.aggregate(func)` applied to every column, producing one row.
    pub fn aggregate(&self, func: AggOp) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        for s in &self.cols {
            let v = func.apply_series(s);
            out.insert(Series::new(s.name.clone(), Column::from_values(&[v])?))?;
        }
        Ok(out)
    }

    /// Row-wise apply producing a new series (Pandas `df.apply(f, axis=1)`).
    pub fn apply_rows(
        &self,
        name: &str,
        f: impl Fn(&dyn Fn(&str) -> Value) -> Value,
    ) -> Result<Series> {
        let mut vals = Vec::with_capacity(self.num_rows());
        for i in 0..self.num_rows() {
            let getter = |col: &str| self.col(col).map(|s| s.get(i)).unwrap_or(Value::Null);
            vals.push(f(&getter));
        }
        Ok(Series::new(name, Column::from_values(&vals)?))
    }

    /// `df.col.value_counts()` — frequency table sorted descending.
    pub fn value_counts(&self, col: &str) -> Result<DataFrame> {
        let g = self.groupby(&[col])?;
        let counted = g.agg(&[(col, AggOp::Count, "count")])?;
        counted.sort_values(&[("count", false)])
    }
}

impl std::fmt::Display for DataFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_relation().to_table_string(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::from_cols(vec![
            ("a", Column::from_i64(vec![3, 1, 2, 1])),
            ("b", Column::from_strs(&["x", "y", "z", "w"])),
            ("c", Column::from_f64(vec![1.0, 2.0, 3.0, 4.0])),
        ])
        .unwrap()
    }

    #[test]
    fn selection_and_projection() {
        let d = df();
        assert_eq!(d.col("a").unwrap().get(0), Value::Int(3));
        let p = d.select(&["c", "a"]).unwrap();
        assert_eq!(p.columns(), vec!["c", "a"]);
        assert!(d.select(&["zz"]).is_err());
    }

    #[test]
    fn filtering() {
        let d = df();
        let mask = d.col("a").unwrap().ge_val(&Value::Int(2));
        let f = d.filter(&mask).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(
            f.col("b").unwrap().col.as_str_col(),
            &["x".to_string(), "z".into()]
        );
    }

    #[test]
    fn head_and_sort() {
        let d = df();
        let s = d.sort_values(&[("a", true), ("b", false)]).unwrap();
        assert_eq!(s.col("a").unwrap().col.as_int(), &[1, 1, 2, 3]);
        // ties on a=1 broken by b descending: y before w
        assert_eq!(s.col("b").unwrap().get(0), Value::Str("y".into()));
        assert_eq!(s.head(2).num_rows(), 2);
    }

    #[test]
    fn insert_replaces_existing() {
        let mut d = df();
        d.insert(Series::new("a", Column::from_i64(vec![9, 9, 9, 9])))
            .unwrap();
        assert_eq!(d.num_cols(), 3);
        assert_eq!(d.col("a").unwrap().get(0), Value::Int(9));
        assert!(d
            .insert(Series::new("oops", Column::from_i64(vec![1])))
            .is_err());
    }

    #[test]
    fn drop_and_rename() {
        let d = df().drop(&["b"]);
        assert_eq!(d.columns(), vec!["a", "c"]);
        let r = d.rename(&[("a", "alpha")]);
        assert_eq!(r.columns(), vec!["alpha", "c"]);
    }

    #[test]
    fn drop_duplicates_keeps_first() {
        let d = DataFrame::from_cols(vec![
            ("a", Column::from_i64(vec![1, 2, 1])),
            ("b", Column::from_i64(vec![5, 6, 5])),
        ])
        .unwrap();
        let u = d.drop_duplicates();
        assert_eq!(u.num_rows(), 2);
        assert_eq!(u.col("a").unwrap().col.as_int(), &[1, 2]);
    }

    #[test]
    fn aggregate_all_columns() {
        let d = df().select(&["a", "c"]).unwrap();
        let agg = d.aggregate(AggOp::Sum).unwrap();
        assert_eq!(agg.num_rows(), 1);
        assert_eq!(agg.col("a").unwrap().get(0), Value::Int(7));
        assert_eq!(agg.col("c").unwrap().get(0), Value::Float(10.0));
    }

    #[test]
    fn apply_rows_computes_per_row() {
        let d = df();
        let s = d
            .apply_rows("sum_ac", |get| {
                let a = get("a").as_f64().unwrap();
                let c = get("c").as_f64().unwrap();
                Value::Float(a + c)
            })
            .unwrap();
        assert_eq!(s.col.as_float(), &[4.0, 3.0, 5.0, 5.0]);
    }

    #[test]
    fn value_counts_sorted_desc() {
        let d = df();
        let vc = d.value_counts("a").unwrap();
        assert_eq!(vc.col("count").unwrap().get(0), Value::Int(2));
    }

    #[test]
    fn relation_round_trip() {
        let d = df();
        let r = d.to_relation();
        let d2 = DataFrame::from_relation(&r);
        assert_eq!(d, d2);
    }
}
