//! `df.pivot_table(index, columns, values, aggfunc)` — Section II-A of the
//! paper, including the zero-fill for empty cells shown in its example.

use crate::dataframe::DataFrame;
use crate::groupby::AggOp;
use crate::series::Series;
use pytond_common::{Column, Error, Result, Value};

/// Builds a pivot table: one row per distinct `index` value, one column per
/// distinct `columns` value (in first-appearance order, then sorted for
/// determinism), cells aggregated with `func`, empty cells filled with 0 for
/// `Sum`/`Count` and null otherwise (matching `fill_value=0` in the paper's
/// example).
pub fn pivot_table(
    df: &DataFrame,
    index: &str,
    columns: &str,
    values: &str,
    func: AggOp,
) -> Result<DataFrame> {
    let idx_col = df.col(index)?;
    let col_col = df.col(columns)?;
    let val_col = df.col(values)?;
    let _ = val_col;

    // Distinct column labels, sorted for a deterministic schema.
    let mut labels: Vec<Value> = Vec::new();
    for i in 0..col_col.len() {
        let v = col_col.get(i);
        if !labels.contains(&v) {
            labels.push(v);
        }
    }
    labels.sort_by(|a, b| a.total_cmp(b));

    // Distinct index values, sorted (Pandas sorts the index).
    let mut keys: Vec<Value> = Vec::new();
    for i in 0..idx_col.len() {
        let v = idx_col.get(i);
        if !keys.contains(&v) {
            keys.push(v);
        }
    }
    keys.sort_by(|a, b| a.total_cmp(b));

    // Accumulate cell members.
    let mut cells: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); labels.len()]; keys.len()];
    for i in 0..df.num_rows() {
        let k = idx_col.get(i);
        let l = col_col.get(i);
        let ki = keys.iter().position(|x| *x == k).expect("key present");
        let li = labels.iter().position(|x| *x == l).expect("label present");
        cells[ki][li].push(i);
    }

    let mut out = DataFrame::new();
    out.insert(Series::new(index, Column::from_values(&keys)?))?;
    let fill = match func {
        AggOp::Sum | AggOp::Count | AggOp::NUnique => Value::Int(0),
        _ => Value::Null,
    };
    let src = df.col(values)?;
    for (li, label) in labels.iter().enumerate() {
        let name = match label {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        };
        let mut vals = Vec::with_capacity(keys.len());
        for row in cells.iter() {
            let members = &row[li];
            if members.is_empty() {
                vals.push(fill.clone());
            } else {
                let sub = Series::new("", src.col.gather(members));
                vals.push(func.apply_series(&sub));
            }
        }
        out.insert(Series::new(name, Column::from_values(&vals)?))
            .map_err(|e| Error::Data(format!("pivot column clash: {}", e.message())))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact example from Section II-A of the paper.
    #[test]
    fn paper_example() {
        let df = DataFrame::from_cols(vec![
            ("a", Column::from_strs(&["x", "y", "y", "z", "y", "x", "z"])),
            (
                "b",
                Column::from_strs(&["v1", "v3", "v1", "v2", "v3", "v2", "v2"]),
            ),
            ("c", Column::from_i64(vec![10, 30, 60, 20, 40, 60, 50])),
        ])
        .unwrap();
        let p = pivot_table(&df, "a", "b", "c", AggOp::Sum).unwrap();
        assert_eq!(p.columns(), vec!["a", "v1", "v2", "v3"]);
        assert_eq!(
            p.col("a").unwrap().col.as_str_col(),
            &["x".to_string(), "y".into(), "z".into()]
        );
        let get = |r: usize, c: &str| p.col(c).unwrap().get(r);
        // x: v1=10 v2=60 v3=0 ; y: v1=60 v2=0 v3=70 ; z: v1=0 v2=70 v3=0
        assert_eq!(get(0, "v1"), Value::Int(10));
        assert_eq!(get(0, "v2"), Value::Int(60));
        assert_eq!(get(0, "v3"), Value::Int(0));
        assert_eq!(get(1, "v1"), Value::Int(60));
        assert_eq!(get(1, "v2"), Value::Int(0));
        assert_eq!(get(1, "v3"), Value::Int(70));
        assert_eq!(get(2, "v1"), Value::Int(0));
        assert_eq!(get(2, "v2"), Value::Int(70));
        assert_eq!(get(2, "v3"), Value::Int(0));
    }

    #[test]
    fn mean_fills_with_null() {
        let df = DataFrame::from_cols(vec![
            ("a", Column::from_strs(&["x", "y"])),
            ("b", Column::from_strs(&["p", "q"])),
            ("c", Column::from_i64(vec![4, 6])),
        ])
        .unwrap();
        let p = pivot_table(&df, "a", "b", "c", AggOp::Mean).unwrap();
        assert_eq!(p.col("q").unwrap().get(0), Value::Null);
        assert_eq!(p.col("q").unwrap().get(1), Value::Float(6.0));
    }

    #[test]
    fn numeric_labels_become_column_names() {
        let df = DataFrame::from_cols(vec![
            ("a", Column::from_i64(vec![1, 1])),
            ("b", Column::from_i64(vec![7, 8])),
            ("c", Column::from_i64(vec![5, 6])),
        ])
        .unwrap();
        let p = pivot_table(&df, "a", "b", "c", AggOp::Sum).unwrap();
        assert_eq!(p.columns(), vec!["a", "7", "8"]);
    }
}
