//! One named column plus the element-wise operations Pandas exposes on it.
//!
//! Arithmetic, comparison and string kernels allocate a fresh column per
//! call — the deliberate "no fusion" behaviour of the baseline.

use pytond_common::hash::FxHashSet;
use pytond_common::{date, Column, DType, Error, Result, Value};

/// A named column (the Pandas `Series`).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Column label.
    pub name: String,
    /// Backing data.
    pub col: Column,
}

impl Series {
    /// Wraps a column under a name.
    pub fn new(name: impl Into<String>, col: Column) -> Series {
        Series {
            name: name.into(),
            col,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.col.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.col.is_empty()
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.col.dtype()
    }

    /// Scalar at `i`.
    pub fn get(&self, i: usize) -> Value {
        self.col.get(i)
    }

    /// Renames, returning `self` for chaining.
    pub fn rename(mut self, name: impl Into<String>) -> Series {
        self.name = name.into();
        self
    }

    // ---------------- arithmetic ----------------

    fn zip_numeric(&self, other: &Series, f: impl Fn(f64, f64) -> f64) -> Result<Series> {
        if self.len() != other.len() {
            return Err(Error::Data(format!(
                "series length mismatch: {} vs {}",
                self.len(),
                other.len()
            )));
        }
        // Int op Int stays Int for +,-,*; the caller handles division.
        let mut out = Column::with_capacity(DType::Float, self.len());
        for i in 0..self.len() {
            let (a, b) = (self.get(i), other.get(i));
            match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => out.push(Value::Float(f(x, y)))?,
                _ => out.push_null(),
            }
        }
        Ok(Series::new(self.name.clone(), out))
    }

    fn zip_int_preserving(
        &self,
        other: &Series,
        fi: impl Fn(i64, i64) -> i64,
        ff: impl Fn(f64, f64) -> f64,
    ) -> Result<Series> {
        if self.dtype() == DType::Int && other.dtype() == DType::Int {
            if self.len() != other.len() {
                return Err(Error::Data("series length mismatch".into()));
            }
            let mut out = Column::with_capacity(DType::Int, self.len());
            for i in 0..self.len() {
                match (self.get(i).as_i64(), other.get(i).as_i64()) {
                    (Some(x), Some(y)) => out.push(Value::Int(fi(x, y)))?,
                    _ => out.push_null(),
                }
            }
            return Ok(Series::new(self.name.clone(), out));
        }
        self.zip_numeric(other, ff)
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Series) -> Result<Series> {
        self.zip_int_preserving(other, |a, b| a + b, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Series) -> Result<Series> {
        self.zip_int_preserving(other, |a, b| a - b, |a, b| a - b)
    }

    /// Element-wise multiplication.
    pub fn mul(&self, other: &Series) -> Result<Series> {
        self.zip_int_preserving(other, |a, b| a * b, |a, b| a * b)
    }

    /// Element-wise true division (always float, like Python `/`).
    pub fn div(&self, other: &Series) -> Result<Series> {
        self.zip_numeric(other, |a, b| a / b)
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, v: f64) -> Result<Series> {
        self.map_numeric(|x| x + v)
    }

    /// Subtracts a scalar.
    pub fn sub_scalar(&self, v: f64) -> Result<Series> {
        self.map_numeric(|x| x - v)
    }

    /// Multiplies by a scalar.
    pub fn mul_scalar(&self, v: f64) -> Result<Series> {
        self.map_numeric(|x| x * v)
    }

    /// Divides by a scalar.
    pub fn div_scalar(&self, v: f64) -> Result<Series> {
        self.map_numeric(|x| x / v)
    }

    /// Applies a float function element-wise (preserving nulls).
    pub fn map_numeric(&self, f: impl Fn(f64) -> f64) -> Result<Series> {
        let mut out = Column::with_capacity(
            if self.dtype() == DType::Int {
                DType::Float
            } else {
                self.dtype()
            },
            self.len(),
        );
        for i in 0..self.len() {
            match self.get(i).as_f64() {
                Some(x) => out.push(Value::Float(f(x)))?,
                None => out.push_null(),
            }
        }
        Ok(Series::new(self.name.clone(), out))
    }

    /// Generic element-wise map over scalars (the Pandas `Series.apply`).
    pub fn apply(&self, f: impl Fn(Value) -> Value) -> Result<Series> {
        let vals: Vec<Value> = (0..self.len()).map(|i| f(self.get(i))).collect();
        Ok(Series::new(self.name.clone(), Column::from_values(&vals)?))
    }

    /// Rounds to `digits` decimal places (NumPy `round`).
    pub fn round(&self, digits: i32) -> Result<Series> {
        let scale = 10f64.powi(digits);
        self.map_numeric(move |x| (x * scale).round() / scale)
    }

    // ---------------- comparisons ----------------

    fn compare(
        &self,
        other: impl Fn(usize) -> Value,
        f: impl Fn(std::cmp::Ordering) -> bool,
    ) -> Series {
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            let v = self.get(i).sql_cmp(&other(i)).map(&f).unwrap_or(false);
            out.push(v);
        }
        Series::new(self.name.clone(), Column::from_bool(out))
    }

    /// Element-wise `==` against a scalar.
    pub fn eq_val(&self, v: &Value) -> Series {
        self.compare(|_| v.clone(), |o| o == std::cmp::Ordering::Equal)
    }

    /// Element-wise `!=` against a scalar (`false` for nulls, like Pandas).
    pub fn ne_val(&self, v: &Value) -> Series {
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            out.push(matches!(
                self.get(i).sql_cmp(v),
                Some(o) if o != std::cmp::Ordering::Equal
            ));
        }
        Series::new(self.name.clone(), Column::from_bool(out))
    }

    /// Element-wise `<` against a scalar.
    pub fn lt_val(&self, v: &Value) -> Series {
        self.compare(|_| v.clone(), |o| o == std::cmp::Ordering::Less)
    }

    /// Element-wise `<=` against a scalar.
    pub fn le_val(&self, v: &Value) -> Series {
        self.compare(|_| v.clone(), |o| o != std::cmp::Ordering::Greater)
    }

    /// Element-wise `>` against a scalar.
    pub fn gt_val(&self, v: &Value) -> Series {
        self.compare(|_| v.clone(), |o| o == std::cmp::Ordering::Greater)
    }

    /// Element-wise `>=` against a scalar.
    pub fn ge_val(&self, v: &Value) -> Series {
        self.compare(|_| v.clone(), |o| o != std::cmp::Ordering::Less)
    }

    /// Element-wise `==` against another series.
    pub fn eq_series(&self, other: &Series) -> Series {
        self.compare(|i| other.get(i), |o| o == std::cmp::Ordering::Equal)
    }

    /// Element-wise `!=` against another series.
    pub fn ne_series(&self, other: &Series) -> Series {
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            out.push(matches!(
                self.get(i).sql_cmp(&other.get(i)),
                Some(o) if o != std::cmp::Ordering::Equal
            ));
        }
        Series::new(self.name.clone(), Column::from_bool(out))
    }

    /// Element-wise `<` against another series.
    pub fn lt_series(&self, other: &Series) -> Series {
        self.compare(|i| other.get(i), |o| o == std::cmp::Ordering::Less)
    }

    /// Element-wise `>` against another series.
    pub fn gt_series(&self, other: &Series) -> Series {
        self.compare(|i| other.get(i), |o| o == std::cmp::Ordering::Greater)
    }

    /// Element-wise `<=` against another series.
    pub fn le_series(&self, other: &Series) -> Series {
        self.compare(|i| other.get(i), |o| o != std::cmp::Ordering::Greater)
    }

    /// Element-wise `>=` against another series.
    pub fn ge_series(&self, other: &Series) -> Series {
        self.compare(|i| other.get(i), |o| o != std::cmp::Ordering::Less)
    }

    // ---------------- boolean masks ----------------

    /// Boolean AND of two masks.
    pub fn and(&self, other: &Series) -> Result<Series> {
        self.zip_bool(other, |a, b| a && b)
    }

    /// Boolean OR of two masks.
    pub fn or(&self, other: &Series) -> Result<Series> {
        self.zip_bool(other, |a, b| a || b)
    }

    /// Boolean NOT of a mask (`~mask`).
    pub fn not(&self) -> Result<Series> {
        let data = match &self.col {
            Column::Bool(d, _) => d.iter().map(|b| !b).collect(),
            _ => return Err(Error::Data("~ requires a boolean mask".into())),
        };
        Ok(Series::new(self.name.clone(), Column::from_bool(data)))
    }

    fn zip_bool(&self, other: &Series, f: impl Fn(bool, bool) -> bool) -> Result<Series> {
        match (&self.col, &other.col) {
            (Column::Bool(a, _), Column::Bool(b, _)) if a.len() == b.len() => {
                let data = a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect();
                Ok(Series::new(self.name.clone(), Column::from_bool(data)))
            }
            _ => Err(Error::Data("boolean op requires equal-length masks".into())),
        }
    }

    /// Membership test against the values of `other` (Pandas `isin`).
    ///
    /// Same-dtype columns use typed hash sets over raw slices (no encoding,
    /// no per-row allocation); mixed dtypes keep the byte-encoded semantics,
    /// under which values of different types never compare equal.
    pub fn isin(&self, other: &Series) -> Series {
        use pytond_common::hash::canonical_f64_bits;
        let out: Vec<bool> = match (&self.col, &other.col) {
            (Column::Int(d, valid), Column::Int(od, ovalid)) => {
                membership(d, valid, od, ovalid, |&x| x)
            }
            (Column::Date(d, valid), Column::Date(od, ovalid)) => {
                membership(d, valid, od, ovalid, |&x| x)
            }
            (Column::Bool(d, valid), Column::Bool(od, ovalid)) => {
                membership(d, valid, od, ovalid, |&x| x)
            }
            (Column::Float(d, valid), Column::Float(od, ovalid)) => {
                membership(d, valid, od, ovalid, |&x| canonical_f64_bits(x))
            }
            (Column::Str(d, valid), Column::Str(od, ovalid)) => {
                membership(d, valid, od, ovalid, |x| x.as_str())
            }
            _ => {
                // Mixed dtypes: byte-encoded values (tags keep types apart).
                let mut set: FxHashSet<Vec<u8>> = FxHashSet::default();
                let mut buf = Vec::new();
                for i in 0..other.len() {
                    buf.clear();
                    pytond_common::hash::encode_value(&mut buf, &other.get(i));
                    if !set.contains(&buf) {
                        set.insert(buf.clone());
                    }
                }
                (0..self.len())
                    .map(|i| {
                        let v = self.get(i);
                        if v.is_null() {
                            return false;
                        }
                        buf.clear();
                        pytond_common::hash::encode_value(&mut buf, &v);
                        set.contains(buf.as_slice())
                    })
                    .collect()
            }
        };
        Series::new(self.name.clone(), Column::from_bool(out))
    }

    /// Null test (`isna`).
    pub fn isna(&self) -> Series {
        let data = (0..self.len()).map(|i| !self.col.is_valid(i)).collect();
        Series::new(self.name.clone(), Column::from_bool(data))
    }

    /// Replaces nulls with `v` (`fillna`).
    pub fn fillna(&self, v: &Value) -> Result<Series> {
        let mut out = Column::with_capacity(self.dtype(), self.len());
        for i in 0..self.len() {
            let x = self.get(i);
            out.push(if x.is_null() { v.clone() } else { x })?;
        }
        Ok(Series::new(self.name.clone(), out))
    }

    // ---------------- string accessor (`.str`) ----------------

    fn map_str(&self, f: impl Fn(&str) -> bool) -> Result<Series> {
        let data = match &self.col {
            Column::Str(d, valid) => d
                .iter()
                .enumerate()
                .map(|(i, s)| valid.as_ref().map_or(true, |v| v[i]) && f(s))
                .collect(),
            _ => return Err(Error::Data(".str accessor requires strings".into())),
        };
        Ok(Series::new(self.name.clone(), Column::from_bool(data)))
    }

    /// `.str.contains(pat)` (literal substring).
    pub fn str_contains(&self, pat: &str) -> Result<Series> {
        self.map_str(|s| s.contains(pat))
    }

    /// `.str.startswith(pat)`.
    pub fn str_startswith(&self, pat: &str) -> Result<Series> {
        self.map_str(|s| s.starts_with(pat))
    }

    /// `.str.endswith(pat)`.
    pub fn str_endswith(&self, pat: &str) -> Result<Series> {
        self.map_str(|s| s.ends_with(pat))
    }

    /// `.str.slice(start, stop)` by character offsets.
    pub fn str_slice(&self, start: usize, stop: usize) -> Result<Series> {
        let data: Vec<String> = match &self.col {
            Column::Str(d, _) => d
                .iter()
                .map(|s| {
                    s.chars()
                        .skip(start)
                        .take(stop.saturating_sub(start))
                        .collect()
                })
                .collect(),
            _ => return Err(Error::Data(".str accessor requires strings".into())),
        };
        Ok(Series::new(self.name.clone(), Column::from_str_vec(data)))
    }

    // ---------------- datetime accessor (`.dt`) ----------------

    /// `.dt.year`.
    pub fn dt_year(&self) -> Result<Series> {
        let data: Vec<i64> = match &self.col {
            Column::Date(d, _) => d.iter().map(|&x| i64::from(date::year(x))).collect(),
            _ => return Err(Error::Data(".dt accessor requires dates".into())),
        };
        Ok(Series::new(self.name.clone(), Column::from_i64(data)))
    }

    /// `.dt.month`.
    pub fn dt_month(&self) -> Result<Series> {
        let data: Vec<i64> = match &self.col {
            Column::Date(d, _) => d.iter().map(|&x| i64::from(date::month(x))).collect(),
            _ => return Err(Error::Data(".dt accessor requires dates".into())),
        };
        Ok(Series::new(self.name.clone(), Column::from_i64(data)))
    }

    // ---------------- reductions ----------------

    /// Sum (nulls skipped, like Pandas). Integer columns sum to Int.
    pub fn sum(&self) -> Value {
        match &self.col {
            Column::Int(d, None) => Value::Int(d.iter().sum()),
            Column::Float(d, None) => Value::Float(d.iter().sum()),
            _ => {
                let mut acc = 0.0;
                let mut any = false;
                let mut all_int = true;
                for i in 0..self.len() {
                    if let Some(x) = self.get(i).as_f64() {
                        if !matches!(self.get(i), Value::Int(_)) {
                            all_int = false;
                        }
                        acc += x;
                        any = true;
                    }
                }
                if !any {
                    Value::Int(0)
                } else if all_int {
                    Value::Int(acc as i64)
                } else {
                    Value::Float(acc)
                }
            }
        }
    }

    /// Arithmetic mean (nulls skipped); `Null` when empty.
    pub fn mean(&self) -> Value {
        let mut acc = 0.0;
        let mut n = 0usize;
        for i in 0..self.len() {
            if let Some(x) = self.get(i).as_f64() {
                acc += x;
                n += 1;
            }
        }
        if n == 0 {
            Value::Null
        } else {
            Value::Float(acc / n as f64)
        }
    }

    /// Minimum by SQL ordering; `Null` when empty.
    pub fn min(&self) -> Value {
        self.extreme(std::cmp::Ordering::Less)
    }

    /// Maximum; `Null` when empty.
    pub fn max(&self) -> Value {
        self.extreme(std::cmp::Ordering::Greater)
    }

    fn extreme(&self, want: std::cmp::Ordering) -> Value {
        let mut best: Option<Value> = None;
        for i in 0..self.len() {
            let v = self.get(i);
            if v.is_null() {
                continue;
            }
            best = Some(match best {
                None => v,
                Some(b) => {
                    if v.sql_cmp(&b) == Some(want) {
                        v
                    } else {
                        b
                    }
                }
            });
        }
        best.unwrap_or(Value::Null)
    }

    /// Non-null count.
    pub fn count(&self) -> i64 {
        (self.len() - self.col.null_count()) as i64
    }

    /// Number of distinct non-null values (`nunique`), via a typed hash set
    /// over the raw column slice.
    pub fn nunique(&self) -> i64 {
        use pytond_common::hash::canonical_f64_bits;
        let n = match &self.col {
            Column::Int(d, v) => count_distinct(d, v.as_deref(), |&x| x),
            Column::Date(d, v) => count_distinct(d, v.as_deref(), |&x| x),
            Column::Bool(d, v) => count_distinct(d, v.as_deref(), |&x| x),
            Column::Float(d, v) => count_distinct(d, v.as_deref(), |&x| canonical_f64_bits(x)),
            Column::Str(d, v) => count_distinct(d, v.as_deref(), |x: &String| x.as_str()),
            // Dictionary codes are deduplicated, so distinct codes ≡ distinct
            // strings — no decode needed.
            Column::DictStr { codes, valid, .. } => count_distinct(codes, valid.as_deref(), |&x| x),
        };
        n as i64
    }

    /// Distinct values in first-appearance order (`unique`); a null, if any,
    /// is kept once at its first occurrence.
    pub fn unique(&self) -> Series {
        use pytond_common::hash::canonical_f64_bits;
        let keep = match &self.col {
            Column::Int(d, v) => unique_keep(d, v.as_deref(), |&x| x),
            Column::Date(d, v) => unique_keep(d, v.as_deref(), |&x| x),
            Column::Bool(d, v) => unique_keep(d, v.as_deref(), |&x| x),
            Column::Float(d, v) => unique_keep(d, v.as_deref(), |&x| canonical_f64_bits(x)),
            Column::Str(d, v) => unique_keep(d, v.as_deref(), |x: &String| x.as_str()),
            Column::DictStr { codes, valid, .. } => unique_keep(codes, valid.as_deref(), |&x| x),
        };
        Series::new(self.name.clone(), self.col.gather(&keep))
    }

    /// `true` when every value is truthy (NumPy `all` over a mask).
    pub fn all(&self) -> bool {
        match &self.col {
            Column::Bool(d, _) => d.iter().all(|&b| b),
            _ => (0..self.len()).all(|i| self.get(i).as_f64().is_some_and(|x| x != 0.0)),
        }
    }

    /// `true` when any value is truthy.
    pub fn any(&self) -> bool {
        match &self.col {
            Column::Bool(d, _) => d.iter().any(|&b| b),
            _ => (0..self.len()).any(|i| self.get(i).as_f64().is_some_and(|x| x != 0.0)),
        }
    }

    /// Row indices of non-zero/truthy entries (NumPy `nonzero`).
    pub fn nonzero(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| match self.get(i) {
                Value::Bool(b) => b,
                v => v.as_f64().is_some_and(|x| x != 0.0),
            })
            .collect()
    }
}

/// `self ∈ other` over raw slices: builds a typed set from `other`'s valid
/// values, probes `self`'s rows (nulls are never members).
fn membership<'a, T, K: std::hash::Hash + Eq + 'a>(
    data: &'a [T],
    valid: &Option<Vec<bool>>,
    other: &'a [T],
    other_valid: &Option<Vec<bool>>,
    key: impl Fn(&'a T) -> K,
) -> Vec<bool> {
    let set: FxHashSet<K> = other
        .iter()
        .enumerate()
        .filter(|(i, _)| other_valid.as_ref().map_or(true, |v| v[*i]))
        .map(|(_, x)| key(x))
        .collect();
    data.iter()
        .enumerate()
        .map(|(i, x)| valid.as_ref().map_or(true, |v| v[i]) && set.contains(&key(x)))
        .collect()
}

/// Number of distinct valid values in a slice.
fn count_distinct<'a, T, K: std::hash::Hash + Eq + 'a>(
    data: &'a [T],
    valid: Option<&[bool]>,
    key: impl Fn(&'a T) -> K,
) -> usize {
    data.iter()
        .enumerate()
        .filter(|(i, _)| valid.map_or(true, |v| v[*i]))
        .map(|(_, x)| key(x))
        .collect::<FxHashSet<K>>()
        .len()
}

/// First-occurrence indices of distinct values; nulls count as one value.
fn unique_keep<'a, T, K: std::hash::Hash + Eq + 'a>(
    data: &'a [T],
    valid: Option<&[bool]>,
    key: impl Fn(&'a T) -> K,
) -> Vec<usize> {
    let mut set: FxHashSet<K> = FxHashSet::default();
    let mut seen_null = false;
    let mut keep = Vec::new();
    for (i, x) in data.iter().enumerate() {
        if valid.map_or(true, |v| v[i]) {
            if set.insert(key(x)) {
                keep.push(i);
            }
        } else if !seen_null {
            seen_null = true;
            keep.push(i);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i64]) -> Series {
        Series::new("x", Column::from_i64(v.to_vec()))
    }

    #[test]
    fn arithmetic_preserves_int() {
        let a = ints(&[1, 2]);
        let b = ints(&[10, 20]);
        let c = a.add(&b).unwrap();
        assert_eq!(c.col.as_int(), &[11, 22]);
        let d = a.div(&b).unwrap();
        assert_eq!(d.col.as_float(), &[0.1, 0.1]);
    }

    #[test]
    fn comparisons_produce_masks() {
        let a = ints(&[1, 5, 3]);
        let m = a.gt_val(&Value::Int(2));
        assert_eq!(m.col.as_bool(), &[false, true, true]);
        let m2 = a.eq_series(&ints(&[1, 0, 3]));
        assert_eq!(m2.col.as_bool(), &[true, false, true]);
    }

    #[test]
    fn null_comparisons_are_false() {
        let mut col = Column::new(DType::Int);
        col.push(Value::Int(1)).unwrap();
        col.push_null();
        let s = Series::new("x", col);
        assert_eq!(s.gt_val(&Value::Int(0)).col.as_bool(), &[true, false]);
        assert_eq!(s.ne_val(&Value::Int(1)).col.as_bool(), &[false, false]);
    }

    #[test]
    fn mask_logic() {
        let a = Series::new("m", Column::from_bool(vec![true, false, true]));
        let b = Series::new("m", Column::from_bool(vec![true, true, false]));
        assert_eq!(a.and(&b).unwrap().col.as_bool(), &[true, false, false]);
        assert_eq!(a.or(&b).unwrap().col.as_bool(), &[true, true, true]);
        assert_eq!(a.not().unwrap().col.as_bool(), &[false, true, false]);
    }

    #[test]
    fn isin_ignores_nulls() {
        let mut col = Column::new(DType::Int);
        col.push(Value::Int(1)).unwrap();
        col.push_null();
        col.push(Value::Int(3)).unwrap();
        let s = Series::new("x", col);
        let other = ints(&[3, 1]);
        assert_eq!(s.isin(&other).col.as_bool(), &[true, false, true]);
    }

    #[test]
    fn string_accessor() {
        let s = Series::new("s", Column::from_strs(&["apple", "banana", "apricot"]));
        assert_eq!(
            s.str_startswith("ap").unwrap().col.as_bool(),
            &[true, false, true]
        );
        assert_eq!(
            s.str_contains("an").unwrap().col.as_bool(),
            &[false, true, false]
        );
        assert_eq!(
            s.str_slice(0, 2).unwrap().col.as_str_col(),
            &["ap".to_string(), "ba".into(), "ap".into()]
        );
    }

    #[test]
    fn dt_accessor() {
        let d = date::parse("1994-03-15").unwrap();
        let s = Series::new("d", Column::from_dates(vec![d]));
        assert_eq!(s.dt_year().unwrap().col.as_int(), &[1994]);
        assert_eq!(s.dt_month().unwrap().col.as_int(), &[3]);
    }

    #[test]
    fn reductions() {
        let s = ints(&[4, 1, 3]);
        assert_eq!(s.sum(), Value::Int(8));
        assert_eq!(s.min(), Value::Int(1));
        assert_eq!(s.max(), Value::Int(4));
        assert_eq!(s.mean(), Value::Float(8.0 / 3.0));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn unique_and_nunique() {
        let s = ints(&[2, 1, 2, 3, 1]);
        assert_eq!(s.unique().col.as_int(), &[2, 1, 3]);
        assert_eq!(s.nunique(), 3);
    }

    #[test]
    fn all_any_nonzero() {
        let s = ints(&[1, 0, 2]);
        assert!(!s.all());
        assert!(s.any());
        assert_eq!(s.nonzero(), vec![0, 2]);
    }

    #[test]
    fn fillna_and_isna() {
        let mut col = Column::new(DType::Float);
        col.push(Value::Float(1.0)).unwrap();
        col.push_null();
        let s = Series::new("x", col);
        assert_eq!(s.isna().col.as_bool(), &[false, true]);
        let filled = s.fillna(&Value::Float(0.0)).unwrap();
        assert_eq!(filled.col.as_float(), &[1.0, 0.0]);
    }

    #[test]
    fn round_scales() {
        let s = Series::new("x", Column::from_f64(vec![1.2345, 2.5]));
        let r = s.round(2).unwrap();
        assert_eq!(r.col.as_float(), &[1.23, 2.5]);
    }
}
