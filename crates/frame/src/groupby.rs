//! Hash group-by with named aggregations (`df.groupby(by).agg(...)`).

use crate::dataframe::DataFrame;
use crate::series::Series;
use pytond_common::hash::{FixedKeySpec, FxHashMap, KeyArena, KeyWidth};
use pytond_common::{pool, Column, Error, Result, Value};
use std::hash::Hash;

/// Inputs below this many rows group serially: for small frames the pool's
/// thread-spawn cost dominates any win.
pub(crate) const PARALLEL_MIN_ROWS: usize = 32 * 1024;

/// Rows per grouping morsel (matches the engine's default morsel).
const GROUP_MORSEL: usize = 16 * 1024;

/// Groups per aggregation morsel (each group's aggregate is independent).
const AGG_GROUP_MORSEL: usize = 256;

/// Aggregate functions available to `agg`, `aggregate` and `pivot_table`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// Sum of non-null values (0 for empty, like Pandas' sum).
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Mean,
    /// Count of non-null values.
    Count,
    /// Count of distinct non-null values.
    NUnique,
}

impl AggOp {
    /// Parses the Pandas spelling (`'sum'`, `'mean'`, ...).
    pub fn parse(name: &str) -> Result<AggOp> {
        match name {
            "sum" => Ok(AggOp::Sum),
            "min" => Ok(AggOp::Min),
            "max" => Ok(AggOp::Max),
            "mean" | "avg" => Ok(AggOp::Mean),
            "count" | "size" => Ok(AggOp::Count),
            "nunique" => Ok(AggOp::NUnique),
            other => Err(Error::Data(format!("unknown aggregate '{other}'"))),
        }
    }

    /// Applies the aggregate to a whole series.
    pub fn apply_series(self, s: &Series) -> Value {
        match self {
            AggOp::Sum => s.sum(),
            AggOp::Min => s.min(),
            AggOp::Max => s.max(),
            AggOp::Mean => s.mean(),
            AggOp::Count => Value::Int(s.count()),
            AggOp::NUnique => Value::Int(s.nunique()),
        }
    }
}

/// The pending group-by: key columns plus the grouped row indices.
pub struct GroupBy<'a> {
    df: &'a DataFrame,
    by: Vec<String>,
    /// One entry per group: (first row index, all row indices).
    groups: Vec<(usize, Vec<usize>)>,
}

impl<'a> GroupBy<'a> {
    /// Hashes the key columns and collects row indices per group,
    /// first-appearance order (Pandas `sort=False` semantics; callers sort
    /// explicitly when needed).
    ///
    /// Shares the engine's key machinery — the fairness rule that keeps the
    /// baseline comparable: fixed-width keys pack into `u64`/`u128` words,
    /// anything else arena-encodes. The byte encoding is **not** normalized
    /// (Pandas equality is type-sensitive, unlike SQL's `1 = 1.0`).
    pub fn new(df: &'a DataFrame, by: &[&str]) -> Result<GroupBy<'a>> {
        let keys: Vec<&Series> = by.iter().map(|k| df.col(k)).collect::<Result<Vec<_>>>()?;
        let cols: Vec<&Column> = keys.iter().map(|s| &s.col).collect();
        let groups = if cols.is_empty() {
            // Degenerate `groupby([])`: every row lands in one group.
            if df.num_rows() == 0 {
                Vec::new()
            } else {
                vec![(0, (0..df.num_rows()).collect())]
            }
        } else {
            match FixedKeySpec::plan(&[&cols], true) {
                Some(spec) if spec.width() == KeyWidth::U64 => group_rows(&spec.pack_u64(&cols).0),
                Some(spec) => group_rows(&spec.pack_u128(&cols).0),
                None => {
                    let arena = KeyArena::encode_raw(&cols, false);
                    group_rows(&arena.dense_keys())
                }
            }
        };
        Ok(GroupBy {
            df,
            by: by.iter().map(|s| s.to_string()).collect(),
            groups,
        })
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Named aggregation: each `(input column, op, output name)` triple
    /// produces one output column after the group keys.
    pub fn agg(&self, specs: &[(&str, AggOp, &str)]) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        // Key columns first.
        for key in &self.by {
            let src = self.df.col(key)?;
            let firsts: Vec<usize> = self.groups.iter().map(|(f, _)| *f).collect();
            out.insert(Series::new(key.clone(), src.col.gather(&firsts)))?;
        }
        for (input, op, output) in specs {
            let src = self.df.col(input)?;
            // Each group's aggregate is computed independently from its own
            // gathered rows, so groups fan out over pool workers with no
            // cross-group float merging — values are bit-identical at every
            // thread count.
            let threads = if self.df.num_rows() >= PARALLEL_MIN_ROWS {
                pool::default_threads()
            } else {
                1
            };
            let chunks = pool::par_morsels(
                threads,
                self.groups.len(),
                AGG_GROUP_MORSEL,
                "frame-agg",
                |_, r| {
                    Ok(r.map(|g| {
                        let sub = Series::new("", src.col.gather(&self.groups[g].1));
                        op.apply_series(&sub)
                    })
                    .collect::<Vec<Value>>())
                },
            )?;
            let vals: Vec<Value> = chunks.results.concat();
            out.insert(Series::new(*output, Column::from_values(&vals)?))?;
        }
        Ok(out)
    }

    /// `groupby(by).size()` — group cardinalities.
    pub fn size(&self, output: &str) -> Result<DataFrame> {
        let mut out = DataFrame::new();
        for key in &self.by {
            let src = self.df.col(key)?;
            let firsts: Vec<usize> = self.groups.iter().map(|(f, _)| *f).collect();
            out.insert(Series::new(key.clone(), src.col.gather(&firsts)))?;
        }
        let sizes: Vec<i64> = self.groups.iter().map(|(_, r)| r.len() as i64).collect();
        out.insert(Series::new(output, Column::from_i64(sizes)))?;
        Ok(out)
    }

    /// Applies `op` to every non-key column, keeping its name — the
    /// `df.groupby(col).sum()` form of Table V.
    pub fn agg_all(&self, op: AggOp) -> Result<DataFrame> {
        let specs: Vec<(String, AggOp, String)> = self
            .df
            .columns()
            .iter()
            .filter(|c| !self.by.iter().any(|k| k == *c))
            .map(|c| (c.to_string(), op, c.to_string()))
            .collect();
        let borrowed: Vec<(&str, AggOp, &str)> = specs
            .iter()
            .map(|(i, o, n)| (i.as_str(), *o, n.as_str()))
            .collect();
        self.agg(&borrowed)
    }
}

/// Buckets row indices by key in first-appearance order.
///
/// Large inputs group in parallel through the shared morsel pool:
/// morsel-local buckets merge in ascending morsel order, each partial's
/// groups visited in local first-appearance order — so the global group
/// order is global first-appearance order and every row list stays
/// ascending, exactly the serial result. The merge order is explicit, not
/// an accident of hash-map iteration.
fn group_rows<K: Hash + Eq + Copy + Send + Sync>(keys: &[K]) -> Vec<(usize, Vec<usize>)> {
    let threads = if keys.len() >= PARALLEL_MIN_ROWS {
        pool::default_threads()
    } else {
        1
    };
    group_rows_with(keys, threads)
}

/// [`group_rows`] at an explicit worker count (the testable core).
fn group_rows_with<K: Hash + Eq + Copy + Send + Sync>(
    keys: &[K],
    threads: usize,
) -> Vec<(usize, Vec<usize>)> {
    if threads <= 1 {
        let mut map: FxHashMap<K, usize> = FxHashMap::default();
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            match map.get(k) {
                Some(&g) => groups[g].1.push(i),
                None => {
                    map.insert(*k, groups.len());
                    groups.push((i, vec![i]));
                }
            }
        }
        return groups;
    }
    let partials = pool::par_morsels(threads, keys.len(), GROUP_MORSEL, "frame-group", |_, r| {
        let mut map: FxHashMap<K, usize> = FxHashMap::default();
        // (key, first row, rows) in local first-appearance order.
        let mut local: Vec<(K, usize, Vec<usize>)> = Vec::new();
        for i in r {
            match map.get(&keys[i]) {
                Some(&g) => local[g].2.push(i),
                None => {
                    map.insert(keys[i], local.len());
                    local.push((keys[i], i, vec![i]));
                }
            }
        }
        Ok(local)
    })
    .expect("grouping is infallible");
    let mut global: FxHashMap<K, usize> = FxHashMap::default();
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for part in partials.results {
        for (k, first, rows) in part {
            match global.get(&k) {
                Some(&g) => groups[g].1.extend(rows),
                None => {
                    global.insert(k, groups.len());
                    groups.push((first, rows));
                }
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::from_cols(vec![
            ("k", Column::from_strs(&["a", "b", "a", "b", "a"])),
            ("v", Column::from_i64(vec![1, 2, 3, 4, 5])),
            ("w", Column::from_f64(vec![1.0, 1.0, 2.0, 2.0, 3.0])),
        ])
        .unwrap()
    }

    #[test]
    fn sum_per_group_in_first_appearance_order() {
        let d = df();
        let g = d.groupby(&["k"]).unwrap();
        assert_eq!(g.num_groups(), 2);
        let r = g.agg(&[("v", AggOp::Sum, "total")]).unwrap();
        assert_eq!(
            r.col("k").unwrap().col.as_str_col(),
            &["a".to_string(), "b".into()]
        );
        assert_eq!(r.col("total").unwrap().col.as_int(), &[9, 6]);
    }

    #[test]
    fn multiple_aggregates_and_ops() {
        let d = df();
        let g = d.groupby(&["k"]).unwrap();
        let r = g
            .agg(&[
                ("v", AggOp::Min, "lo"),
                ("v", AggOp::Max, "hi"),
                ("v", AggOp::Mean, "avg"),
                ("w", AggOp::NUnique, "uw"),
            ])
            .unwrap();
        assert_eq!(r.col("lo").unwrap().col.as_int(), &[1, 2]);
        assert_eq!(r.col("hi").unwrap().col.as_int(), &[5, 4]);
        assert_eq!(r.col("avg").unwrap().col.as_float(), &[3.0, 3.0]);
        assert_eq!(r.col("uw").unwrap().col.as_int(), &[3, 2]);
    }

    #[test]
    fn multi_key_grouping() {
        let d = DataFrame::from_cols(vec![
            ("k1", Column::from_i64(vec![1, 1, 2, 1])),
            ("k2", Column::from_strs(&["x", "y", "x", "x"])),
            ("v", Column::from_i64(vec![10, 20, 30, 40])),
        ])
        .unwrap();
        let g = d.groupby(&["k1", "k2"]).unwrap();
        let r = g.agg(&[("v", AggOp::Sum, "s")]).unwrap();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.col("s").unwrap().col.as_int(), &[50, 20, 30]);
    }

    #[test]
    fn size_counts_rows() {
        let d = df();
        let r = d.groupby(&["k"]).unwrap().size("n").unwrap();
        assert_eq!(r.col("n").unwrap().col.as_int(), &[3, 2]);
    }

    #[test]
    fn agg_all_applies_to_non_keys() {
        let d = df();
        let r = d.groupby(&["k"]).unwrap().agg_all(AggOp::Sum).unwrap();
        assert_eq!(r.columns(), vec!["k", "v", "w"]);
        assert_eq!(r.col("w").unwrap().col.as_float(), &[6.0, 3.0]);
    }

    #[test]
    fn parse_names() {
        assert_eq!(AggOp::parse("sum").unwrap(), AggOp::Sum);
        assert_eq!(AggOp::parse("mean").unwrap(), AggOp::Mean);
        assert!(AggOp::parse("median").is_err());
    }

    /// The merge-order contract, stated explicitly: parallel grouping must
    /// produce groups in **global first-appearance order** with **ascending
    /// row lists** — exactly the serial result — for any worker count,
    /// including counts that do not divide the morsel grid evenly.
    #[test]
    fn parallel_grouping_preserves_first_appearance_order() {
        let n = 100_000usize;
        let keys: Vec<u64> = (0..n).map(|i| ((i * 7919) % 613) as u64).collect();
        let serial = group_rows_with(&keys, 1);
        for threads in [2, 3, 7, 16] {
            let par = group_rows_with(&keys, threads);
            assert_eq!(serial, par, "threads = {threads}");
        }
        // First-appearance order and ascending rows, asserted directly.
        let firsts: Vec<usize> = serial.iter().map(|(f, _)| *f).collect();
        assert!(firsts.windows(2).all(|w| w[0] < w[1]));
        assert!(serial
            .iter()
            .all(|(f, rows)| rows[0] == *f && rows.windows(2).all(|w| w[0] < w[1])));
    }
}
