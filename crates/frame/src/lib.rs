//! A Pandas-like DataFrame library — the "Python" baseline of the paper's
//! evaluation.
//!
//! Faithful to the performance profile the paper attributes to Pandas:
//! every operation **eagerly materializes** its result (no fusion), boolean
//! filtering copies, and joins and group-bys build full intermediate tables.
//! One deliberate departure from the original's "Pandas library does not
//! support parallelization" (Section V-C): `merge` and `groupby` reuse the
//! engine's morsel pool ([`pytond_common::pool`]) on large inputs, so
//! engine-vs-baseline comparisons measure query processing, not a
//! parallelism handicap — the fairness rule. `PYTOND_THREADS=1` restores
//! the fully serial baseline. Results are bit-identical at every thread
//! count (morsel-ordered merges; see `docs/EXECUTION.md`). The API mirrors
//! Table II of the paper: column selection, row filtering, `head`,
//! `unique`, `sort_values`, `apply`, `aggregate`, `groupby`, `merge`,
//! `isin`, and `pivot_table`.

#![warn(missing_docs)]

pub mod dataframe;
pub mod groupby;
pub mod join;
pub mod pivot;
pub mod series;

pub use dataframe::DataFrame;
pub use groupby::AggOp;
pub use join::JoinHow;
pub use series::Series;
