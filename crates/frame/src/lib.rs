//! A Pandas-like DataFrame library — the "Python" baseline of the paper's
//! evaluation.
//!
//! Faithful to the performance profile the paper attributes to Pandas:
//! every operation **eagerly materializes** its result (no fusion), boolean
//! filtering copies, joins and group-bys build full intermediate tables, and
//! nothing is parallel ("Pandas library does not support parallelization",
//! Section V-C). The API mirrors Table II of the paper: column selection,
//! row filtering, `head`, `unique`, `sort_values`, `apply`, `aggregate`,
//! `groupby`, `merge`, `isin`, and `pivot_table`.

pub mod dataframe;
pub mod groupby;
pub mod join;
pub mod pivot;
pub mod series;

pub use dataframe::DataFrame;
pub use groupby::AggOp;
pub use join::JoinHow;
pub use series::Series;
