//! A-Normal Form conversion (paper, Section III-B "Normalization").
//!
//! Every nested sub-expression that performs *work* (method calls,
//! subscripts, binary operations) is hoisted into its own assignment to a
//! fresh variable, so each subsequent translation rule handles exactly one
//! simple expression. Literals, names, attribute references, and
//! literal-only containers stay in place (they carry no work).

use pytond_common::Result;
use pytond_pyparse::ast::{Expr, Stmt};

/// Normalizes a function body to ANF.
pub fn normalize(body: &[Stmt]) -> Result<Vec<Stmt>> {
    let mut n = Normalizer { counter: 0 };
    let mut out = Vec::new();
    for stmt in body {
        match stmt {
            Stmt::Assign { target, value } => {
                let v = n.flatten(value, &mut out, false)?;
                out.push(Stmt::Assign {
                    target: target.clone(),
                    value: v,
                });
            }
            Stmt::Return(Some(e)) => {
                let v = n.flatten(e, &mut out, false)?;
                out.push(Stmt::Return(Some(v)));
            }
            other => out.push(other.clone()),
        }
    }
    Ok(out)
}

struct Normalizer {
    counter: usize,
}

impl Normalizer {
    fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("__anf{}", self.counter)
    }

    /// `atomize=true` forces the result to be a name/literal by hoisting.
    fn flatten(&mut self, e: &Expr, out: &mut Vec<Stmt>, atomize: bool) -> Result<Expr> {
        let flat = match e {
            // Atoms stay.
            Expr::Name(_)
            | Expr::Int(_)
            | Expr::Float(_)
            | Expr::Str(_)
            | Expr::Bool(_)
            | Expr::NoneLit => return Ok(e.clone()),
            // Attribute chains are cheap metadata access (df.col, np.einsum):
            // flatten only the base.
            Expr::Attribute { value, attr } => {
                let base = self.flatten(value, out, false)?;
                Expr::Attribute {
                    value: Box::new(base),
                    attr: attr.clone(),
                }
            }
            Expr::Subscript { value, index } => {
                let base = self.flatten(value, out, true)?;
                let idx = self.flatten_index(index, out)?;
                Expr::Subscript {
                    value: Box::new(base),
                    index: Box::new(idx),
                }
            }
            Expr::Call { func, args, kwargs } => {
                // The callee keeps its attribute shape (method dispatch), but
                // its receiver is atomized.
                let func = match func.as_ref() {
                    Expr::Attribute { value, attr } => {
                        let base = self.flatten(value, out, true)?;
                        Expr::Attribute {
                            value: Box::new(base),
                            attr: attr.clone(),
                        }
                    }
                    other => self.flatten(other, out, false)?,
                };
                let args = args
                    .iter()
                    .map(|a| self.flatten(a, out, true))
                    .collect::<Result<Vec<_>>>()?;
                let kwargs = kwargs
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), self.flatten(v, out, true)?)))
                    .collect::<Result<Vec<_>>>()?;
                Expr::Call {
                    func: Box::new(func),
                    args,
                    kwargs,
                }
            }
            Expr::Binary { op, left, right } => {
                let l = self.flatten(left, out, true)?;
                let r = self.flatten(right, out, true)?;
                Expr::Binary {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
            Expr::Compare { op, left, right } => {
                let l = self.flatten(left, out, true)?;
                let r = self.flatten(right, out, true)?;
                Expr::Compare {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
            Expr::Unary { op, operand } => {
                let o = self.flatten(operand, out, true)?;
                Expr::Unary {
                    op: *op,
                    operand: Box::new(o),
                }
            }
            Expr::IfExp { test, body, orelse } => {
                let t = self.flatten(test, out, true)?;
                let b = self.flatten(body, out, true)?;
                let o = self.flatten(orelse, out, true)?;
                Expr::IfExp {
                    test: Box::new(t),
                    body: Box::new(b),
                    orelse: Box::new(o),
                }
            }
            Expr::List(items) => Expr::List(
                items
                    .iter()
                    .map(|i| self.flatten(i, out, false))
                    .collect::<Result<_>>()?,
            ),
            Expr::Tuple(items) => Expr::Tuple(
                items
                    .iter()
                    .map(|i| self.flatten(i, out, false))
                    .collect::<Result<_>>()?,
            ),
            Expr::Dict(items) => Expr::Dict(
                items
                    .iter()
                    .map(|(k, v)| Ok((self.flatten(k, out, false)?, self.flatten(v, out, false)?)))
                    .collect::<Result<_>>()?,
            ),
            // Lambdas are translated wholesale; slices/stars stay structural.
            Expr::Lambda { .. } | Expr::Slice { .. } | Expr::Starred(_) => e.clone(),
        };
        // Hoist "work" nodes when an atom is required. Attribute accesses and
        // containers stay in place: they are translated contextually.
        let needs_hoist = atomize
            && matches!(
                flat,
                Expr::Call { .. }
                    | Expr::Binary { .. }
                    | Expr::Compare { .. }
                    | Expr::Unary { .. }
                    | Expr::Subscript { .. }
                    | Expr::IfExp { .. }
            );
        if needs_hoist {
            let name = self.fresh();
            out.push(Stmt::Assign {
                target: Expr::Name(name.clone()),
                value: flat,
            });
            Ok(Expr::Name(name))
        } else {
            Ok(flat)
        }
    }

    /// Subscript indices keep slices/masks/lists structural but flatten any
    /// computation inside them.
    fn flatten_index(&mut self, index: &Expr, out: &mut Vec<Stmt>) -> Result<Expr> {
        match index {
            Expr::Slice { lower, upper, step } => {
                let f = |x: &Option<Box<Expr>>, n: &mut Self, out: &mut Vec<Stmt>| -> Result<_> {
                    Ok(match x {
                        Some(e) => Some(Box::new(n.flatten(e, out, true)?)),
                        None => None,
                    })
                };
                Ok(Expr::Slice {
                    lower: f(lower, self, out)?,
                    upper: f(upper, self, out)?,
                    step: f(step, self, out)?,
                })
            }
            Expr::Tuple(items) => Ok(Expr::Tuple(
                items
                    .iter()
                    .map(|i| self.flatten_index(i, out))
                    .collect::<Result<_>>()?,
            )),
            Expr::List(_) | Expr::Str(_) | Expr::Int(_) | Expr::Name(_) => Ok(index.clone()),
            other => self.flatten(other, out, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_pyparse::parse_module;

    fn anf_of(src: &str) -> Vec<Stmt> {
        let m = parse_module(src).unwrap();
        normalize(&m.stmts).unwrap()
    }

    #[test]
    fn paper_example_decomposes_nested_merge() {
        // The exact example from Section III-B.
        let stmts = anf_of(
            "res = (df1[df1.b > 10]['a']).merge((df2[df2.y == 'r']['x']), \
             left_on='a', right_on='x')\n",
        );
        // Expect several hoisted assignments followed by the final merge.
        assert!(stmts.len() >= 5, "{stmts:#?}");
        match stmts.last().unwrap() {
            Stmt::Assign { target, value } => {
                assert_eq!(target, &Expr::Name("res".into()));
                match value {
                    Expr::Call { func, args, .. } => {
                        assert!(matches!(
                            func.as_ref(),
                            Expr::Attribute { attr, .. } if attr == "merge"
                        ));
                        // The argument is now a plain name.
                        assert!(matches!(args[0], Expr::Name(_)));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simple_statements_unchanged() {
        let stmts = anf_of("v1 = df.b > 10\nv2 = df[v1]\n");
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn chained_calls_are_split() {
        let stmts = anf_of("r = df.sort_values(by=['a']).head(5)\n");
        assert_eq!(stmts.len(), 2);
        match &stmts[0] {
            Stmt::Assign { target, .. } => {
                assert!(matches!(target, Expr::Name(n) if n.starts_with("__anf")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn input_variable_names_preserved() {
        // "the input variable names (df1 and df2) remain unchanged"
        let stmts = anf_of("r = df1[df1.b > 10]\n");
        let text = format!("{stmts:?}");
        assert!(text.contains("df1"));
    }

    #[test]
    fn masks_in_subscripts_hoisted() {
        let stmts = anf_of("r = df[(df.a > 1) & (df.b < 2)]\n");
        // & expression hoisted before the filter
        assert!(stmts.len() >= 2);
        match stmts.last().unwrap() {
            Stmt::Assign {
                value: Expr::Subscript { index, .. },
                ..
            } => assert!(matches!(index.as_ref(), Expr::Name(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn return_values_flattened() {
        let m = parse_module("def f(df):\n    return df[df.a > 1]\n").unwrap();
        let f = m.function("f").unwrap();
        let stmts = normalize(&f.body).unwrap();
        // The mask is hoisted; the returned filter stays structural.
        assert!(stmts.len() >= 2);
        match stmts.last().unwrap() {
            Stmt::Return(Some(Expr::Subscript { index, .. })) => {
                assert!(matches!(index.as_ref(), Expr::Name(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
