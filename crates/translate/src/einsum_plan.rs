//! Einsum planning for the dense layout (paper, Section III-D, Table VI).
//!
//! A binary einsum over matrix/vector operands is normalized (indices renamed
//! `i`, `j`, `k` by first appearance, as in the paper's `'ab,cc->ba'` →
//! `'ij,kk->ji'` walk-through), then reduced to a chain of *pre-steps*
//! (diagonal extraction, axis summation — kernels ES1–ES4) followed by one
//! *base kernel* (ES5–ES9 and friends), optionally transposing the result
//! (ES4) at the end.

use pytond_common::{Error, Result};

/// Per-operand reduction applied before the base kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreStep {
    /// `'ii->i'` — ES3, diagonal to column.
    Diag {
        /// Operand index.
        operand: usize,
    },
    /// Sum a matrix axis out: axis 0 = rows (`'ij->j'`), 1 = cols (`'ij->i'`).
    SumAxis {
        /// Operand index.
        operand: usize,
        /// Axis to contract.
        axis: usize,
    },
    /// Sum a vector to a scalar (`'i->'` — ES1).
    SumAll {
        /// Operand index.
        operand: usize,
    },
}

/// The final kernel of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Single operand passes through unchanged.
    Identity,
    /// `'ij->i'` — row sums (horizontal).
    RowSum,
    /// `'ij->j'` — column sums.
    ColSum,
    /// `'ij->'` — full matrix sum.
    FullSum,
    /// `'i->'` — vector sum.
    VecSum,
    /// `'ii->i'` — diagonal.
    Diag,
    /// `'ij->ji'` — transpose.
    Transpose,
    /// `'i,i->'` — inner product.
    Inner,
    /// `'i,j->ij'` — outer product.
    Outer,
    /// `'ij,ij->ij'` / `'i,i->i'` — Hadamard (ES7).
    Hadamard,
    /// `'ij,ij->'` — full dot product.
    Dot2,
    /// `'ij,ik->jk'` — batch vector outer product (ES8, covariance).
    BatchOuter,
    /// `'ij,jk->ik'` — matrix multiplication.
    MatMul,
    /// `'ij,j->i'` — matrix-vector product (ES9 family).
    MatVec,
    /// `',x->x'` — scalar times tensor (ES5/ES6).
    ScalarMul,
}

/// A complete dense-layout einsum plan.
#[derive(Debug, Clone, PartialEq)]
pub struct EinsumPlan {
    /// Pre-steps, applied in order.
    pub pre: Vec<PreStep>,
    /// Base kernel.
    pub kernel: Kernel,
    /// Swap the two operands before the kernel.
    pub swap: bool,
    /// Transpose the kernel result (ES4).
    pub transpose_out: bool,
}

/// Parses an einsum spec into per-operand index lists and the output list.
pub fn parse_spec(spec: &str) -> Result<(Vec<Vec<char>>, Vec<char>)> {
    let spec: String = spec.chars().filter(|c| !c.is_whitespace()).collect();
    let (ins, out) = match spec.split_once("->") {
        Some((i, o)) => (i.to_string(), Some(o.to_string())),
        None => (spec.clone(), None),
    };
    let inputs: Vec<Vec<char>> = ins.split(',').map(|s| s.chars().collect()).collect();
    for i in &inputs {
        for &c in i {
            if !c.is_ascii_lowercase() {
                return Err(Error::Translate(format!("invalid einsum index '{c}'")));
            }
        }
        if i.len() > 2 {
            return Err(Error::Translate(
                "dense-layout einsum supports tensors of order ≤ 2".into(),
            ));
        }
    }
    let output: Vec<char> = match out {
        Some(o) => o.chars().collect(),
        None => {
            let mut counts = std::collections::BTreeMap::new();
            for i in &inputs {
                for &c in i {
                    *counts.entry(c).or_insert(0usize) += 1;
                }
            }
            counts
                .into_iter()
                .filter_map(|(c, n)| (n == 1).then_some(c))
                .collect()
        }
    };
    for &c in &output {
        if !inputs.iter().any(|i| i.contains(&c)) {
            return Err(Error::Translate(format!(
                "einsum output index '{c}' missing from inputs"
            )));
        }
    }
    Ok((inputs, output))
}

/// Normalizes index names by first appearance (paper: "a, b, and c appeared
/// in the first, second, and third non-repeated position").
pub fn normalize(inputs: &[Vec<char>], output: &[char]) -> (Vec<Vec<char>>, Vec<char>) {
    let mut mapping: Vec<(char, char)> = Vec::new();
    let fresh = ['i', 'j', 'k', 'l', 'm', 'n'];
    let map_char = |c: char, mapping: &mut Vec<(char, char)>| -> char {
        if let Some((_, to)) = mapping.iter().find(|(from, _)| *from == c) {
            return *to;
        }
        let to = fresh[mapping.len().min(fresh.len() - 1)];
        mapping.push((c, to));
        to
    };
    let new_inputs: Vec<Vec<char>> = inputs
        .iter()
        .map(|i| i.iter().map(|&c| map_char(c, &mut mapping)).collect())
        .collect();
    let new_output: Vec<char> = output.iter().map(|&c| map_char(c, &mut mapping)).collect();
    (new_inputs, new_output)
}

/// Plans a 1- or 2-operand einsum over dense matrices/vectors.
pub fn plan(spec: &str) -> Result<EinsumPlan> {
    let (inputs, output) = parse_spec(spec)?;
    let (mut inputs, output) = normalize(&inputs, &output);
    if inputs.is_empty() || inputs.len() > 2 {
        return Err(Error::Translate(
            "dense einsum planning handles 1 or 2 operands (n-ary einsums are \
             decomposed upstream)"
                .into(),
        ));
    }
    let mut pre = Vec::new();

    // Per-operand pre-reduction.
    for op in 0..inputs.len() {
        // Repeated index within one operand → diagonal.
        if inputs[op].len() == 2 && inputs[op][0] == inputs[op][1] {
            pre.push(PreStep::Diag { operand: op });
            let c = inputs[op][0];
            inputs[op] = vec![c];
        }
        // Indices local to this operand and absent from the output and the
        // other operand → summed out.
        loop {
            let other: Vec<char> = inputs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != op)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            let local: Option<usize> = inputs[op]
                .iter()
                .position(|c| !output.contains(c) && !other.contains(c));
            match local {
                Some(pos) if inputs[op].len() == 2 => {
                    pre.push(PreStep::SumAxis {
                        operand: op,
                        axis: pos,
                    });
                    inputs[op].remove(pos);
                }
                Some(_) if inputs[op].len() == 1 => {
                    pre.push(PreStep::SumAll { operand: op });
                    inputs[op].clear();
                    break;
                }
                _ => break,
            }
        }
    }

    // Unary case.
    if inputs.len() == 1 {
        let a = &inputs[0];
        let kernel = match (a.as_slice(), output.as_slice()) {
            (x, y) if x == y => Kernel::Identity,
            ([i, j], [jj, ii]) if i == ii && j == jj => Kernel::Transpose,
            ([i, _j], [ii]) if i == ii => Kernel::RowSum,
            ([_i, j], [jj]) if j == jj => Kernel::ColSum,
            ([_, _], []) => Kernel::FullSum,
            ([_], []) => Kernel::VecSum,
            ([], []) => Kernel::Identity,
            _ => {
                return Err(Error::Translate(format!(
                    "unsupported unary einsum {a:?} -> {output:?}"
                )))
            }
        };
        return Ok(EinsumPlan {
            pre,
            kernel,
            swap: false,
            transpose_out: false,
        });
    }

    // Binary case.
    let (a, b) = (inputs[0].clone(), inputs[1].clone());
    let classify = |a: &[char], b: &[char]| -> Option<(Kernel, Vec<char>)> {
        // Returns (kernel, natural output order).
        match (a, b) {
            ([], rest) => Some((Kernel::ScalarMul, rest.to_vec())),
            ([i1], [i2]) if i1 == i2 => None, // handled below (inner/hadamard)
            ([i], [j]) if i != j => Some((Kernel::Outer, vec![*i, *j])),
            ([i1, j], [i2, k]) if i1 == i2 && j != k => Some((Kernel::BatchOuter, vec![*j, *k])),
            ([i, j1], [j2, k]) if j1 == j2 && i != k => Some((Kernel::MatMul, vec![*i, *k])),
            ([i, j1], [j2]) if j1 == j2 => Some((Kernel::MatVec, vec![*i])),
            ([i1, j1], [i2, j2]) if i1 == i2 && j1 == j2 => {
                Some((Kernel::Hadamard, vec![*i1, *j1]))
            }
            _ => None,
        }
    };

    // Same-index pairs: inner / vector-hadamard / full dot.
    if a == b {
        if output.is_empty() {
            let kernel = if a.len() == 1 {
                Kernel::Inner
            } else {
                Kernel::Dot2
            };
            return Ok(EinsumPlan {
                pre,
                kernel,
                swap: false,
                transpose_out: false,
            });
        }
        let (kernel, natural) = (Kernel::Hadamard, a.clone());
        let transpose_out = natural != output;
        return Ok(EinsumPlan {
            pre,
            kernel,
            swap: false,
            transpose_out,
        });
    }
    let accept =
        |kernel: Kernel, natural: &[char], swap: bool, pre: &[PreStep]| -> Option<EinsumPlan> {
            let mut sorted_nat = natural.to_vec();
            sorted_nat.sort_unstable();
            let mut sorted_out = output.clone();
            sorted_out.sort_unstable();
            if sorted_nat != sorted_out {
                return None; // broadcasting shapes are not kernel-expressible
            }
            Some(EinsumPlan {
                pre: pre.to_vec(),
                kernel,
                swap,
                transpose_out: natural != output.as_slice(),
            })
        };
    if let Some((kernel, natural)) = classify(&a, &b) {
        if let Some(plan) = accept(kernel, &natural, false, &pre) {
            return Ok(plan);
        }
    }
    if let Some((kernel, natural)) = classify(&b, &a) {
        if let Some(plan) = accept(kernel, &natural, true, &pre) {
            return Ok(plan);
        }
    }
    // 'ij,i->j' style: contract the leading shared index of a 2-D and 1-D
    // operand — a batch outer with a 1-column right operand.
    match (a.as_slice(), b.as_slice()) {
        ([i1, j], [i2]) if i1 == i2 => {
            return Ok(EinsumPlan {
                pre,
                kernel: Kernel::BatchOuter,
                swap: false,
                transpose_out: output != vec![*j],
            });
        }
        ([i1], [i2, j]) if i1 == i2 => {
            return Ok(EinsumPlan {
                pre,
                kernel: Kernel::BatchOuter,
                swap: true,
                transpose_out: output != vec![*j],
            });
        }
        _ => {}
    }
    Err(Error::Translate(format!(
        "unsupported binary einsum {a:?},{b:?} -> {output:?}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_base_kernels_map_directly() {
        // ES1: 'i->' reduces via a SumAll pre-step.
        let es1 = plan("i->").unwrap();
        assert_eq!(es1.pre, vec![PreStep::SumAll { operand: 0 }]);
        assert_eq!(es1.kernel, Kernel::Identity);
        // ES2: 'ij->i' contracts axis 1 via a pre-step.
        let es2 = plan("ij->i").unwrap();
        assert_eq!(
            es2.pre,
            vec![PreStep::SumAxis {
                operand: 0,
                axis: 1
            }]
        );
        assert_eq!(plan("ii->i").unwrap().kernel, Kernel::Identity); // ES3 via pre-step
        assert_eq!(
            plan("ii->i").unwrap().pre,
            vec![PreStep::Diag { operand: 0 }]
        );
        assert_eq!(plan("ij->ji").unwrap().kernel, Kernel::Transpose); // ES4
        assert_eq!(plan(",ij->ij").unwrap().kernel, Kernel::ScalarMul); // ES6
        assert_eq!(plan("ij,ij->ij").unwrap().kernel, Kernel::Hadamard); // ES7
        assert_eq!(plan("ij,ik->jk").unwrap().kernel, Kernel::BatchOuter); // ES8
        assert_eq!(plan("ij,jk->ik").unwrap().kernel, Kernel::MatMul);
        assert_eq!(plan("ij,j->i").unwrap().kernel, Kernel::MatVec);
        assert_eq!(plan("i,i->").unwrap().kernel, Kernel::Inner);
        assert_eq!(plan("i,j->ij").unwrap().kernel, Kernel::Outer);
    }

    #[test]
    fn paper_walkthrough_ab_cc_ba() {
        // 'ab,cc->ba' → diag+sum on the right operand, scalar-mult, transpose.
        let p = plan("ab,cc->ba").unwrap();
        assert!(p.pre.contains(&PreStep::Diag { operand: 1 }));
        assert!(p.pre.contains(&PreStep::SumAll { operand: 1 }));
        assert_eq!(p.kernel, Kernel::ScalarMul);
        assert!(p.swap); // scalar must come first
        assert!(p.transpose_out); // 'ij' natural, 'ji' requested
    }

    #[test]
    fn normalization_by_first_appearance() {
        let (ins, out) = parse_spec("ab,cc->ba").unwrap();
        let (ins, out) = normalize(&ins, &out);
        assert_eq!(ins, vec![vec!['i', 'j'], vec!['k', 'k']]);
        assert_eq!(out, vec!['j', 'i']);
    }

    #[test]
    fn swapped_operands_detected() {
        let p = plan("j,ij->i").unwrap();
        assert_eq!(p.kernel, Kernel::MatVec);
        assert!(p.swap);
        // Broadcasting shapes are rejected, not silently mis-planned.
        assert!(plan("j,ij->ij").is_err());
    }

    #[test]
    fn covariance_with_transpose() {
        let p = plan("ij,ik->kj").unwrap();
        assert_eq!(p.kernel, Kernel::BatchOuter);
        assert!(p.transpose_out);
    }

    #[test]
    fn axis_pre_reduction() {
        // 'ij,k->k': the matrix is fully summed, then scalar-mults the vector.
        let p = plan("ij,k->k").unwrap();
        assert_eq!(
            p.pre,
            vec![
                PreStep::SumAxis {
                    operand: 0,
                    axis: 0
                },
                PreStep::SumAll { operand: 0 }
            ]
        );
        assert_eq!(p.kernel, Kernel::ScalarMul);
    }

    #[test]
    fn full_dot_product() {
        assert_eq!(plan("ij,ij->").unwrap().kernel, Kernel::Dot2);
    }

    #[test]
    fn implicit_output_mode() {
        let p = plan("ij,jk").unwrap(); // implicit 'ik'
        assert_eq!(p.kernel, Kernel::MatMul);
    }

    #[test]
    fn rejects_higher_order() {
        assert!(plan("ijk->i").is_err());
    }

    #[test]
    fn vector_matrix_contraction() {
        // 'ij,i->j' — contract rows: batch-outer with 1-column right side.
        let p = plan("ij,i->j").unwrap();
        assert_eq!(p.kernel, Kernel::BatchOuter);
        assert!(!p.swap);
    }
}
