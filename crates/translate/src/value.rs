//! The abstract-value domain of the translator.
//!
//! Every Python variable in a `@pytond` function maps to one of these
//! compile-time descriptions. Frames and arrays are *relational views*: they
//! name the TondIR relation that holds their rows plus schema metadata.
//! Column expressions ([`ColExpr`]) are **deferred**: `df.a > 10` produces a
//! predicate bound to `df`'s row context, and only materializes into a rule
//! when it is used (filtering, projection, aggregation) — mirroring how the
//! paper translates masks at their point of use.

use crate::Layout;
use pytond_common::DType;
use pytond_pyparse::ast as py;
use pytond_tondir::Term;

/// One visible DataFrame column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColInfo {
    /// Column label.
    pub name: String,
    /// Element type.
    pub dtype: DType,
}

impl ColInfo {
    /// Constructor.
    pub fn new(name: impl Into<String>, dtype: DType) -> ColInfo {
        ColInfo {
            name: name.into(),
            dtype,
        }
    }
}

/// A DataFrame (or Series — `is_series`) backed by a TondIR relation.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameVal {
    /// Backing relation (base table or rule head).
    pub rel: String,
    /// Visible columns in order. The physical schema is
    /// `[id_col] ++ cols` when `id_col` is set.
    pub cols: Vec<ColInfo>,
    /// Hidden row-id column (paper: the UID used to preserve Pandas index
    /// semantics), physically first.
    pub id_col: Option<String>,
    /// Index of the defining rule (None = base table). Used for the
    /// sort+head fusion of Section III-E.
    pub rule_index: Option<usize>,
    /// `true` when this is a single-column Series view.
    pub is_series: bool,
}

impl FrameVal {
    /// Base-table constructor.
    pub fn base(rel: impl Into<String>, cols: Vec<ColInfo>) -> FrameVal {
        FrameVal {
            rel: rel.into(),
            cols,
            id_col: None,
            rule_index: None,
            is_series: false,
        }
    }

    /// Physical column names in relation order.
    pub fn physical_cols(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.cols.len() + 1);
        if let Some(id) = &self.id_col {
            out.push(id.clone());
        }
        out.extend(self.cols.iter().map(|c| c.name.clone()));
        out
    }

    /// Looks up a visible column.
    pub fn col(&self, name: &str) -> Option<&ColInfo> {
        self.cols.iter().find(|c| c.name == name)
    }

    /// The single column of a Series view.
    pub fn series_col(&self) -> Option<&ColInfo> {
        if self.cols.len() == 1 {
            self.cols.first()
        } else {
            None
        }
    }
}

/// An `isin` dependency attached to a deferred expression: the tested term
/// must (not) appear in `inner_rel.inner_col`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExistsSpec {
    /// Tested term (over `$col` placeholders of the context frame).
    pub outer: Term,
    /// Relation containing the candidate values.
    pub inner_rel: String,
    /// Physical column of `inner_rel` holding the values.
    pub inner_col: String,
    /// Total physical column count of `inner_rel` (to bind all positions).
    pub inner_arity: usize,
    /// Position of `inner_col` in the relation.
    pub inner_col_pos: usize,
    /// `true` for `~isin` / NOT IN.
    pub negated: bool,
}

/// A 1-row relation cell: the result of a whole-column aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarDep {
    /// The 1-row relation.
    pub rel: String,
    /// Its physical columns (all bound at emission).
    pub cols: Vec<String>,
    /// The referenced column.
    pub col: String,
}

/// A deferred column expression over one frame's row context.
///
/// `term` references the context frame's columns through `$name` placeholder
/// variables (see [`col_placeholder`]); scalar aggregation results appear as
/// `#rel.col` placeholders resolved by cross-joining the 1-row relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ColExpr {
    /// Row context.
    pub frame: FrameVal,
    /// The expression.
    pub term: Term,
    /// `isin` dependencies (conjunctive with the expression when boolean).
    pub exists: Vec<ExistsSpec>,
    /// 1-row relations the term references.
    pub scalar_deps: Vec<ScalarDep>,
    /// Static result type.
    pub dtype: DType,
    /// Display name (used when the expression materializes as a Series).
    pub name: String,
}

impl ColExpr {
    /// A bare column reference.
    pub fn column(frame: FrameVal, name: &str, dtype: DType) -> ColExpr {
        ColExpr {
            frame,
            term: Term::Var(col_placeholder(name)),
            exists: Vec::new(),
            scalar_deps: Vec::new(),
            dtype,
            name: name.to_string(),
        }
    }

    /// `true` when the two expressions share a row context.
    pub fn same_frame(&self, other: &ColExpr) -> bool {
        self.frame.rel == other.frame.rel && self.frame.cols == other.frame.cols
    }
}

/// The placeholder variable name standing for column `name` of the context
/// frame inside a deferred [`Term`].
pub fn col_placeholder(name: &str) -> String {
    format!("${name}")
}

/// The placeholder variable standing for `rel.col` of a cross-joined 1-row
/// relation.
pub fn scalar_placeholder(rel: &str, col: &str) -> String {
    format!("#{rel}.{col}")
}

/// A dense or sparse tensor backed by a TondIR relation.
///
/// Dense layout (paper, Section II): matrix = `(id, c0..c{n-1})`, vector =
/// `(id, c0)`. Sparse layout: matrix = `(row_id, col_id, val)`, vector =
/// `(row_id, val)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayVal {
    /// Backing relation.
    pub rel: String,
    /// Storage layout.
    pub layout: Layout,
    /// Tensor order (1 or 2).
    pub ndim: usize,
    /// Dense layout: the id column name.
    pub id_col: String,
    /// Dense layout: value column names in order.
    pub val_cols: Vec<String>,
    /// Statically-known row count, when available (needed for pivots).
    pub static_rows: Option<usize>,
}

impl ArrayVal {
    /// Number of columns of a dense matrix / length-1 for vectors.
    pub fn ncols(&self) -> usize {
        self.val_cols.len()
    }

    /// Physical schema of the backing relation.
    pub fn physical_cols(&self) -> Vec<String> {
        match self.layout {
            Layout::Dense => {
                let mut out = vec![self.id_col.clone()];
                out.extend(self.val_cols.iter().cloned());
                out
            }
            Layout::Sparse => {
                if self.ndim == 2 {
                    vec!["row_id".into(), "col_id".into(), "val".into()]
                } else {
                    vec!["row_id".into(), "val".into()]
                }
            }
        }
    }
}

/// A compile-time scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarVal {
    /// Literal constant.
    Const(pytond_tondir::Const),
    /// One cell of a 1-row relation (aggregation result).
    Rel {
        /// The 1-row relation.
        rel: String,
        /// All physical columns of the relation.
        cols: Vec<String>,
        /// The referenced column.
        col: String,
        /// Static type.
        dtype: DType,
    },
}

/// A pending `df.groupby(keys)` awaiting its aggregation call.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByVal {
    /// Source frame.
    pub frame: FrameVal,
    /// Grouping column names.
    pub keys: Vec<String>,
}

/// Abstract value of a Python variable during translation.
#[derive(Debug, Clone, PartialEq)]
pub enum PyVal {
    /// DataFrame / Series.
    Frame(FrameVal),
    /// Deferred column expression (mask, arithmetic, comparison, ...).
    Col(ColExpr),
    /// NumPy tensor.
    Array(ArrayVal),
    /// Scalar.
    Scalar(ScalarVal),
    /// Compile-time list of constants (column lists, literal arrays, ...).
    ConstList(Vec<pytond_tondir::Const>),
    /// Compile-time list of strings (column name lists).
    NameList(Vec<String>),
    /// Stored lambda (for `apply`).
    Lambda {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: py::Expr,
    },
    /// Pending group-by.
    GroupBy(GroupByVal),
    /// `.str` accessor on a column expression.
    StrAccessor(ColExpr),
    /// `.dt` accessor on a column expression.
    DtAccessor(ColExpr),
}

impl PyVal {
    /// Human label for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            PyVal::Frame(f) if f.is_series => "series",
            PyVal::Frame(_) => "dataframe",
            PyVal::Col(_) => "column-expression",
            PyVal::Array(_) => "ndarray",
            PyVal::Scalar(_) => "scalar",
            PyVal::ConstList(_) => "list",
            PyVal::NameList(_) => "name-list",
            PyVal::Lambda { .. } => "lambda",
            PyVal::GroupBy(_) => "groupby",
            PyVal::StrAccessor(_) => "str-accessor",
            PyVal::DtAccessor(_) => "dt-accessor",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_cols_include_hidden_id() {
        let mut f = FrameVal::base(
            "t",
            vec![ColInfo::new("a", DType::Int), ColInfo::new("b", DType::Str)],
        );
        assert_eq!(f.physical_cols(), vec!["a", "b"]);
        f.id_col = Some("__id".into());
        assert_eq!(f.physical_cols(), vec!["__id", "a", "b"]);
    }

    #[test]
    fn col_expr_contexts() {
        let f = FrameVal::base("t", vec![ColInfo::new("a", DType::Int)]);
        let c1 = ColExpr::column(f.clone(), "a", DType::Int);
        let c2 = ColExpr::column(f, "a", DType::Int);
        assert!(c1.same_frame(&c2));
        assert_eq!(c1.term, Term::Var("$a".into()));
    }

    #[test]
    fn array_physical_layouts() {
        let dense = ArrayVal {
            rel: "m".into(),
            layout: Layout::Dense,
            ndim: 2,
            id_col: "__id".into(),
            val_cols: vec!["c0".into(), "c1".into()],
            static_rows: None,
        };
        assert_eq!(dense.physical_cols(), vec!["__id", "c0", "c1"]);
        let sparse = ArrayVal {
            layout: Layout::Sparse,
            ..dense
        };
        assert_eq!(sparse.physical_cols(), vec!["row_id", "col_id", "val"]);
    }
}
