//! Pandas/NumPy → TondIR translation (paper, Sections III-B/C/D).
//!
//! The pipeline mirrors the paper exactly:
//!
//! 1. **Python embedding** — find the `@pytond`-decorated function, take its
//!    AST ([`pytond_pyparse`]);
//! 2. **Normalization** — convert the body to A-Normal Form ([`anf`]), so
//!    every translation step handles one simple expression;
//! 3. **Type inference** — resolve every function parameter against the
//!    [`Catalog`] (database catalog + decorator arguments — the paper's
//!    "contextual information") and propagate frame schemas forward;
//! 4. **Translation** — each statement produces TondIR rules; Pandas
//!    operations follow Table V, NumPy einsums go through the kernel planner
//!    of Table VI (dense layout) or the Blacher-style COO translation
//!    (sparse layout).

pub mod anf;
pub mod einsum_plan;
pub mod numpy;
pub mod pandas;
pub mod value;

use pytond_common::{Error, Result};
use pytond_pyparse::{ast as py, parse_module};
use pytond_tondir::{Catalog, Program};
use std::collections::HashMap;
use value::PyVal;

/// Tensor storage layout for linear-algebra translation (paper, Section II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// Natural 2-D layout: one column per tensor column plus a row-id.
    #[default]
    Dense,
    /// COO triples `(row_id, col_id, val)` (Blacher et al.).
    Sparse,
}

/// Compile-time context: the `@pytond` decorator arguments.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Tensor layout for NumPy translation.
    pub layout: Layout,
    /// Known distinct values per column, required by `pivot_table`
    /// (paper: "passed to PyTond using the @pytond decorator arguments").
    pub pivot_values: HashMap<String, Vec<String>>,
}

impl CompileOptions {
    /// Extracts options from a parsed decorator.
    pub fn from_decorator(deco: &py::Decorator) -> Result<CompileOptions> {
        let mut opts = CompileOptions::default();
        if let Some(v) = deco.kwarg("layout") {
            match v.as_str_lit() {
                Some("dense") => opts.layout = Layout::Dense,
                Some("sparse") => opts.layout = Layout::Sparse,
                other => {
                    return Err(Error::Translate(format!(
                        "invalid layout argument {other:?}"
                    )))
                }
            }
        }
        if let Some(py::Expr::Dict(items)) = deco.kwarg("pivot_values") {
            for (k, v) in items {
                let col = k
                    .as_str_lit()
                    .ok_or_else(|| Error::Translate("pivot_values keys must be strings".into()))?;
                let py::Expr::List(vals) = v else {
                    return Err(Error::Translate(
                        "pivot_values values must be lists of strings".into(),
                    ));
                };
                let vals: Vec<String> = vals
                    .iter()
                    .map(|e| {
                        e.as_str_lit().map(|s| s.to_string()).ok_or_else(|| {
                            Error::Translate("pivot_values entries must be strings".into())
                        })
                    })
                    .collect::<Result<_>>()?;
                opts.pivot_values.insert(col.to_string(), vals);
            }
        }
        Ok(opts)
    }
}

/// Translates the first `@pytond`-decorated function in `source`.
pub fn translate_source(source: &str, catalog: &Catalog) -> Result<Program> {
    let module = parse_module(source)?;
    let funcs = module.decorated_functions("pytond");
    let func = funcs
        .first()
        .ok_or_else(|| Error::Translate("no @pytond-decorated function found".into()))?;
    translate_function(func, catalog)
}

/// Translates one decorated function.
pub fn translate_function(func: &py::FuncDef, catalog: &Catalog) -> Result<Program> {
    let deco = func
        .decorators
        .iter()
        .find(|d| d.name == "pytond")
        .ok_or_else(|| Error::Translate(format!("function '{}' lacks @pytond", func.name)))?;
    let options = CompileOptions::from_decorator(deco)?;
    translate_with_options(func, catalog, &options)
}

/// Translates with explicit options (bypassing decorator parsing).
pub fn translate_with_options(
    func: &py::FuncDef,
    catalog: &Catalog,
    options: &CompileOptions,
) -> Result<Program> {
    let body = anf::normalize(&func.body)?;
    let mut tr = Translator {
        catalog,
        options: options.clone(),
        env: HashMap::new(),
        rules: Vec::new(),
        fresh: 0,
    };
    // Bind parameters to base tables (paper: data already resides in the DB).
    for param in &func.params {
        let val = tr.bind_parameter(param)?;
        tr.env.insert(param.clone(), val);
    }
    let mut returned: Option<PyVal> = None;
    for stmt in &body {
        match stmt {
            py::Stmt::Assign { target, value } => {
                tr.translate_assign(target, value)?;
            }
            py::Stmt::Return(Some(e)) => {
                returned = Some(tr.translate_expr(e)?);
                break;
            }
            py::Stmt::Return(None) => break,
            py::Stmt::Expr(_) | py::Stmt::Pass => {}
            py::Stmt::AugAssign { .. } => {
                return Err(Error::Translate(
                    "augmented assignment is not supported in @pytond functions".into(),
                ))
            }
            py::Stmt::FuncDef(_) => {
                return Err(Error::Translate(
                    "nested functions are not supported in @pytond functions".into(),
                ))
            }
        }
    }
    let out =
        returned.ok_or_else(|| Error::Translate("@pytond function must return a value".into()))?;
    tr.finalize(out)?;
    Ok(Program { rules: tr.rules })
}

/// Shared translation state. The per-domain rules live in `pandas.rs`
/// (relational algebra) and `numpy.rs` (linear algebra).
pub struct Translator<'a> {
    pub(crate) catalog: &'a Catalog,
    pub(crate) options: CompileOptions,
    pub(crate) env: HashMap<String, PyVal>,
    pub(crate) rules: Vec<pytond_tondir::Rule>,
    pub(crate) fresh: usize,
}

impl<'a> Translator<'a> {
    /// A fresh relation name (`v1`, `v2`, ... per the paper's examples).
    pub(crate) fn fresh_rel(&mut self) -> String {
        loop {
            self.fresh += 1;
            let name = format!("v{}", self.fresh);
            if self.catalog.table(&name).is_none() {
                return name;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_pyparse::parse_module;

    #[test]
    fn decorator_options_parse() {
        let src = r#"
@pytond(layout='sparse', pivot_values={'b': ['v1', 'v2']})
def q(df):
    return df
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("q").unwrap();
        let o = CompileOptions::from_decorator(&f.decorators[0]).unwrap();
        assert_eq!(o.layout, Layout::Sparse);
        assert_eq!(
            o.pivot_values.get("b").unwrap(),
            &vec!["v1".to_string(), "v2".into()]
        );
    }

    #[test]
    fn missing_decorator_is_an_error() {
        let src = "def q(df):\n    return df\n";
        let catalog = Catalog::new();
        assert!(translate_source(src, &catalog).is_err());
    }
}
