//! Statement/expression translation and the Pandas (relational-algebra)
//! rules of Table V.

use crate::value::*;
use crate::{Layout, Translator};
use pytond_common::{DType, Error, Result};
use pytond_pyparse::ast as py;
use pytond_tondir::{Atom, Body, Const, Head, Rule, ScalarOp, Term};
use std::collections::{HashMap, HashSet};

/// Builds one rule body: relation accesses, predicate atoms and the
/// placeholder-to-variable substitution map.
pub(crate) struct BodyBuilder {
    pub atoms: Vec<Atom>,
    used: HashSet<String>,
    /// `$col` / `#rel.col` placeholder → bound variable.
    pub subst: HashMap<String, String>,
    alias_counter: usize,
}

impl BodyBuilder {
    pub(crate) fn new() -> BodyBuilder {
        BodyBuilder {
            atoms: Vec::new(),
            used: HashSet::new(),
            subst: HashMap::new(),
            alias_counter: 0,
        }
    }

    pub(crate) fn fresh_var(&mut self, base: &str) -> String {
        let base: String = base
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let base = if base.is_empty() {
            "v".to_string()
        } else {
            base
        };
        let mut name = base.clone();
        let mut k = 1;
        while !self.used.insert(name.clone()) {
            k += 1;
            name = format!("{base}_{k}");
        }
        name
    }

    fn fresh_alias(&mut self, base: &str) -> String {
        self.alias_counter += 1;
        if self.alias_counter == 1 {
            base.to_string()
        } else {
            format!("{base}_{}", self.alias_counter)
        }
    }

    /// Accesses a frame, binding every physical column to a fresh variable
    /// and registering `$col` placeholders for the visible columns.
    /// Returns (alias, id-var if any, visible col → var).
    pub(crate) fn access_frame(
        &mut self,
        frame: &FrameVal,
        register_placeholders: bool,
    ) -> (String, Option<String>, HashMap<String, String>) {
        let alias = self.fresh_alias(&frame.rel);
        let mut vars = Vec::new();
        let mut id_var = None;
        if let Some(id) = &frame.id_col {
            let v = self.fresh_var(id);
            id_var = Some(v.clone());
            vars.push(v);
        }
        let mut map = HashMap::new();
        for c in &frame.cols {
            let v = self.fresh_var(&c.name);
            if register_placeholders {
                self.subst.insert(col_placeholder(&c.name), v.clone());
            }
            map.insert(c.name.clone(), v.clone());
            vars.push(v);
        }
        self.atoms.push(Atom::Rel {
            rel: frame.rel.clone(),
            alias,
            vars,
        });
        let alias_name = match &self.atoms.last().unwrap() {
            Atom::Rel { alias, .. } => alias.clone(),
            _ => unreachable!(),
        };
        (alias_name, id_var, map)
    }

    /// Cross-joins a 1-row scalar relation, registering its `#rel.col`
    /// placeholders.
    pub(crate) fn access_scalar(&mut self, dep: &ScalarDep) {
        let key = scalar_placeholder(&dep.rel, &dep.col);
        if self.subst.contains_key(&key) {
            return;
        }
        let alias = self.fresh_alias(&dep.rel);
        let mut vars = Vec::new();
        for c in &dep.cols {
            let v = self.fresh_var(c);
            self.subst
                .insert(scalar_placeholder(&dep.rel, c), v.clone());
            vars.push(v);
        }
        self.atoms.push(Atom::Rel {
            rel: dep.rel.clone(),
            alias,
            vars,
        });
    }

    /// Substitutes placeholders in a deferred term.
    pub(crate) fn resolve(&self, t: &Term) -> Result<Term> {
        let mut out = t.clone();
        let mut missing = None;
        out.rename_vars(&mut |v| {
            if let Some(bound) = self.subst.get(v) {
                Some(bound.clone())
            } else {
                if v.starts_with('$') || v.starts_with('#') {
                    missing = Some(v.to_string());
                }
                None
            }
        });
        if let Some(m) = missing {
            return Err(Error::Translate(format!(
                "unresolved column placeholder '{m}'"
            )));
        }
        Ok(out)
    }

    /// Adds the atoms for one deferred expression (scalar deps, exists) and
    /// returns the resolved term.
    pub(crate) fn add_expr(&mut self, e: &ColExpr) -> Result<Term> {
        for dep in &e.scalar_deps {
            self.access_scalar(dep);
        }
        for ex in &e.exists {
            let outer = self.resolve(&ex.outer)?;
            let outer_var = match outer {
                Term::Var(v) => v,
                other => {
                    // Compound tested term: bind it first.
                    let v = self.fresh_var("isin_key");
                    self.atoms.push(Atom::Assign {
                        var: v.clone(),
                        term: other,
                    });
                    v
                }
            };
            let mut inner_vars = Vec::new();
            let mut inner_key = String::new();
            for i in 0..ex.inner_arity {
                let v = self.fresh_var(&format!("in{i}"));
                if i == ex.inner_col_pos {
                    inner_key = v.clone();
                }
                inner_vars.push(v);
            }
            self.atoms.push(Atom::Exists {
                body: Body::new(vec![Atom::Rel {
                    rel: ex.inner_rel.clone(),
                    alias: format!("{}_in", ex.inner_rel),
                    vars: inner_vars,
                }]),
                keys: vec![(outer_var, inner_key)],
                negated: ex.negated,
            });
        }
        self.resolve(&e.term)
    }
}

impl<'a> Translator<'a> {
    // ---------------- parameters & finalization ----------------

    /// Binds a function parameter to its base table. Tables shaped
    /// `(__id, c0..cn)` bind as dense arrays, `(row_id[, col_id], val)` as
    /// sparse arrays, anything else as a DataFrame.
    pub fn bind_parameter(&mut self, name: &str) -> Result<PyVal> {
        let schema = self.catalog.expect_table(name)?;
        let col_names: Vec<&str> = schema.cols.iter().map(|(c, _)| c.as_str()).collect();
        if col_names.first() == Some(&"__id")
            && col_names[1..].iter().all(|c| c.starts_with('c'))
            && col_names.len() > 1
        {
            return Ok(PyVal::Array(ArrayVal {
                rel: name.to_string(),
                layout: Layout::Dense,
                ndim: if col_names.len() == 2 { 1 } else { 2 },
                id_col: "__id".into(),
                val_cols: col_names[1..].iter().map(|c| c.to_string()).collect(),
                static_rows: schema.row_count.map(|n| n as usize),
            }));
        }
        if col_names == ["row_id", "col_id", "val"] {
            return Ok(PyVal::Array(ArrayVal {
                rel: name.to_string(),
                layout: Layout::Sparse,
                ndim: 2,
                id_col: "row_id".into(),
                val_cols: vec!["val".into()],
                static_rows: schema.row_count.map(|n| n as usize),
            }));
        }
        Ok(PyVal::Frame(FrameVal::base(
            name,
            schema
                .cols
                .iter()
                .map(|(c, t)| ColInfo::new(c.clone(), *t))
                .collect(),
        )))
    }

    /// Emits the final projection rule for the returned value.
    pub fn finalize(&mut self, out: PyVal) -> Result<()> {
        match out {
            PyVal::Frame(f) => {
                // Re-project visible columns (drops the hidden id); skip when
                // the frame is already the last rule and has no id.
                let is_last = f.rule_index.is_some_and(|i| i + 1 == self.rules.len());
                if is_last && f.id_col.is_none() {
                    return Ok(());
                }
                let outputs: Vec<(String, Term, DType)> = f
                    .cols
                    .iter()
                    .map(|c| (c.name.clone(), Term::Var(col_placeholder(&c.name)), c.dtype))
                    .collect();
                self.emit_project(&f, outputs, false)?;
                Ok(())
            }
            PyVal::Col(e) => {
                let name = e.name.clone();
                let dtype = e.dtype;
                let frame = e.frame.clone();
                self.emit_project(&frame, vec![(name, e.term.clone(), dtype)], false)
                    .map(|_| ())
            }
            PyVal::Array(a) => self.finalize_array(a),
            PyVal::Scalar(ScalarVal::Rel { rel, cols, col, .. }) => {
                // Project the single cell.
                let rel_name = self.fresh_rel();
                let mut b = BodyBuilder::new();
                let mut vars = Vec::new();
                let mut keep = String::new();
                for c in &cols {
                    let v = b.fresh_var(c);
                    if *c == col {
                        keep = v.clone();
                    }
                    vars.push(v);
                }
                b.atoms.push(Atom::Rel {
                    rel,
                    alias: "s".into(),
                    vars,
                });
                self.rules.push(Rule {
                    head: Head::simple(rel_name, vec![(col, keep)]),
                    body: Body::new(b.atoms),
                });
                Ok(())
            }
            PyVal::Scalar(ScalarVal::Const(c)) => {
                let rel_name = self.fresh_rel();
                self.rules.push(Rule {
                    head: Head::simple(rel_name, vec![("value".into(), "c0".into())]),
                    body: Body::new(vec![Atom::ConstRel {
                        vars: vec!["c0".into()],
                        rows: vec![vec![c]],
                    }]),
                });
                Ok(())
            }
            other => Err(Error::Translate(format!(
                "cannot return a {} from a @pytond function",
                other.kind()
            ))),
        }
    }

    // ---------------- statements ----------------

    pub fn translate_assign(&mut self, target: &py::Expr, value: &py::Expr) -> Result<()> {
        match target {
            py::Expr::Name(name) => {
                let v = self.translate_expr(value)?;
                self.env.insert(name.clone(), v);
                Ok(())
            }
            py::Expr::Subscript { value: base, index } => {
                let col = index.as_str_lit().ok_or_else(|| {
                    Error::Translate("column assignment requires a string key".into())
                })?;
                let base_name = base.as_name().ok_or_else(|| {
                    Error::Translate("column assignment target must be a variable".into())
                })?;
                let rhs = self.translate_expr(value)?;
                let updated = self.assign_column(base_name, col, rhs)?;
                self.env
                    .insert(base_name.to_string(), PyVal::Frame(updated));
                Ok(())
            }
            other => Err(Error::Translate(format!(
                "unsupported assignment target {other:?}"
            ))),
        }
    }

    /// `df[col] = rhs` — projection extension, or the implicit join of
    /// Section III-C when `rhs` comes from a different frame.
    fn assign_column(&mut self, base: &str, col: &str, rhs: PyVal) -> Result<FrameVal> {
        let target = match self.env.get(base) {
            Some(PyVal::Frame(f)) => f.clone(),
            Some(other) => {
                return Err(Error::Translate(format!(
                    "cannot assign a column on a {}",
                    other.kind()
                )))
            }
            None => FrameVal::base("", vec![]), // fresh empty DataFrame()
        };
        let rhs_col = match rhs {
            PyVal::Col(c) => c,
            PyVal::Frame(f) if f.is_series => {
                let c = f
                    .series_col()
                    .ok_or_else(|| Error::Translate("series without a column".into()))?;
                ColExpr::column(f.clone(), &c.name.clone(), c.dtype)
            }
            PyVal::Scalar(ScalarVal::Const(k)) => {
                // Constant column over the target frame.
                let dtype = k.dtype().unwrap_or(DType::Float);
                ColExpr {
                    frame: target.clone(),
                    term: Term::Const(k),
                    exists: vec![],
                    scalar_deps: vec![],
                    dtype,
                    name: col.to_string(),
                }
            }
            PyVal::Scalar(ScalarVal::Rel {
                rel,
                cols,
                col: scol,
                dtype,
            }) => ColExpr {
                frame: target.clone(),
                term: Term::Var(scalar_placeholder(&rel, &scol)),
                exists: vec![],
                scalar_deps: vec![ScalarDep {
                    rel,
                    cols,
                    col: scol,
                }],
                dtype,
                name: col.to_string(),
            },
            other => {
                return Err(Error::Translate(format!(
                    "cannot assign a {} as a column",
                    other.kind()
                )))
            }
        };

        if target.rel.is_empty() && target.cols.is_empty() {
            // First column of an empty DataFrame: project from the source.
            let src = rhs_col.frame.clone();
            let mut outputs = vec![(col.to_string(), rhs_col.term.clone(), rhs_col.dtype)];
            let mut f =
                self.emit_project_full(&src, std::mem::take(&mut outputs), true, &rhs_col)?;
            if let Some(c) = f.cols.last_mut() {
                c.name = col.to_string();
            }
            return Ok(f);
        }

        if rhs_col.frame.rel == target.rel && rhs_col.frame.cols == target.cols {
            // Same row context: extend the projection.
            let mut outputs: Vec<(String, Term, DType)> = target
                .cols
                .iter()
                .filter(|c| c.name != col)
                .map(|c| (c.name.clone(), Term::Var(col_placeholder(&c.name)), c.dtype))
                .collect();
            outputs.push((col.to_string(), rhs_col.term.clone(), rhs_col.dtype));
            return self.emit_project_full(&target, outputs, target.id_col.is_some(), &rhs_col);
        }

        // Different frames: the implicit join on generated IDs (paper §III-C).
        let left = self.ensure_id(&target)?;
        let right = self.ensure_id(&rhs_col.frame)?;
        let rel = self.fresh_rel();
        let mut b = BodyBuilder::new();
        let (_, lid, lmap) = b.access_frame(&left, true);
        // Access the right with non-registered placeholders, then register
        // only the columns the rhs term needs (shadowing is fine: rhs's frame
        // differs from target).
        let (_, rid, rmap) = b.access_frame(&right, false);
        for (name, var) in &rmap {
            b.subst.insert(col_placeholder(name), var.clone());
        }
        let lid = lid.expect("ensure_id guarantees an id");
        let rid = rid.expect("ensure_id guarantees an id");
        b.atoms.push(Atom::Pred(Term::bin(
            ScalarOp::Eq,
            Term::Var(lid.clone()),
            Term::Var(rid),
        )));
        let new_term = b.add_expr(&rhs_col)?;
        let new_var = b.fresh_var(col);
        b.atoms.push(Atom::Assign {
            var: new_var.clone(),
            term: new_term,
        });
        let mut head_cols = vec![(left.id_col.clone().unwrap(), lid)];
        let mut out_cols = Vec::new();
        for c in &left.cols {
            if c.name == col {
                continue;
            }
            head_cols.push((c.name.clone(), lmap[&c.name].clone()));
            out_cols.push(c.clone());
        }
        head_cols.push((col.to_string(), new_var));
        out_cols.push(ColInfo::new(col, rhs_col.dtype));
        let rule_index = self.rules.len();
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), head_cols),
            body: Body::new(b.atoms),
        });
        Ok(FrameVal {
            rel,
            cols: out_cols,
            id_col: left.id_col,
            rule_index: Some(rule_index),
            is_series: false,
        })
    }

    // ---------------- emission helpers ----------------

    /// Guarantees the frame carries a generated id column (`uid()` rule).
    pub(crate) fn ensure_id(&mut self, frame: &FrameVal) -> Result<FrameVal> {
        if frame.id_col.is_some() {
            return Ok(frame.clone());
        }
        let rel = self.fresh_rel();
        let mut b = BodyBuilder::new();
        let (_, _, map) = b.access_frame(frame, false);
        let id_var = b.fresh_var("__id");
        b.atoms.push(Atom::Assign {
            var: id_var.clone(),
            term: Term::Ext {
                func: "uid".into(),
                args: vec![],
            },
        });
        let mut head_cols = vec![("__id".to_string(), id_var)];
        for c in &frame.cols {
            head_cols.push((c.name.clone(), map[&c.name].clone()));
        }
        let rule_index = self.rules.len();
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), head_cols),
            body: Body::new(b.atoms),
        });
        Ok(FrameVal {
            rel,
            cols: frame.cols.clone(),
            id_col: Some("__id".into()),
            rule_index: Some(rule_index),
            is_series: frame.is_series,
        })
    }

    /// Filter rule: `out(cols) :- frame(cols), (pred).`
    pub(crate) fn emit_filter(&mut self, pred: &ColExpr) -> Result<FrameVal> {
        if pred.dtype != DType::Bool && pred.exists.is_empty() {
            return Err(Error::Translate(
                "row filter requires a boolean mask".into(),
            ));
        }
        let frame = pred.frame.clone();
        let rel = self.fresh_rel();
        let mut b = BodyBuilder::new();
        let (_, id_var, map) = b.access_frame(&frame, true);
        let term = b.add_expr(pred)?;
        // A bare `true` constant (pure-isin masks) adds no predicate atom.
        if term != Term::Const(Const::Bool(true)) {
            b.atoms.push(Atom::Pred(term));
        }
        let mut head_cols = Vec::new();
        if let (Some(id), Some(idv)) = (&frame.id_col, id_var) {
            head_cols.push((id.clone(), idv));
        }
        for c in &frame.cols {
            head_cols.push((c.name.clone(), map[&c.name].clone()));
        }
        let rule_index = self.rules.len();
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), head_cols),
            body: Body::new(b.atoms),
        });
        Ok(FrameVal {
            rel,
            cols: frame.cols.clone(),
            id_col: frame.id_col.clone(),
            rule_index: Some(rule_index),
            is_series: frame.is_series,
        })
    }

    /// Projection rule over one frame.
    pub(crate) fn emit_project(
        &mut self,
        frame: &FrameVal,
        outputs: Vec<(String, Term, DType)>,
        keep_id: bool,
    ) -> Result<FrameVal> {
        let dummy = ColExpr {
            frame: frame.clone(),
            term: Term::Const(Const::Bool(true)),
            exists: vec![],
            scalar_deps: vec![],
            dtype: DType::Bool,
            name: String::new(),
        };
        self.emit_project_full(frame, outputs, keep_id, &dummy)
    }

    /// Projection that may also carry the deps of one deferred expression.
    fn emit_project_full(
        &mut self,
        frame: &FrameVal,
        outputs: Vec<(String, Term, DType)>,
        keep_id: bool,
        deps: &ColExpr,
    ) -> Result<FrameVal> {
        let rel = self.fresh_rel();
        let mut b = BodyBuilder::new();
        let (_, id_var, _) = b.access_frame(frame, true);
        for d in &deps.scalar_deps {
            b.access_scalar(d);
        }
        let mut head_cols = Vec::new();
        let mut out_infos = Vec::new();
        let mut id_out = None;
        if keep_id {
            if let (Some(id), Some(idv)) = (&frame.id_col, id_var) {
                head_cols.push((id.clone(), idv));
                id_out = Some(id.clone());
            }
        }
        for (name, term, dtype) in outputs {
            let resolved = b.resolve(&term)?;
            let var = match &resolved {
                Term::Var(v) if !v.starts_with('$') => v.clone(),
                _ => {
                    let v = b.fresh_var(&name);
                    b.atoms.push(Atom::Assign {
                        var: v.clone(),
                        term: resolved,
                    });
                    v
                }
            };
            head_cols.push((name.clone(), var));
            out_infos.push(ColInfo::new(name, dtype));
        }
        let rule_index = self.rules.len();
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), head_cols),
            body: Body::new(b.atoms),
        });
        Ok(FrameVal {
            rel,
            cols: out_infos,
            id_col: id_out,
            rule_index: Some(rule_index),
            is_series: false,
        })
    }

    /// Materializes any frame-like value into a concrete frame.
    pub(crate) fn materialize_frame(&mut self, v: PyVal) -> Result<FrameVal> {
        match v {
            PyVal::Frame(f) => Ok(f),
            PyVal::Col(c) => {
                let name = c.name.clone();
                let dtype = c.dtype;
                let frame = c.frame.clone();
                let mut out = self.emit_project_full(
                    &frame,
                    vec![(name, c.term.clone(), dtype)],
                    frame.id_col.is_some(),
                    &c,
                )?;
                out.is_series = true;
                Ok(out)
            }
            other => Err(Error::Translate(format!(
                "expected a frame, found {}",
                other.kind()
            ))),
        }
    }

    /// Coerces a value to a deferred column expression.
    pub(crate) fn as_col(&mut self, v: PyVal) -> Result<ColExpr> {
        match v {
            PyVal::Col(c) => Ok(c),
            PyVal::Frame(f) if f.is_series => {
                let c = f
                    .series_col()
                    .ok_or_else(|| Error::Translate("series without a column".into()))?
                    .clone();
                Ok(ColExpr::column(f, &c.name, c.dtype))
            }
            other => Err(Error::Translate(format!(
                "expected a column expression, found {}",
                other.kind()
            ))),
        }
    }

    // ---------------- expressions ----------------

    pub fn translate_expr(&mut self, e: &py::Expr) -> Result<PyVal> {
        match e {
            py::Expr::Name(n) => self
                .env
                .get(n)
                .cloned()
                .ok_or_else(|| Error::Translate(format!("unknown variable '{n}'"))),
            py::Expr::Int(i) => Ok(PyVal::Scalar(ScalarVal::Const(Const::Int(*i)))),
            py::Expr::Float(f) => Ok(PyVal::Scalar(ScalarVal::Const(Const::Float(*f)))),
            py::Expr::Str(s) => Ok(PyVal::Scalar(ScalarVal::Const(Const::Str(s.clone())))),
            py::Expr::Bool(b) => Ok(PyVal::Scalar(ScalarVal::Const(Const::Bool(*b)))),
            py::Expr::NoneLit => Ok(PyVal::Scalar(ScalarVal::Const(Const::Null))),
            py::Expr::List(items) => self.translate_list(items),
            py::Expr::Tuple(items) => self.translate_list(items),
            py::Expr::Dict(_) => Err(Error::Translate(
                "dict literals are only supported as call arguments".into(),
            )),
            py::Expr::Attribute { value, attr } => self.attribute(value, attr),
            py::Expr::Subscript { value, index } => self.subscript(value, index),
            py::Expr::Call { func, args, kwargs } => self.call(func, args, kwargs),
            py::Expr::Compare { op, left, right } => self.compare(*op, left, right),
            py::Expr::Binary { op, left, right } => self.binary(*op, left, right),
            py::Expr::Unary { op, operand } => self.unary(*op, operand),
            py::Expr::IfExp { test, body, orelse } => self.if_expr(test, body, orelse),
            py::Expr::Lambda { params, body } => Ok(PyVal::Lambda {
                params: params.clone(),
                body: (**body).clone(),
            }),
            py::Expr::Slice { .. } | py::Expr::Starred(_) => Err(Error::Translate(
                "slice/star expression outside a supported context".into(),
            )),
        }
    }

    fn translate_list(&mut self, items: &[py::Expr]) -> Result<PyVal> {
        // A list of strings is a column-name list; a list of numbers is a
        // constant vector.
        if items.iter().all(|i| matches!(i, py::Expr::Str(_))) && !items.is_empty() {
            return Ok(PyVal::NameList(
                items
                    .iter()
                    .map(|i| i.as_str_lit().unwrap().to_string())
                    .collect(),
            ));
        }
        let consts = items
            .iter()
            .map(|i| match i {
                py::Expr::Int(x) => Ok(Const::Int(*x)),
                py::Expr::Float(x) => Ok(Const::Float(*x)),
                py::Expr::Str(s) => Ok(Const::Str(s.clone())),
                py::Expr::Bool(b) => Ok(Const::Bool(*b)),
                py::Expr::List(inner) => {
                    // nested lists handled by np.array translation
                    Err(Error::Translate(format!(
                        "nested list literal of length {}",
                        inner.len()
                    )))
                }
                other => Err(Error::Translate(format!(
                    "unsupported list element {other:?}"
                ))),
            })
            .collect::<Result<Vec<_>>>();
        match consts {
            Ok(c) => Ok(PyVal::ConstList(c)),
            Err(e) => Err(e),
        }
    }

    fn attribute(&mut self, base: &py::Expr, attr: &str) -> Result<PyVal> {
        // Module access like np.einsum is resolved at the call site.
        if let Some(name) = base.as_name() {
            if matches!(name, "np" | "numpy" | "pd" | "pandas") {
                return Err(Error::Translate(format!(
                    "module attribute '{name}.{attr}' used outside a call"
                )));
            }
        }
        let v = self.translate_expr(base)?;
        match (&v, attr) {
            (PyVal::Frame(f), _) if f.col(attr).is_some() => {
                let c = f.col(attr).unwrap().clone();
                Ok(PyVal::Col(ColExpr::column(f.clone(), &c.name, c.dtype)))
            }
            (PyVal::Col(c), "str") => Ok(PyVal::StrAccessor(c.clone())),
            (PyVal::Col(c), "dt") => Ok(PyVal::DtAccessor(c.clone())),
            (PyVal::Frame(f), "str") if f.is_series => {
                let c = self.as_col(v.clone())?;
                Ok(PyVal::StrAccessor(c))
            }
            (PyVal::Frame(f), "dt") if f.is_series => {
                let c = self.as_col(v.clone())?;
                Ok(PyVal::DtAccessor(c))
            }
            (PyVal::DtAccessor(c), "year" | "month" | "day") => Ok(PyVal::Col(ColExpr {
                term: Term::Ext {
                    func: attr.to_string(),
                    args: vec![c.term.clone()],
                },
                dtype: DType::Int,
                ..c.clone()
            })),
            _ => Err(Error::Translate(format!(
                "unknown attribute '{attr}' on {}",
                v.kind()
            ))),
        }
    }

    fn subscript(&mut self, base: &py::Expr, index: &py::Expr) -> Result<PyVal> {
        let b = self.translate_expr(base)?;
        match (&b, index) {
            // df['col']
            (PyVal::Frame(f), py::Expr::Str(col)) => {
                let c = f.col(col).ok_or_else(|| {
                    Error::Translate(format!("no column '{col}' on frame '{}'", f.rel))
                })?;
                Ok(PyVal::Col(ColExpr::column(f.clone(), &c.name, c.dtype)))
            }
            // df[['a', 'b']]
            (PyVal::Frame(f), py::Expr::List(_)) => {
                let names = match self.translate_expr(index)? {
                    PyVal::NameList(n) => n,
                    other => {
                        return Err(Error::Translate(format!(
                            "projection list must be strings, found {}",
                            other.kind()
                        )))
                    }
                };
                let outputs = names
                    .iter()
                    .map(|n| {
                        let c = f
                            .col(n)
                            .ok_or_else(|| Error::Translate(format!("no column '{n}'")))?;
                        Ok((n.clone(), Term::Var(col_placeholder(n)), c.dtype))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let out = self.emit_project(f, outputs, f.id_col.is_some())?;
                Ok(PyVal::Frame(out))
            }
            // df[mask]
            (PyVal::Frame(_), _) => {
                let mask = self.translate_expr(index)?;
                let mask = self.as_col(mask)?;
                let out = self.emit_filter(&mask)?;
                Ok(PyVal::Frame(out))
            }
            // series[mask] — filter the underlying frame, keep the series col
            (PyVal::Col(c), _) => {
                let mask = self.translate_expr(index)?;
                let mask = self.as_col(mask)?;
                if !mask.same_frame(c) {
                    return Err(Error::Translate(
                        "series filtered with a mask from a different frame".into(),
                    ));
                }
                let filtered = self.emit_filter(&mask)?;
                let info = filtered
                    .col(&c.name)
                    .cloned()
                    .ok_or_else(|| Error::Translate("filtered column lost".into()))?;
                Ok(PyVal::Col(ColExpr::column(
                    filtered, &info.name, info.dtype,
                )))
            }
            (PyVal::Array(_), _) => self.array_subscript(&b, index),
            other => Err(Error::Translate(format!(
                "unsupported subscript on {}",
                other.0.kind()
            ))),
        }
    }

    fn compare(&mut self, op: py::CmpOp, left: &py::Expr, right: &py::Expr) -> Result<PyVal> {
        let l = self.translate_expr(left)?;
        let r = self.translate_expr(right)?;
        // `col in [list]` sugar.
        if matches!(op, py::CmpOp::In | py::CmpOp::NotIn) {
            let col = self.as_col(l)?;
            let PyVal::ConstList(list) = r else {
                return Err(Error::Translate(
                    "`in` requires a literal list on the right".into(),
                ));
            };
            let mut term: Option<Term> = None;
            for c in list {
                let eq = Term::bin(ScalarOp::Eq, col.term.clone(), Term::Const(c));
                term = Some(match term {
                    None => eq,
                    Some(acc) => Term::bin(ScalarOp::Or, acc, eq),
                });
            }
            let mut t = term.ok_or_else(|| Error::Translate("empty `in` list".into()))?;
            if op == py::CmpOp::NotIn {
                t = Term::Not(Box::new(t));
            }
            return Ok(PyVal::Col(ColExpr {
                term: t,
                dtype: DType::Bool,
                name: format!("{}_in", col.name),
                ..col
            }));
        }
        let sop = match op {
            py::CmpOp::Eq => ScalarOp::Eq,
            py::CmpOp::Ne => ScalarOp::Ne,
            py::CmpOp::Lt => ScalarOp::Lt,
            py::CmpOp::Le => ScalarOp::Le,
            py::CmpOp::Gt => ScalarOp::Gt,
            py::CmpOp::Ge => ScalarOp::Ge,
            other => return Err(Error::Translate(format!("unsupported comparison {other}"))),
        };
        self.combine(sop, l, r, DType::Bool)
    }

    fn binary(&mut self, op: py::BinOp, left: &py::Expr, right: &py::Expr) -> Result<PyVal> {
        let l = self.translate_expr(left)?;
        let r = self.translate_expr(right)?;
        let sop = match op {
            py::BinOp::Add => ScalarOp::Add,
            py::BinOp::Sub => ScalarOp::Sub,
            py::BinOp::Mul => ScalarOp::Mul,
            py::BinOp::Div => ScalarOp::Div,
            py::BinOp::Mod => ScalarOp::Mod,
            py::BinOp::BitAnd | py::BinOp::And => ScalarOp::And,
            py::BinOp::BitOr | py::BinOp::Or => ScalarOp::Or,
            py::BinOp::FloorDiv => {
                let v = self.combine(ScalarOp::Div, l, r, DType::Float)?;
                let c = self.as_col(v)?;
                return Ok(PyVal::Col(ColExpr {
                    term: Term::Ext {
                        func: "floor".into(),
                        args: vec![c.term.clone()],
                    },
                    dtype: DType::Float,
                    ..c
                }));
            }
            py::BinOp::Pow => {
                let (lc, rc, merged) = self.combine_cols(l, r)?;
                return Ok(PyVal::Col(ColExpr {
                    term: Term::Ext {
                        func: "power".into(),
                        args: vec![lc, rc],
                    },
                    dtype: DType::Float,
                    ..merged
                }));
            }
            py::BinOp::BitXor => {
                return Err(Error::Translate("^ is not supported on columns".into()))
            }
        };
        // Pure-constant arithmetic folds.
        let dtype = match sop {
            ScalarOp::And | ScalarOp::Or => DType::Bool,
            ScalarOp::Div => DType::Float,
            _ => DType::Float, // refined in combine()
        };
        self.combine(sop, l, r, dtype)
    }

    fn unary(&mut self, op: py::UnaryOp, operand: &py::Expr) -> Result<PyVal> {
        let v = self.translate_expr(operand)?;
        match op {
            py::UnaryOp::Invert | py::UnaryOp::Not => {
                let c = self.as_col(v)?;
                // Pure-isin masks carry a `true` placeholder term: negation
                // lives entirely in the exists flags.
                let term = if c.term == Term::Const(Const::Bool(true)) && !c.exists.is_empty() {
                    c.term.clone()
                } else {
                    Term::Not(Box::new(c.term.clone()))
                };
                Ok(PyVal::Col(ColExpr {
                    term,
                    dtype: DType::Bool,
                    exists: c
                        .exists
                        .iter()
                        .map(|e| ExistsSpec {
                            negated: !e.negated,
                            ..e.clone()
                        })
                        .collect(),
                    ..c
                }))
            }
            py::UnaryOp::Neg => match v {
                PyVal::Scalar(ScalarVal::Const(Const::Int(i))) => {
                    Ok(PyVal::Scalar(ScalarVal::Const(Const::Int(-i))))
                }
                PyVal::Scalar(ScalarVal::Const(Const::Float(f))) => {
                    Ok(PyVal::Scalar(ScalarVal::Const(Const::Float(-f))))
                }
                other => {
                    let c = self.as_col(other)?;
                    Ok(PyVal::Col(ColExpr {
                        term: Term::bin(ScalarOp::Sub, Term::int(0), c.term.clone()),
                        ..c
                    }))
                }
            },
            py::UnaryOp::Pos => Ok(v),
        }
    }

    fn if_expr(&mut self, test: &py::Expr, body: &py::Expr, orelse: &py::Expr) -> Result<PyVal> {
        let t = self.translate_expr(test)?;
        let b = self.translate_expr(body)?;
        let o = self.translate_expr(orelse)?;
        let tc = self.as_col(t)?;
        let (bt, ot) = (self.val_term(&b)?, self.val_term(&o)?);
        let dtype = match &b {
            PyVal::Col(c) => c.dtype,
            PyVal::Scalar(ScalarVal::Const(c)) => c.dtype().unwrap_or(DType::Float),
            _ => DType::Float,
        };
        Ok(PyVal::Col(ColExpr {
            term: Term::If {
                cond: Box::new(tc.term.clone()),
                then: Box::new(bt),
                els: Box::new(ot),
            },
            dtype,
            ..tc
        }))
    }

    /// Term form of a value usable inside another column expression.
    fn val_term(&mut self, v: &PyVal) -> Result<Term> {
        Ok(match v {
            PyVal::Col(c) => c.term.clone(),
            PyVal::Scalar(ScalarVal::Const(k)) => Term::Const(k.clone()),
            PyVal::Scalar(ScalarVal::Rel { rel, col, .. }) => {
                Term::Var(scalar_placeholder(rel, col))
            }
            other => {
                return Err(Error::Translate(format!(
                    "cannot embed a {} in an expression",
                    other.kind()
                )))
            }
        })
    }

    /// Combines two values with a binary operator into a column expression
    /// (or folds constants).
    fn combine(&mut self, op: ScalarOp, l: PyVal, r: PyVal, dtype: DType) -> Result<PyVal> {
        // Constant folding.
        if let (PyVal::Scalar(ScalarVal::Const(a)), PyVal::Scalar(ScalarVal::Const(b))) = (&l, &r) {
            if let Some(folded) = fold_consts(op, a, b) {
                return Ok(PyVal::Scalar(ScalarVal::Const(folded)));
            }
        }
        // Scalar ⊗ scalar where at least one side is an aggregation result.
        if let (PyVal::Scalar(a), PyVal::Scalar(b)) = (&l, &r) {
            return self.combine_scalars(op, a, b).map(PyVal::Scalar);
        }
        let (lt, rt, proto) = self.combine_cols(l, r)?;
        let dtype = refine_dtype(op, dtype, &proto);
        Ok(PyVal::Col(ColExpr {
            term: Term::bin(op, lt, rt),
            dtype,
            ..proto
        }))
    }

    /// Resolves two operands into terms over a shared context, merging
    /// scalar/exists dependencies.
    fn combine_cols(&mut self, l: PyVal, r: PyVal) -> Result<(Term, Term, ColExpr)> {
        let lc = match &l {
            PyVal::Col(_) | PyVal::Frame(_) => Some(self.as_col(l.clone())?),
            _ => None,
        };
        let rc = match &r {
            PyVal::Col(_) | PyVal::Frame(_) => Some(self.as_col(r.clone())?),
            _ => None,
        };
        match (lc, rc) {
            (Some(a), Some(b)) => {
                if !a.same_frame(&b) {
                    return Err(Error::Translate(
                        "binary operation on columns of different frames \
                         (merge them first)"
                            .into(),
                    ));
                }
                let mut proto = a.clone();
                proto.exists.extend(b.exists.clone());
                proto.scalar_deps.extend(b.scalar_deps.clone());
                Ok((a.term, b.term, proto))
            }
            (Some(a), None) => {
                let rt = self.val_term(&r)?;
                let mut proto = a.clone();
                if let PyVal::Scalar(ScalarVal::Rel { rel, cols, col, .. }) = &r {
                    proto.scalar_deps.push(ScalarDep {
                        rel: rel.clone(),
                        cols: cols.clone(),
                        col: col.clone(),
                    });
                }
                Ok((a.term, rt, proto))
            }
            (None, Some(b)) => {
                let lt = self.val_term(&l)?;
                let mut proto = b.clone();
                if let PyVal::Scalar(ScalarVal::Rel { rel, cols, col, .. }) = &l {
                    proto.scalar_deps.push(ScalarDep {
                        rel: rel.clone(),
                        cols: cols.clone(),
                        col: col.clone(),
                    });
                }
                Ok((lt, b.term, proto))
            }
            (None, None) => Err(Error::Translate(
                "binary operation requires at least one column operand".into(),
            )),
        }
    }

    /// Scalar ⊗ scalar arithmetic (e.g. TPC-H Q14's `100 * promo / total`):
    /// emits a fresh 1-row rule combining the operands.
    pub(crate) fn combine_scalars(
        &mut self,
        op: ScalarOp,
        l: &ScalarVal,
        r: &ScalarVal,
    ) -> Result<ScalarVal> {
        let mut b = BodyBuilder::new();
        let term_of = |s: &ScalarVal, b: &mut BodyBuilder| -> Term {
            match s {
                ScalarVal::Const(k) => Term::Const(k.clone()),
                ScalarVal::Rel { rel, cols, col, .. } => {
                    let dep = ScalarDep {
                        rel: rel.clone(),
                        cols: cols.clone(),
                        col: col.clone(),
                    };
                    b.access_scalar(&dep);
                    Term::Var(b.subst[&scalar_placeholder(rel, col)].clone())
                }
            }
        };
        let lt = term_of(l, &mut b);
        let rt = term_of(r, &mut b);
        let v = b.fresh_var("s");
        b.atoms.push(Atom::Assign {
            var: v.clone(),
            term: Term::bin(op, lt, rt),
        });
        let rel = self.fresh_rel();
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), vec![("c0".into(), v)]),
            body: Body::new(b.atoms),
        });
        let dtype = if op.is_predicate() {
            DType::Bool
        } else {
            DType::Float
        };
        Ok(ScalarVal::Rel {
            rel,
            cols: vec!["c0".into()],
            col: "c0".into(),
            dtype,
        })
    }
}

fn fold_consts(op: ScalarOp, a: &Const, b: &Const) -> Option<Const> {
    use Const::*;
    Some(match (op, a, b) {
        (ScalarOp::Add, Int(x), Int(y)) => Int(x + y),
        (ScalarOp::Sub, Int(x), Int(y)) => Int(x - y),
        (ScalarOp::Mul, Int(x), Int(y)) => Int(x * y),
        (ScalarOp::Add, Float(x), Float(y)) => Float(x + y),
        (ScalarOp::Sub, Float(x), Float(y)) => Float(x - y),
        (ScalarOp::Mul, Float(x), Float(y)) => Float(x * y),
        (ScalarOp::Div, Int(x), Int(y)) if *y != 0 => Float(*x as f64 / *y as f64),
        (ScalarOp::Div, Float(x), Float(y)) => Float(x / y),
        _ => return None,
    })
}

fn refine_dtype(op: ScalarOp, default: DType, proto: &ColExpr) -> DType {
    match op {
        ScalarOp::Eq
        | ScalarOp::Ne
        | ScalarOp::Lt
        | ScalarOp::Le
        | ScalarOp::Gt
        | ScalarOp::Ge
        | ScalarOp::And
        | ScalarOp::Or
        | ScalarOp::Like
        | ScalarOp::NotLike => DType::Bool,
        ScalarOp::Div => DType::Float,
        ScalarOp::Concat => DType::Str,
        _ => {
            if proto.dtype == DType::Int && default == DType::Float {
                // int arithmetic stays int for +,-,*
                DType::Int
            } else {
                proto.dtype
            }
        }
    }
}

// Method-call dispatch lives in a second impl block to keep files readable.
mod methods;
