//! Call dispatch: Pandas method translations (Table V) and module functions.

use crate::pandas::BodyBuilder;
use crate::value::*;
use crate::Translator;
use pytond_common::{DType, Error, Result};
use pytond_pyparse::ast as py;
use pytond_tondir::{AggFunc, Atom, Body, Const, Head, OuterKind, Rule, ScalarOp, Term};

impl<'a> Translator<'a> {
    pub(crate) fn call(
        &mut self,
        func: &py::Expr,
        args: &[py::Expr],
        kwargs: &[(String, py::Expr)],
    ) -> Result<PyVal> {
        // Module-level functions (np.*, pd.*, DataFrame).
        if let Some(dotted) = func.dotted_name() {
            match dotted.as_str() {
                "np.einsum" | "numpy.einsum" => return self.np_einsum(args, kwargs),
                "np.array" | "numpy.array" => return self.np_array(args),
                "np.where" | "numpy.where" => return self.np_where(args),
                "np.dot" | "numpy.dot" => return self.np_dot(args),
                "pd.DataFrame" | "pandas.DataFrame" | "DataFrame" => {
                    return self.pd_dataframe(args, kwargs)
                }
                "len" => {
                    let v = self.translate_expr(&args[0])?;
                    return self.series_aggregate(v, AggFunc::Count);
                }
                _ => {}
            }
        }
        // Method calls.
        let py::Expr::Attribute { value, attr } = func else {
            return Err(Error::Translate(format!(
                "unsupported function call {func:?}"
            )));
        };
        let recv = self.translate_expr(value)?;
        self.method_call(recv, attr, args, kwargs)
    }

    fn method_call(
        &mut self,
        recv: PyVal,
        method: &str,
        args: &[py::Expr],
        kwargs: &[(String, py::Expr)],
    ) -> Result<PyVal> {
        match (&recv, method) {
            // ---------------- frame methods ----------------
            (PyVal::Frame(_), "merge") => self.merge(recv, args, kwargs),
            (PyVal::Col(_), "merge") => self.merge(recv, args, kwargs),
            (PyVal::Frame(f), "head") => {
                let n = self.usize_arg(args, kwargs, "n", 0)?;
                self.head(f.clone(), n).map(PyVal::Frame)
            }
            (PyVal::Frame(f), "sort_values") => {
                let f = f.clone();
                self.sort_values(&f, args, kwargs).map(PyVal::Frame)
            }
            (PyVal::Frame(f), "groupby") => {
                let keys = self.name_list_arg(args, kwargs, "by", 0)?;
                for k in &keys {
                    if f.col(k).is_none() {
                        return Err(Error::Translate(format!("no grouping column '{k}'")));
                    }
                }
                Ok(PyVal::GroupBy(GroupByVal {
                    frame: f.clone(),
                    keys,
                }))
            }
            (PyVal::Frame(f), "drop") => {
                let names = self.drop_names(args, kwargs)?;
                let outputs = f
                    .cols
                    .iter()
                    .filter(|c| !names.contains(&c.name))
                    .map(|c| (c.name.clone(), Term::Var(col_placeholder(&c.name)), c.dtype))
                    .collect();
                let f = f.clone();
                self.emit_project(&f, outputs, f.id_col.is_some())
                    .map(PyVal::Frame)
            }
            (PyVal::Frame(f), "rename") => {
                let mapping = self.rename_mapping(kwargs)?;
                let outputs = f
                    .cols
                    .iter()
                    .map(|c| {
                        let new = mapping
                            .iter()
                            .find(|(from, _)| *from == c.name)
                            .map(|(_, to)| to.clone())
                            .unwrap_or_else(|| c.name.clone());
                        (new, Term::Var(col_placeholder(&c.name)), c.dtype)
                    })
                    .collect();
                let f = f.clone();
                self.emit_project(&f, outputs, f.id_col.is_some())
                    .map(PyVal::Frame)
            }
            (PyVal::Frame(f), "drop_duplicates") => {
                let f = f.clone();
                self.distinct_frame(&f).map(PyVal::Frame)
            }
            (PyVal::Frame(f), "reset_index") | (PyVal::Frame(f), "copy") => {
                Ok(PyVal::Frame(f.clone()))
            }
            (PyVal::Frame(f), "to_numpy") | (PyVal::Frame(f), "values") => {
                let f = f.clone();
                self.frame_to_array(&f).map(PyVal::Array)
            }
            (PyVal::Frame(f), "pivot_table") => {
                let f = f.clone();
                self.pivot_table(&f, args, kwargs).map(PyVal::Frame)
            }
            (PyVal::Frame(_), "aggregate") | (PyVal::Frame(_), "agg")
                if !args.is_empty() && matches!(args[0], py::Expr::Str(_)) =>
            {
                // df.aggregate('sum') — per-column reduction (Table V).
                let fname = args[0].as_str_lit().unwrap();
                let func = parse_agg(fname)?;
                let PyVal::Frame(f) = recv.clone() else {
                    unreachable!()
                };
                self.frame_aggregate(&f, func).map(PyVal::Frame)
            }

            // ---------------- series / column-expression methods ----------------
            (PyVal::Frame(_), m) | (PyVal::Col(_), m)
                if matches!(
                    m,
                    "sum" | "mean" | "min" | "max" | "count" | "nunique" | "size"
                ) =>
            {
                let func = parse_agg(m)?;
                self.series_aggregate(recv, func)
            }
            (PyVal::Col(_), "unique") | (PyVal::Frame(_), "unique") => {
                let c = self.as_col(recv)?;
                self.unique(&c).map(PyVal::Frame)
            }
            (PyVal::Col(_), "isin") | (PyVal::Frame(_), "isin") => {
                let c = self.as_col(recv)?;
                let other = self.translate_expr(&args[0])?;
                self.isin(&c, other, false)
            }
            (PyVal::Col(_), "fillna") => {
                let c = self.as_col(recv)?;
                let v = self.translate_expr(&args[0])?;
                let PyVal::Scalar(ScalarVal::Const(k)) = v else {
                    return Err(Error::Translate("fillna requires a constant".into()));
                };
                Ok(PyVal::Col(ColExpr {
                    term: Term::Ext {
                        func: "coalesce".into(),
                        args: vec![c.term.clone(), Term::Const(k)],
                    },
                    ..c
                }))
            }
            (PyVal::Col(_), "round") => {
                let c = self.as_col(recv)?;
                let digits = self.usize_arg(args, kwargs, "decimals", 0).unwrap_or(0);
                Ok(PyVal::Col(ColExpr {
                    term: Term::Ext {
                        func: "round".into(),
                        args: vec![c.term.clone(), Term::int(digits as i64)],
                    },
                    dtype: DType::Float,
                    ..c
                }))
            }
            (PyVal::Col(_), "abs") => {
                let c = self.as_col(recv)?;
                Ok(PyVal::Col(ColExpr {
                    term: Term::Ext {
                        func: "abs".into(),
                        args: vec![c.term.clone()],
                    },
                    ..c
                }))
            }
            (PyVal::Col(_), "apply") | (PyVal::Frame(_), "apply") => self.apply(recv, args, kwargs),
            (PyVal::Col(_), "astype") => {
                // types are structural in TondIR; astype only adjusts dtype
                let c = self.as_col(recv)?;
                let target = args[0]
                    .as_str_lit()
                    .or_else(|| args[0].as_name())
                    .unwrap_or("float");
                let dtype = match target {
                    "int" | "int64" | "int32" => DType::Int,
                    "str" | "object" => DType::Str,
                    _ => DType::Float,
                };
                Ok(PyVal::Col(ColExpr { dtype, ..c }))
            }

            // ---------------- str accessor ----------------
            (PyVal::StrAccessor(c), "contains") => {
                let pat = self.str_arg(args, 0)?;
                Ok(PyVal::Col(like(c.clone(), format!("%{pat}%"))))
            }
            (PyVal::StrAccessor(c), "startswith") => {
                let pat = self.str_arg(args, 0)?;
                Ok(PyVal::Col(like(c.clone(), format!("{pat}%"))))
            }
            (PyVal::StrAccessor(c), "endswith") => {
                let pat = self.str_arg(args, 0)?;
                Ok(PyVal::Col(like(c.clone(), format!("%{pat}"))))
            }
            (PyVal::StrAccessor(c), "slice") => {
                let start = self.usize_arg(args, kwargs, "start", 0)?;
                let stop = self.usize_arg(args, kwargs, "stop", 1)?;
                Ok(PyVal::Col(ColExpr {
                    term: Term::Ext {
                        func: "substr".into(),
                        args: vec![
                            c.term.clone(),
                            Term::int(start as i64 + 1),
                            Term::int((stop - start) as i64),
                        ],
                    },
                    dtype: DType::Str,
                    ..c.clone()
                }))
            }
            (PyVal::StrAccessor(c), "len") => Ok(PyVal::Col(ColExpr {
                term: Term::Ext {
                    func: "strlen".into(),
                    args: vec![c.term.clone()],
                },
                dtype: DType::Int,
                ..c.clone()
            })),

            // ---------------- dt accessor (as methods: .dt.year()) ----------------
            (PyVal::DtAccessor(c), "year")
            | (PyVal::DtAccessor(c), "month")
            | (PyVal::DtAccessor(c), "day") => Ok(PyVal::Col(ColExpr {
                term: Term::Ext {
                    func: method.to_string(),
                    args: vec![c.term.clone()],
                },
                dtype: DType::Int,
                ..c.clone()
            })),

            // ---------------- group-by aggregation ----------------
            (PyVal::GroupBy(g), "agg") | (PyVal::GroupBy(g), "aggregate") => {
                let g = g.clone();
                self.groupby_agg(&g, args, kwargs).map(PyVal::Frame)
            }
            (PyVal::GroupBy(g), "size") => {
                let g = g.clone();
                self.groupby_all(&g, AggFunc::Count, Some("size"))
                    .map(PyVal::Frame)
            }
            (PyVal::GroupBy(g), m)
                if matches!(m, "sum" | "mean" | "min" | "max" | "count" | "nunique") =>
            {
                let g = g.clone();
                self.groupby_all(&g, parse_agg(m)?, None).map(PyVal::Frame)
            }

            // ---------------- ndarray methods (numpy.rs) ----------------
            (PyVal::Array(_), _) => self.array_method(recv, method, args, kwargs),

            _ => Err(Error::Translate(format!(
                "unsupported method '{method}' on {}",
                recv.kind()
            ))),
        }
    }

    // ---------------- pandas operations ----------------

    /// `df.head(n)` — fused into the defining sorted rule when possible
    /// (paper: "separately-defined ORDER BY/LIMIT pairs are done within a
    /// single CTE").
    fn head(&mut self, frame: FrameVal, n: usize) -> Result<FrameVal> {
        if let Some(idx) = frame.rule_index {
            let can_fuse =
                self.rules[idx].head.sort.is_some() && self.rules[idx].head.limit.is_none();
            if can_fuse {
                self.rules[idx].head.limit = Some(n as u64);
                return Ok(frame);
            }
        }
        let outputs = frame
            .cols
            .iter()
            .map(|c| (c.name.clone(), Term::Var(col_placeholder(&c.name)), c.dtype))
            .collect();
        let out = self.emit_project(&frame, outputs, frame.id_col.is_some())?;
        let idx = out.rule_index.expect("just created");
        self.rules[idx].head.limit = Some(n as u64);
        Ok(out)
    }

    fn sort_values(
        &mut self,
        frame: &FrameVal,
        args: &[py::Expr],
        kwargs: &[(String, py::Expr)],
    ) -> Result<FrameVal> {
        let by = self.name_list_arg(args, kwargs, "by", 0)?;
        let asc: Vec<bool> = match kwargs.iter().find(|(k, _)| k == "ascending") {
            None => vec![true; by.len()],
            Some((_, py::Expr::Bool(b))) => vec![*b; by.len()],
            Some((_, py::Expr::List(items))) => items
                .iter()
                .map(|i| match i {
                    py::Expr::Bool(b) => Ok(*b),
                    other => Err(Error::Translate(format!(
                        "ascending entries must be booleans, found {other:?}"
                    ))),
                })
                .collect::<Result<_>>()?,
            Some((_, other)) => {
                return Err(Error::Translate(format!(
                    "unsupported ascending argument {other:?}"
                )))
            }
        };
        let outputs = frame
            .cols
            .iter()
            .map(|c| (c.name.clone(), Term::Var(col_placeholder(&c.name)), c.dtype))
            .collect();
        let out = self.emit_project(frame, outputs, frame.id_col.is_some())?;
        let idx = out.rule_index.expect("just created");
        // Sort keys refer to the head vars of the new rule.
        let rule = &mut self.rules[idx];
        let mut keys = Vec::new();
        for (name, a) in by.iter().zip(asc) {
            let var = rule
                .head
                .var_of(name)
                .ok_or_else(|| Error::Translate(format!("no sort column '{name}'")))?
                .to_string();
            keys.push((var, a));
        }
        rule.head.sort = Some(keys);
        Ok(out)
    }

    fn distinct_frame(&mut self, frame: &FrameVal) -> Result<FrameVal> {
        let outputs = frame
            .cols
            .iter()
            .map(|c| (c.name.clone(), Term::Var(col_placeholder(&c.name)), c.dtype))
            .collect();
        let out = self.emit_project(frame, outputs, false)?;
        let idx = out.rule_index.expect("just created");
        self.rules[idx].head.distinct = true;
        Ok(out)
    }

    /// `series.unique()` (Table II).
    fn unique(&mut self, c: &ColExpr) -> Result<FrameVal> {
        let frame = c.frame.clone();
        let mut out = self.emit_project(
            &frame,
            vec![(c.name.clone(), c.term.clone(), c.dtype)],
            false,
        )?;
        let idx = out.rule_index.expect("just created");
        self.rules[idx].head.distinct = true;
        out.is_series = true;
        Ok(out)
    }

    /// `series.isin(other)` → exists atom (Table I's containment filtering).
    fn isin(&mut self, c: &ColExpr, other: PyVal, negated: bool) -> Result<PyVal> {
        let inner = self.materialize_frame(other)?;
        let inner_col = inner
            .series_col()
            .ok_or_else(|| Error::Translate("isin requires a single-column operand".into()))?
            .clone();
        let phys = inner.physical_cols();
        let pos = phys
            .iter()
            .position(|p| *p == inner_col.name)
            .expect("series col physical");
        let spec = ExistsSpec {
            outer: c.term.clone(),
            inner_rel: inner.rel.clone(),
            inner_col: inner_col.name,
            inner_arity: phys.len(),
            inner_col_pos: pos,
            negated,
        };
        let mut out = c.clone();
        out.exists.push(spec);
        out.term = Term::Const(Const::Bool(true));
        out.dtype = DType::Bool;
        Ok(PyVal::Col(out))
    }

    /// Whole-column aggregation → 1-row relation scalar.
    fn series_aggregate(&mut self, recv: PyVal, func: AggFunc) -> Result<PyVal> {
        let c = self.as_col(recv)?;
        let rel = self.fresh_rel();
        let mut b = BodyBuilder::new();
        b.access_frame(&c.frame, true);
        let term = b.add_expr(&c)?;
        let out_var = b.fresh_var("agg");
        let agg_term = Term::Agg {
            func,
            arg: Box::new(term),
        };
        // Pandas semantics: sum() over an empty series is 0, not NULL.
        let agg_term = if func == AggFunc::Sum {
            Term::Ext {
                func: "coalesce".into(),
                args: vec![agg_term, Term::int(0)],
            }
        } else {
            agg_term
        };
        b.atoms.push(Atom::Assign {
            var: out_var.clone(),
            term: agg_term,
        });
        let col_name = format!("{}_{}", c.name, func.name());
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), vec![(col_name.clone(), out_var)]),
            body: Body::new(b.atoms),
        });
        let dtype = match func {
            AggFunc::Count | AggFunc::CountDistinct => DType::Int,
            AggFunc::Avg => DType::Float,
            _ => c.dtype,
        };
        Ok(PyVal::Scalar(ScalarVal::Rel {
            rel,
            cols: vec![col_name.clone()],
            col: col_name,
            dtype,
        }))
    }

    /// `df.aggregate(func)` — reduce every column (Table V row 3).
    fn frame_aggregate(&mut self, frame: &FrameVal, func: AggFunc) -> Result<FrameVal> {
        let rel = self.fresh_rel();
        let mut b = BodyBuilder::new();
        let (_, _, map) = b.access_frame(frame, true);
        let mut head_cols = Vec::new();
        let mut infos = Vec::new();
        for c in &frame.cols {
            let v = b.fresh_var(&format!("{}_agg", c.name));
            b.atoms.push(Atom::Assign {
                var: v.clone(),
                term: Term::Agg {
                    func,
                    arg: Box::new(Term::Var(map[&c.name].clone())),
                },
            });
            head_cols.push((c.name.clone(), v));
            infos.push(ColInfo::new(
                c.name.clone(),
                match func {
                    AggFunc::Count | AggFunc::CountDistinct => DType::Int,
                    AggFunc::Avg => DType::Float,
                    _ => c.dtype,
                },
            ));
        }
        let rule_index = self.rules.len();
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), head_cols),
            body: Body::new(b.atoms),
        });
        Ok(FrameVal {
            rel,
            cols: infos,
            id_col: None,
            rule_index: Some(rule_index),
            is_series: false,
        })
    }

    /// `groupby(keys).agg(out=('col','func'), ...)` or `.agg({'col':'func'})`.
    fn groupby_agg(
        &mut self,
        g: &GroupByVal,
        args: &[py::Expr],
        kwargs: &[(String, py::Expr)],
    ) -> Result<FrameVal> {
        let mut specs: Vec<(String, String, AggFunc)> = Vec::new(); // (out, in, func)
        for (out_name, v) in kwargs {
            let py::Expr::Tuple(parts) = v else {
                return Err(Error::Translate(
                    "named aggregation expects (column, func) tuples".into(),
                ));
            };
            let col = parts[0]
                .as_str_lit()
                .ok_or_else(|| Error::Translate("agg column must be a string".into()))?;
            let fname = parts[1]
                .as_str_lit()
                .ok_or_else(|| Error::Translate("agg func must be a string".into()))?;
            specs.push((out_name.clone(), col.to_string(), parse_agg(fname)?));
        }
        if let Some(py::Expr::Dict(items)) = args.first() {
            for (k, v) in items {
                let col = k
                    .as_str_lit()
                    .ok_or_else(|| Error::Translate("agg dict keys must be strings".into()))?;
                let fname = v
                    .as_str_lit()
                    .ok_or_else(|| Error::Translate("agg dict values must be strings".into()))?;
                specs.push((col.to_string(), col.to_string(), parse_agg(fname)?));
            }
        }
        if specs.is_empty() {
            return Err(Error::Translate("empty aggregation".into()));
        }
        self.emit_groupby(&g.frame, &g.keys, &specs)
    }

    /// `groupby(keys).sum()` etc — aggregate every non-key column.
    fn groupby_all(
        &mut self,
        g: &GroupByVal,
        func: AggFunc,
        count_name: Option<&str>,
    ) -> Result<FrameVal> {
        let mut specs = Vec::new();
        if let Some(n) = count_name {
            // .size(): count rows via the first key column.
            specs.push((n.to_string(), g.keys[0].clone(), AggFunc::Count));
        } else {
            for c in &g.frame.cols {
                if !g.keys.contains(&c.name) {
                    specs.push((c.name.clone(), c.name.clone(), func));
                }
            }
        }
        self.emit_groupby(&g.frame, &g.keys, &specs)
    }

    pub(crate) fn emit_groupby(
        &mut self,
        frame: &FrameVal,
        keys: &[String],
        specs: &[(String, String, AggFunc)],
    ) -> Result<FrameVal> {
        let rel = self.fresh_rel();
        let mut b = BodyBuilder::new();
        let (_, _, map) = b.access_frame(frame, true);
        let mut head_cols = Vec::new();
        let mut infos = Vec::new();
        let mut group_vars = Vec::new();
        for k in keys {
            let var = map
                .get(k)
                .ok_or_else(|| Error::Translate(format!("no grouping column '{k}'")))?;
            head_cols.push((k.clone(), var.clone()));
            group_vars.push(var.clone());
            infos.push(frame.col(k).cloned().unwrap());
        }
        for (out, input, func) in specs {
            let src = map
                .get(input)
                .ok_or_else(|| Error::Translate(format!("no aggregation column '{input}'")))?;
            let v = b.fresh_var(out);
            b.atoms.push(Atom::Assign {
                var: v.clone(),
                term: Term::Agg {
                    func: *func,
                    arg: Box::new(Term::Var(src.clone())),
                },
            });
            head_cols.push((out.clone(), v));
            let src_dtype = frame.col(input).map(|c| c.dtype).unwrap_or(DType::Float);
            infos.push(ColInfo::new(
                out.clone(),
                match func {
                    AggFunc::Count | AggFunc::CountDistinct => DType::Int,
                    AggFunc::Avg => DType::Float,
                    _ => src_dtype,
                },
            ));
        }
        let rule_index = self.rules.len();
        self.rules.push(Rule {
            head: Head {
                rel: rel.clone(),
                cols: head_cols,
                group: Some(group_vars),
                sort: None,
                limit: None,
                distinct: false,
            },
            body: Body::new(b.atoms),
        });
        Ok(FrameVal {
            rel,
            cols: infos,
            id_col: None,
            rule_index: Some(rule_index),
            is_series: false,
        })
    }

    /// `df1.merge(df2, how, on/left_on/right_on)` with the implicit renaming
    /// rules of Section III-C.
    fn merge(
        &mut self,
        recv: PyVal,
        args: &[py::Expr],
        kwargs: &[(String, py::Expr)],
    ) -> Result<PyVal> {
        let left = self.materialize_if_col(recv)?;
        let right_val = self.translate_expr(&args[0])?;
        let right = self.materialize_if_col(right_val)?;
        let how = kwargs
            .iter()
            .find(|(k, _)| k == "how")
            .and_then(|(_, v)| v.as_str_lit())
            .unwrap_or("inner");
        let (left_on, right_on) = if let Some((_, on)) = kwargs.iter().find(|(k, _)| k == "on") {
            let names = self.names_of(on)?;
            (names.clone(), names)
        } else {
            let l = kwargs
                .iter()
                .find(|(k, _)| k == "left_on")
                .map(|(_, v)| self.names_of(v))
                .transpose()?
                .unwrap_or_default();
            let r = kwargs
                .iter()
                .find(|(k, _)| k == "right_on")
                .map(|(_, v)| self.names_of(v))
                .transpose()?
                .unwrap_or_default();
            (l, r)
        };
        if how != "cross" && (left_on.is_empty() || left_on.len() != right_on.len()) {
            return Err(Error::Translate(
                "merge requires matching on/left_on/right_on".into(),
            ));
        }

        let rel = self.fresh_rel();
        let mut b = BodyBuilder::new();
        let (lalias, _, lmap) = b.access_frame(&left, false);
        let (ralias, _, rmap) = b.access_frame(&right, false);

        // Key equality: shared variables for inner joins; explicit markers
        // for outer joins (paper, Section III-C).
        let mut marker_on = Vec::new();
        for (lk, rk) in left_on.iter().zip(&right_on) {
            let lv = lmap
                .get(lk)
                .ok_or_else(|| Error::Translate(format!("no left key '{lk}'")))?
                .clone();
            let rv = rmap
                .get(rk)
                .ok_or_else(|| Error::Translate(format!("no right key '{rk}'")))?
                .clone();
            match how {
                "inner" => {
                    b.atoms.push(Atom::Pred(Term::bin(
                        ScalarOp::Eq,
                        Term::Var(lv),
                        Term::Var(rv),
                    )));
                }
                "left" | "right" | "outer" | "full" => marker_on.push((lv, rv)),
                "cross" => {}
                other => return Err(Error::Translate(format!("unknown join type '{other}'"))),
            }
        }
        if !marker_on.is_empty() {
            let kind = match how {
                "left" => OuterKind::Left,
                "right" => OuterKind::Right,
                _ => OuterKind::Full,
            };
            b.atoms.push(Atom::OuterJoin {
                kind,
                left: lalias,
                right: ralias,
                on: marker_on,
            });
        }

        // Output schema with the implicit `_x`/`_y` renaming.
        let merged_keys: Vec<&String> = left_on
            .iter()
            .zip(&right_on)
            .filter(|(l, r)| l == r)
            .map(|(l, _)| l)
            .collect();
        let mut head_cols = Vec::new();
        let mut infos = Vec::new();
        for c in &left.cols {
            let name = if merged_keys.contains(&&c.name) {
                c.name.clone()
            } else if right.col(&c.name).is_some() {
                format!("{}_x", c.name)
            } else {
                c.name.clone()
            };
            head_cols.push((name.clone(), lmap[&c.name].clone()));
            infos.push(ColInfo::new(name, c.dtype));
        }
        for c in &right.cols {
            if merged_keys.contains(&&c.name) {
                continue;
            }
            let name = if left.col(&c.name).is_some() {
                format!("{}_y", c.name)
            } else {
                c.name.clone()
            };
            head_cols.push((name.clone(), rmap[&c.name].clone()));
            infos.push(ColInfo::new(name, c.dtype));
        }
        let rule_index = self.rules.len();
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), head_cols),
            body: Body::new(b.atoms),
        });
        Ok(PyVal::Frame(FrameVal {
            rel,
            cols: infos,
            id_col: None,
            rule_index: Some(rule_index),
            is_series: false,
        }))
    }

    /// `df.pivot_table(index, columns, values, aggfunc)` (Section III-C).
    fn pivot_table(
        &mut self,
        frame: &FrameVal,
        args: &[py::Expr],
        kwargs: &[(String, py::Expr)],
    ) -> Result<FrameVal> {
        let index = self
            .str_kwarg(kwargs, "index")
            .or_else(|| args.first().and_then(|a| a.as_str_lit().map(String::from)))
            .ok_or_else(|| Error::Translate("pivot_table requires index=".into()))?;
        let columns = self
            .str_kwarg(kwargs, "columns")
            .ok_or_else(|| Error::Translate("pivot_table requires columns=".into()))?;
        let values = self
            .str_kwarg(kwargs, "values")
            .ok_or_else(|| Error::Translate("pivot_table requires values=".into()))?;
        let fname = self
            .str_kwarg(kwargs, "aggfunc")
            .or_else(|| self.str_kwarg(kwargs, "func"))
            .unwrap_or_else(|| "sum".to_string());
        let func = parse_agg(&fname)?;
        let distinct = self
            .options
            .pivot_values
            .get(&columns)
            .cloned()
            .ok_or_else(|| {
                Error::Translate(format!(
                    "pivot_table needs the distinct values of '{columns}' \
                     (pass pivot_values in the @pytond decorator)"
                ))
            })?;
        let rel = self.fresh_rel();
        let mut b = BodyBuilder::new();
        let (_, _, map) = b.access_frame(frame, true);
        let idx_var = map
            .get(&index)
            .ok_or_else(|| Error::Translate(format!("no pivot index column '{index}'")))?
            .clone();
        let col_var = map
            .get(&columns)
            .ok_or_else(|| Error::Translate(format!("no pivot columns column '{columns}'")))?
            .clone();
        let val_var = map
            .get(&values)
            .ok_or_else(|| Error::Translate(format!("no pivot values column '{values}'")))?
            .clone();
        let mut head_cols = vec![(index.clone(), idx_var.clone())];
        let mut infos = vec![frame.col(&index).cloned().unwrap()];
        let val_dtype = frame.col(&values).map(|c| c.dtype).unwrap_or(DType::Float);
        for value in &distinct {
            // vK = agg(if(columns = value, values, 0))
            let v = b.fresh_var(value);
            b.atoms.push(Atom::Assign {
                var: v.clone(),
                term: Term::Agg {
                    func,
                    arg: Box::new(Term::If {
                        cond: Box::new(Term::bin(
                            ScalarOp::Eq,
                            Term::Var(col_var.clone()),
                            Term::Const(Const::Str(value.clone())),
                        )),
                        then: Box::new(Term::Var(val_var.clone())),
                        els: Box::new(Term::int(0)),
                    }),
                },
            });
            head_cols.push((value.clone(), v));
            infos.push(ColInfo::new(value.clone(), val_dtype));
        }
        let rule_index = self.rules.len();
        self.rules.push(Rule {
            head: Head {
                rel: rel.clone(),
                cols: head_cols,
                group: Some(vec![idx_var]),
                sort: Some(vec![(
                    // Pandas sorts the pivot index.
                    index.clone(),
                    true,
                )]),
                limit: None,
                distinct: false,
            },
            body: Body::new(b.atoms),
        });
        // sort key refers to head var: fix to the grouped variable
        let rule = self.rules.last_mut().unwrap();
        let gv = rule.head.cols[0].1.clone();
        rule.head.sort = Some(vec![(gv, true)]);
        Ok(FrameVal {
            rel,
            cols: infos,
            id_col: None,
            rule_index: Some(rule_index),
            is_series: false,
        })
    }

    /// `series.apply(lambda x: ...)` / `df.apply(lambda row: ..., axis=1)`.
    fn apply(
        &mut self,
        recv: PyVal,
        args: &[py::Expr],
        _kwargs: &[(String, py::Expr)],
    ) -> Result<PyVal> {
        let lambda = self.translate_expr(&args[0])?;
        let PyVal::Lambda { params, body } = lambda else {
            return Err(Error::Translate("apply requires a lambda".into()));
        };
        let param = params
            .first()
            .ok_or_else(|| Error::Translate("lambda needs one parameter".into()))?
            .clone();
        // Bind the parameter to the receiver and translate the body.
        let saved = self.env.get(&param).cloned();
        self.env.insert(param.clone(), recv);
        let out = self.translate_expr(&body);
        match saved {
            Some(v) => {
                self.env.insert(param, v);
            }
            None => {
                self.env.remove(&param);
            }
        }
        out
    }

    fn materialize_if_col(&mut self, v: PyVal) -> Result<FrameVal> {
        match v {
            PyVal::Frame(f) => Ok(f),
            PyVal::Col(_) => self.materialize_frame(v),
            other => Err(Error::Translate(format!(
                "expected a frame, found {}",
                other.kind()
            ))),
        }
    }

    // ---------------- pd.DataFrame / np constructors ----------------

    fn pd_dataframe(&mut self, args: &[py::Expr], kwargs: &[(String, py::Expr)]) -> Result<PyVal> {
        if args.is_empty() {
            // Empty DataFrame awaiting column assignments.
            return Ok(PyVal::Frame(FrameVal::base("", vec![])));
        }
        let data = self.translate_expr(&args[0])?;
        let columns = kwargs
            .iter()
            .find(|(k, _)| k == "columns")
            .map(|(_, v)| self.names_of(v))
            .transpose()?;
        match data {
            PyVal::Array(a) => self.array_to_frame(&a, columns),
            PyVal::Frame(f) => Ok(PyVal::Frame(f)),
            other => Err(Error::Translate(format!(
                "DataFrame() from {} is not supported",
                other.kind()
            ))),
        }
    }

    // ---------------- argument helpers ----------------

    pub(crate) fn names_of(&mut self, e: &py::Expr) -> Result<Vec<String>> {
        match e {
            py::Expr::Str(s) => Ok(vec![s.clone()]),
            py::Expr::List(_) => match self.translate_expr(e)? {
                PyVal::NameList(n) => Ok(n),
                other => Err(Error::Translate(format!(
                    "expected column names, found {}",
                    other.kind()
                ))),
            },
            py::Expr::Name(_) => match self.translate_expr(e)? {
                PyVal::NameList(n) => Ok(n),
                other => Err(Error::Translate(format!(
                    "expected column names, found {}",
                    other.kind()
                ))),
            },
            other => Err(Error::Translate(format!(
                "expected column names, found {other:?}"
            ))),
        }
    }

    fn name_list_arg(
        &mut self,
        args: &[py::Expr],
        kwargs: &[(String, py::Expr)],
        kw: &str,
        pos: usize,
    ) -> Result<Vec<String>> {
        if let Some((_, v)) = kwargs.iter().find(|(k, _)| k == kw) {
            let v = v.clone();
            return self.names_of(&v);
        }
        if let Some(a) = args.get(pos) {
            let a = a.clone();
            return self.names_of(&a);
        }
        Err(Error::Translate(format!("missing argument '{kw}'")))
    }

    fn usize_arg(
        &mut self,
        args: &[py::Expr],
        kwargs: &[(String, py::Expr)],
        kw: &str,
        pos: usize,
    ) -> Result<usize> {
        let e = kwargs
            .iter()
            .find(|(k, _)| k == kw)
            .map(|(_, v)| v)
            .or_else(|| args.get(pos))
            .ok_or_else(|| Error::Translate(format!("missing argument '{kw}'")))?;
        match e {
            py::Expr::Int(i) if *i >= 0 => Ok(*i as usize),
            other => Err(Error::Translate(format!(
                "argument '{kw}' must be a non-negative integer, found {other:?}"
            ))),
        }
    }

    fn str_arg(&mut self, args: &[py::Expr], pos: usize) -> Result<String> {
        args.get(pos)
            .and_then(|a| a.as_str_lit())
            .map(String::from)
            .ok_or_else(|| Error::Translate("expected a string argument".into()))
    }

    fn str_kwarg(&self, kwargs: &[(String, py::Expr)], kw: &str) -> Option<String> {
        kwargs
            .iter()
            .find(|(k, _)| k == kw)
            .and_then(|(_, v)| v.as_str_lit())
            .map(String::from)
    }

    fn drop_names(
        &mut self,
        args: &[py::Expr],
        kwargs: &[(String, py::Expr)],
    ) -> Result<Vec<String>> {
        if let Some((_, v)) = kwargs.iter().find(|(k, _)| k == "columns") {
            let v = v.clone();
            return self.names_of(&v);
        }
        if let Some(a) = args.first() {
            let a = a.clone();
            return self.names_of(&a);
        }
        Err(Error::Translate("drop requires columns".into()))
    }

    fn rename_mapping(&self, kwargs: &[(String, py::Expr)]) -> Result<Vec<(String, String)>> {
        let Some((_, py::Expr::Dict(items))) = kwargs.iter().find(|(k, _)| k == "columns") else {
            return Err(Error::Translate("rename requires columns={...}".into()));
        };
        items
            .iter()
            .map(|(k, v)| {
                let from = k
                    .as_str_lit()
                    .ok_or_else(|| Error::Translate("rename keys must be strings".into()))?;
                let to = v
                    .as_str_lit()
                    .ok_or_else(|| Error::Translate("rename values must be strings".into()))?;
                Ok((from.to_string(), to.to_string()))
            })
            .collect()
    }
}

fn like(c: ColExpr, pattern: String) -> ColExpr {
    ColExpr {
        term: Term::bin(
            ScalarOp::Like,
            c.term.clone(),
            Term::Const(Const::Str(pattern)),
        ),
        dtype: DType::Bool,
        ..c
    }
}

pub(crate) fn parse_agg(name: &str) -> Result<AggFunc> {
    match name {
        "sum" => Ok(AggFunc::Sum),
        "min" => Ok(AggFunc::Min),
        "max" => Ok(AggFunc::Max),
        "mean" | "avg" => Ok(AggFunc::Avg),
        "count" | "size" | "len" => Ok(AggFunc::Count),
        "nunique" => Ok(AggFunc::CountDistinct),
        other => Err(Error::Translate(format!("unknown aggregate '{other}'"))),
    }
}
