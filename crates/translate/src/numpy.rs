//! NumPy (linear-algebra) translation: array conversion, ndarray methods,
//! and the einsum kernel emitters for both layouts (paper, Section III-D).
//!
//! Dense layout: a matrix is a relation `(id, c0..c{n-1})`; reshapes between
//! "one wide row" and "one row per tensor row" use constant index relations
//! and nested `if` terms — exactly the `v4_2`/`v4_3` construction of the
//! paper's Figure 2.
//!
//! Sparse layout: matrices are COO triples and einsum is the Blacher-style
//! join-group-sum translation.

use crate::einsum_plan::{plan, Kernel, PreStep};
use crate::pandas::BodyBuilder;
use crate::value::*;
use crate::{Layout, Translator};
use pytond_common::{DType, Error, Result};
use pytond_pyparse::ast as py;
use pytond_tondir::{AggFunc, Atom, Body, Const, Head, Rule, ScalarOp, Term};

impl<'a> Translator<'a> {
    // ---------------- conversions ----------------

    /// `df.to_numpy()` — all visible columns must be numeric; an id column is
    /// attached when missing (paper: IDs are generated at first appearance).
    pub(crate) fn frame_to_array(&mut self, frame: &FrameVal) -> Result<ArrayVal> {
        for c in &frame.cols {
            if !c.dtype.is_numeric() {
                return Err(Error::Translate(format!(
                    "to_numpy requires numeric columns; '{}' is {}",
                    c.name, c.dtype
                )));
            }
        }
        let with_id = self.ensure_id(frame)?;
        Ok(ArrayVal {
            rel: with_id.rel.clone(),
            layout: Layout::Dense,
            ndim: if with_id.cols.len() == 1 { 1 } else { 2 },
            id_col: with_id.id_col.clone().expect("ensured"),
            val_cols: with_id.cols.iter().map(|c| c.name.clone()).collect(),
            static_rows: None,
        })
    }

    /// `pd.DataFrame(arr, columns=[...])`.
    pub(crate) fn array_to_frame(
        &mut self,
        a: &ArrayVal,
        columns: Option<Vec<String>>,
    ) -> Result<PyVal> {
        if a.layout != Layout::Dense {
            return Err(Error::Translate(
                "DataFrame() from a sparse array is not supported".into(),
            ));
        }
        let names = match columns {
            Some(n) => {
                if n.len() != a.val_cols.len() {
                    return Err(Error::Translate(format!(
                        "DataFrame() got {} names for {} columns",
                        n.len(),
                        a.val_cols.len()
                    )));
                }
                n
            }
            None => (0..a.val_cols.len()).map(|i| format!("c{i}")).collect(),
        };
        // Projection renaming the value columns, keeping the id.
        let rel = self.fresh_rel();
        let mut b = BodyBuilder::new();
        let mut vars = Vec::new();
        let id_var = b.fresh_var(&a.id_col);
        vars.push(id_var.clone());
        let mut head_cols = vec![("__id".to_string(), id_var)];
        let mut infos = Vec::new();
        for (phys, name) in a.val_cols.iter().zip(&names) {
            let v = b.fresh_var(phys);
            vars.push(v.clone());
            head_cols.push((name.clone(), v));
            infos.push(ColInfo::new(name.clone(), DType::Float));
        }
        b.atoms.push(Atom::Rel {
            rel: a.rel.clone(),
            alias: "arr".into(),
            vars,
        });
        let rule_index = self.rules.len();
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), head_cols),
            body: Body::new(b.atoms),
        });
        Ok(PyVal::Frame(FrameVal {
            rel,
            cols: infos,
            id_col: Some("__id".into()),
            rule_index: Some(rule_index),
            is_series: false,
        }))
    }

    /// `np.array(...)`: literal vectors/matrices or frame conversion.
    pub(crate) fn np_array(&mut self, args: &[py::Expr]) -> Result<PyVal> {
        match &args[0] {
            py::Expr::List(items) if items.iter().any(|i| matches!(i, py::Expr::List(_))) => {
                // Matrix literal.
                let mut rows = Vec::new();
                for item in items {
                    let py::Expr::List(row) = item else {
                        return Err(Error::Translate("ragged matrix literal".into()));
                    };
                    rows.push(
                        row.iter()
                            .map(expr_to_float)
                            .collect::<Result<Vec<f64>>>()?,
                    );
                }
                self.literal_matrix(rows).map(PyVal::Array)
            }
            py::Expr::List(items) => {
                let vals = items
                    .iter()
                    .map(expr_to_float)
                    .collect::<Result<Vec<f64>>>()?;
                self.literal_matrix(vals.into_iter().map(|v| vec![v]).collect())
                    .map(|mut a| {
                        a.ndim = 1;
                        PyVal::Array(a)
                    })
            }
            other => {
                let v = self.translate_expr(other)?;
                match v {
                    PyVal::Frame(f) => self.frame_to_array(&f).map(PyVal::Array),
                    PyVal::Array(_) => Ok(v),
                    other => Err(Error::Translate(format!(
                        "np.array() from {} is not supported",
                        other.kind()
                    ))),
                }
            }
        }
    }

    fn literal_matrix(&mut self, rows: Vec<Vec<f64>>) -> Result<ArrayVal> {
        let ncols = rows.first().map_or(0, |r| r.len());
        let rel = self.fresh_rel();
        let mut vars = vec!["__id".to_string()];
        for j in 0..ncols {
            vars.push(format!("c{j}"));
        }
        let const_rows: Vec<Vec<Const>> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut out = vec![Const::Int(i as i64)];
                out.extend(r.iter().map(|&v| Const::Float(v)));
                out
            })
            .collect();
        let head_cols: Vec<(String, String)> =
            vars.iter().map(|v| (v.clone(), v.clone())).collect();
        let nrows = rows.len();
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), head_cols),
            body: Body::new(vec![Atom::ConstRel {
                vars,
                rows: const_rows,
            }]),
        });
        Ok(ArrayVal {
            rel,
            layout: Layout::Dense,
            ndim: 2,
            id_col: "__id".into(),
            val_cols: (0..ncols).map(|j| format!("c{j}")).collect(),
            static_rows: Some(nrows),
        })
    }

    /// `np.where(cond, a, b)` → `if` term.
    pub(crate) fn np_where(&mut self, args: &[py::Expr]) -> Result<PyVal> {
        let cond = self.translate_expr(&args[0])?;
        let then = self.translate_expr(&args[1])?;
        let els = self.translate_expr(&args[2])?;
        let c = self.as_col(cond)?;
        let tt = match &then {
            PyVal::Col(x) => x.term.clone(),
            PyVal::Scalar(ScalarVal::Const(k)) => Term::Const(k.clone()),
            other => {
                return Err(Error::Translate(format!(
                    "np.where branch must be a column or constant, found {}",
                    other.kind()
                )))
            }
        };
        let et = match &els {
            PyVal::Col(x) => x.term.clone(),
            PyVal::Scalar(ScalarVal::Const(k)) => Term::Const(k.clone()),
            other => {
                return Err(Error::Translate(format!(
                    "np.where branch must be a column or constant, found {}",
                    other.kind()
                )))
            }
        };
        let dtype = match &then {
            PyVal::Col(x) => x.dtype,
            PyVal::Scalar(ScalarVal::Const(k)) => k.dtype().unwrap_or(DType::Float),
            _ => DType::Float,
        };
        Ok(PyVal::Col(ColExpr {
            term: Term::If {
                cond: Box::new(c.term.clone()),
                then: Box::new(tt),
                els: Box::new(et),
            },
            dtype,
            ..c
        }))
    }

    /// `np.dot(a, b)` — dispatches on operand orders.
    pub(crate) fn np_dot(&mut self, args: &[py::Expr]) -> Result<PyVal> {
        let a = self.translate_expr(&args[0])?;
        let b = self.translate_expr(&args[1])?;
        let (PyVal::Array(x), PyVal::Array(y)) = (&a, &b) else {
            return Err(Error::Translate("np.dot requires arrays".into()));
        };
        let spec = match (x.ndim, y.ndim) {
            (1, 1) => "i,i->",
            (2, 1) => "ij,j->i",
            (2, 2) => "ij,jk->ik",
            (1, 2) => "i,ij->j",
            _ => return Err(Error::Translate("unsupported np.dot orders".into())),
        };
        self.einsum_dense(spec, &[x.clone(), y.clone()])
    }

    /// `np.einsum(spec, ...)` — the entry point of Section III-D.
    pub(crate) fn np_einsum(
        &mut self,
        args: &[py::Expr],
        _kwargs: &[(String, py::Expr)],
    ) -> Result<PyVal> {
        let spec = args
            .first()
            .and_then(|a| a.as_str_lit())
            .ok_or_else(|| Error::Translate("einsum needs a spec string".into()))?
            .to_string();
        let mut operands = Vec::new();
        for a in &args[1..] {
            match self.translate_expr(a)? {
                PyVal::Array(arr) => operands.push(arr),
                other => {
                    return Err(Error::Translate(format!(
                        "einsum operand must be an array, found {}",
                        other.kind()
                    )))
                }
            }
        }
        if operands.is_empty() {
            return Err(Error::Translate("einsum needs operands".into()));
        }
        let layout = operands
            .iter()
            .map(|o| o.layout)
            .fold(self.options.layout, |acc, l| {
                if l == Layout::Sparse {
                    Layout::Sparse
                } else {
                    acc
                }
            });
        match layout {
            Layout::Dense => self.einsum_dense(&spec, &operands),
            Layout::Sparse => self.einsum_sparse(&spec, &operands),
        }
    }

    // ---------------- dense einsum ----------------

    pub(crate) fn einsum_dense(&mut self, spec: &str, operands: &[ArrayVal]) -> Result<PyVal> {
        if operands.len() > 2 {
            return Err(Error::Translate(
                "n-ary dense einsum: decompose with opt_einsum-style pairwise \
                 contraction before translation"
                    .into(),
            ));
        }
        let plan = plan(spec)?;
        let mut slots: Vec<EinsumVal> = operands
            .iter()
            .map(|o| EinsumVal::Array(o.clone()))
            .collect();
        for step in &plan.pre {
            match step {
                PreStep::Diag { operand } => {
                    let EinsumVal::Array(a) = slots[*operand].clone() else {
                        return Err(Error::Translate("diag of a scalar".into()));
                    };
                    slots[*operand] = EinsumVal::Array(self.emit_diag(&a)?);
                }
                PreStep::SumAxis { operand, axis } => {
                    let EinsumVal::Array(a) = slots[*operand].clone() else {
                        return Err(Error::Translate("axis-sum of a scalar".into()));
                    };
                    // axis = position of the contracted index: 0 = rows ('ij->j'),
                    // 1 = columns ('ij->i').
                    slots[*operand] = if *axis == 0 {
                        EinsumVal::Array(self.emit_colsum(&a)?)
                    } else {
                        EinsumVal::Array(self.emit_rowsum(&a)?)
                    };
                }
                PreStep::SumAll { operand } => {
                    let EinsumVal::Array(a) = slots[*operand].clone() else {
                        return Err(Error::Translate("sum of a scalar".into()));
                    };
                    slots[*operand] = EinsumVal::Scalar(self.emit_fullsum(&a)?);
                }
            }
        }
        if plan.swap && slots.len() == 2 {
            slots.swap(0, 1);
        }
        let result = match plan.kernel {
            Kernel::Identity => slots.into_iter().next().unwrap(),
            Kernel::RowSum => EinsumVal::Array(self.emit_rowsum(expect_array(&slots[0])?)?),
            Kernel::ColSum => EinsumVal::Array(self.emit_colsum(expect_array(&slots[0])?)?),
            Kernel::FullSum | Kernel::VecSum => {
                EinsumVal::Scalar(self.emit_fullsum(expect_array(&slots[0])?)?)
            }
            Kernel::Diag => EinsumVal::Array(self.emit_diag(expect_array(&slots[0])?)?),
            Kernel::Transpose => EinsumVal::Array(self.emit_transpose(expect_array(&slots[0])?)?),
            Kernel::Inner => EinsumVal::Scalar(
                self.emit_inner(expect_array(&slots[0])?, expect_array(&slots[1])?)?,
            ),
            Kernel::Dot2 => EinsumVal::Scalar(
                self.emit_dot2(expect_array(&slots[0])?, expect_array(&slots[1])?)?,
            ),
            Kernel::Outer => EinsumVal::Array(
                self.emit_outer(expect_array(&slots[0])?, expect_array(&slots[1])?)?,
            ),
            Kernel::Hadamard => EinsumVal::Array(
                self.emit_hadamard(expect_array(&slots[0])?, expect_array(&slots[1])?)?,
            ),
            Kernel::BatchOuter => EinsumVal::Array(
                self.emit_batch_outer(expect_array(&slots[0])?, expect_array(&slots[1])?)?,
            ),
            Kernel::MatMul => EinsumVal::Array(
                self.emit_matmul(expect_array(&slots[0])?, expect_array(&slots[1])?)?,
            ),
            Kernel::MatVec => EinsumVal::Array(
                self.emit_matvec(expect_array(&slots[0])?, expect_array(&slots[1])?)?,
            ),
            Kernel::ScalarMul => {
                let EinsumVal::Scalar(s) = slots[0].clone() else {
                    return Err(Error::Translate(
                        "scalar multiplication needs a scalar first operand".into(),
                    ));
                };
                EinsumVal::Array(self.emit_scalar_mul(&s, expect_array(&slots[1])?)?)
            }
        };
        let result = if plan.transpose_out {
            match result {
                EinsumVal::Array(a) => EinsumVal::Array(self.emit_transpose(&a)?),
                s => s,
            }
        } else {
            result
        };
        Ok(match result {
            EinsumVal::Array(a) => PyVal::Array(a),
            EinsumVal::Scalar(s) => PyVal::Scalar(s),
        })
    }

    // ---- dense kernel emitters ----

    fn array_access(&self, b: &mut BodyBuilder, a: &ArrayVal) -> (String, Vec<String>) {
        let id_var = b.fresh_var(&a.id_col);
        let mut vars = vec![id_var.clone()];
        let mut val_vars = Vec::new();
        for c in &a.val_cols {
            let v = b.fresh_var(c);
            val_vars.push(v.clone());
            vars.push(v);
        }
        b.atoms.push(Atom::Rel {
            rel: a.rel.clone(),
            alias: format!("a{}", b.atoms.len()),
            vars,
        });
        (id_var, val_vars)
    }

    fn push_array_rule(
        &mut self,
        body: Vec<Atom>,
        id_var: Option<String>,
        val_vars: Vec<String>,
        static_rows: Option<usize>,
        ndim: usize,
    ) -> ArrayVal {
        let rel = self.fresh_rel();
        let mut head_cols = Vec::new();
        if let Some(id) = &id_var {
            head_cols.push(("__id".to_string(), id.clone()));
        }
        let val_cols: Vec<String> = (0..val_vars.len()).map(|j| format!("c{j}")).collect();
        for (name, var) in val_cols.iter().zip(&val_vars) {
            head_cols.push((name.clone(), var.clone()));
        }
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), head_cols),
            body: Body::new(body),
        });
        ArrayVal {
            rel,
            layout: Layout::Dense,
            ndim,
            id_col: "__id".into(),
            val_cols,
            static_rows,
        }
    }

    /// `'ij->i'`: horizontal sum across the value columns.
    fn emit_rowsum(&mut self, a: &ArrayVal) -> Result<ArrayVal> {
        let mut b = BodyBuilder::new();
        let (id, vals) = self.array_access(&mut b, a);
        let sum = vals
            .iter()
            .map(|v| Term::Var(v.clone()))
            .reduce(|acc, t| Term::bin(ScalarOp::Add, acc, t))
            .ok_or_else(|| Error::Translate("row-sum of a zero-column matrix".into()))?;
        let out = b.fresh_var("rowsum");
        b.atoms.push(Atom::Assign {
            var: out.clone(),
            term: sum,
        });
        Ok(ArrayVal {
            ndim: 1,
            ..self.push_array_rule(b.atoms, Some(id), vec![out], a.static_rows, 1)
        })
    }

    /// `'ij->j'`: per-column sums into one row, then unpivot to a vector.
    fn emit_colsum(&mut self, a: &ArrayVal) -> Result<ArrayVal> {
        let one_row = self.emit_fold_columns(a, |col_var| Term::Agg {
            func: AggFunc::Sum,
            arg: Box::new(Term::Var(col_var.to_string())),
        })?;
        self.emit_unpivot(&one_row, a.ncols(), 1)
    }

    /// `'ij->'` / `'i->'`: total sum into a 1-row scalar relation.
    fn emit_fullsum(&mut self, a: &ArrayVal) -> Result<ScalarVal> {
        let mut b = BodyBuilder::new();
        let (_, vals) = self.array_access(&mut b, a);
        let horizontal = vals
            .iter()
            .map(|v| Term::Var(v.clone()))
            .reduce(|acc, t| Term::bin(ScalarOp::Add, acc, t))
            .ok_or_else(|| Error::Translate("sum of a zero-column matrix".into()))?;
        let out = b.fresh_var("total");
        b.atoms.push(Atom::Assign {
            var: out.clone(),
            term: Term::Agg {
                func: AggFunc::Sum,
                arg: Box::new(horizontal),
            },
        });
        let rel = self.fresh_rel();
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), vec![("c0".into(), out)]),
            body: Body::new(b.atoms),
        });
        Ok(ScalarVal::Rel {
            rel,
            cols: vec!["c0".into()],
            col: "c0".into(),
            dtype: DType::Float,
        })
    }

    /// `'ii->i'`: select column `id` per row (Table V).
    fn emit_diag(&mut self, a: &ArrayVal) -> Result<ArrayVal> {
        let mut b = BodyBuilder::new();
        let (id, vals) = self.array_access(&mut b, a);
        let mut term = Term::float(0.0);
        for (j, v) in vals.iter().enumerate().rev() {
            term = Term::If {
                cond: Box::new(Term::bin(
                    ScalarOp::Eq,
                    Term::Var(id.clone()),
                    Term::int(j as i64),
                )),
                then: Box::new(Term::Var(v.clone())),
                els: Box::new(term),
            };
        }
        let out = b.fresh_var("diag");
        b.atoms.push(Atom::Assign {
            var: out.clone(),
            term,
        });
        Ok(self.push_array_rule(b.atoms, Some(id), vec![out], a.static_rows, 1))
    }

    /// Transposes via full pivot + transposed unpivot (requires static rows).
    fn emit_transpose(&mut self, a: &ArrayVal) -> Result<ArrayVal> {
        if a.ndim == 1 {
            return Ok(a.clone()); // vector transpose is identity here
        }
        let rows = a.static_rows.ok_or_else(|| {
            Error::Translate("dense transpose requires a statically-known row count".into())
        })?;
        let one_row = self.emit_pivot_matrix(a, rows)?;
        // one_row columns are p_{i}_{j}, laid out row-major; unpivot the
        // transposed order: output row j takes entries (i=0..rows-1, j).
        let cols = a.ncols();
        let mut groups: Vec<Vec<String>> = Vec::new();
        for j in 0..cols {
            let mut g = Vec::new();
            for i in 0..rows {
                g.push(one_row.cols[i * cols + j].clone());
            }
            groups.push(g);
        }
        self.emit_unpivot_groups(&one_row, &groups)
    }

    /// `'i,i->'`: join on id, sum the product.
    fn emit_inner(&mut self, u: &ArrayVal, v: &ArrayVal) -> Result<ScalarVal> {
        let mut b = BodyBuilder::new();
        let (id1, v1) = self.array_access(&mut b, u);
        let (id2, v2) = self.array_access(&mut b, v);
        b.atoms.push(Atom::Pred(Term::bin(
            ScalarOp::Eq,
            Term::Var(id1),
            Term::Var(id2),
        )));
        let out = b.fresh_var("inner");
        b.atoms.push(Atom::Assign {
            var: out.clone(),
            term: Term::Agg {
                func: AggFunc::Sum,
                arg: Box::new(Term::bin(
                    ScalarOp::Mul,
                    Term::Var(v1[0].clone()),
                    Term::Var(v2[0].clone()),
                )),
            },
        });
        let rel = self.fresh_rel();
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), vec![("c0".into(), out)]),
            body: Body::new(b.atoms),
        });
        Ok(ScalarVal::Rel {
            rel,
            cols: vec!["c0".into()],
            col: "c0".into(),
            dtype: DType::Float,
        })
    }

    /// `'ij,ij->'`: join on id, sum of all pairwise products.
    fn emit_dot2(&mut self, x: &ArrayVal, y: &ArrayVal) -> Result<ScalarVal> {
        let mut b = BodyBuilder::new();
        let (id1, v1) = self.array_access(&mut b, x);
        let (id2, v2) = self.array_access(&mut b, y);
        b.atoms.push(Atom::Pred(Term::bin(
            ScalarOp::Eq,
            Term::Var(id1),
            Term::Var(id2),
        )));
        let prods = v1
            .iter()
            .zip(&v2)
            .map(|(a, c)| Term::bin(ScalarOp::Mul, Term::Var(a.clone()), Term::Var(c.clone())))
            .reduce(|acc, t| Term::bin(ScalarOp::Add, acc, t))
            .ok_or_else(|| Error::Translate("dot of zero-column matrices".into()))?;
        let out = b.fresh_var("dot");
        b.atoms.push(Atom::Assign {
            var: out.clone(),
            term: Term::Agg {
                func: AggFunc::Sum,
                arg: Box::new(prods),
            },
        });
        let rel = self.fresh_rel();
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), vec![("c0".into(), out)]),
            body: Body::new(b.atoms),
        });
        Ok(ScalarVal::Rel {
            rel,
            cols: vec!["c0".into()],
            col: "c0".into(),
            dtype: DType::Float,
        })
    }

    /// `'ij,ij->ij'` / `'i,i->i'`: join on id, element products (ES7).
    fn emit_hadamard(&mut self, x: &ArrayVal, y: &ArrayVal) -> Result<ArrayVal> {
        if x.ncols() != y.ncols() {
            return Err(Error::Translate("hadamard shape mismatch".into()));
        }
        let mut b = BodyBuilder::new();
        let (id1, v1) = self.array_access(&mut b, x);
        let (id2, v2) = self.array_access(&mut b, y);
        b.atoms.push(Atom::Pred(Term::bin(
            ScalarOp::Eq,
            Term::Var(id1.clone()),
            Term::Var(id2),
        )));
        let mut outs = Vec::new();
        for (a, c) in v1.iter().zip(&v2) {
            let o = b.fresh_var("h");
            b.atoms.push(Atom::Assign {
                var: o.clone(),
                term: Term::bin(ScalarOp::Mul, Term::Var(a.clone()), Term::Var(c.clone())),
            });
            outs.push(o);
        }
        Ok(self.push_array_rule(b.atoms, Some(id1), outs, x.static_rows, x.ndim))
    }

    /// `',ij->ij'`: cross join the 1-row scalar (ES5/ES6).
    fn emit_scalar_mul(&mut self, s: &ScalarVal, m: &ArrayVal) -> Result<ArrayVal> {
        let mut b = BodyBuilder::new();
        let (id, vals) = self.array_access(&mut b, m);
        let s_term = match s {
            ScalarVal::Const(k) => Term::Const(k.clone()),
            ScalarVal::Rel { rel, cols, col, .. } => {
                let dep = ScalarDep {
                    rel: rel.clone(),
                    cols: cols.clone(),
                    col: col.clone(),
                };
                b.access_scalar(&dep);
                Term::Var(b.subst[&scalar_placeholder(rel, col)].clone())
            }
        };
        let mut outs = Vec::new();
        for v in &vals {
            let o = b.fresh_var("s");
            b.atoms.push(Atom::Assign {
                var: o.clone(),
                term: Term::bin(ScalarOp::Mul, s_term.clone(), Term::Var(v.clone())),
            });
            outs.push(o);
        }
        Ok(self.push_array_rule(b.atoms, Some(id), outs, m.static_rows, m.ndim))
    }

    /// `'ij,ik->jk'` (ES8): self-join on id, J×K sums into one row, unpivot.
    fn emit_batch_outer(&mut self, x: &ArrayVal, y: &ArrayVal) -> Result<ArrayVal> {
        let mut b = BodyBuilder::new();
        let (id1, v1) = self.array_access(&mut b, x);
        let (id2, v2) = self.array_access(&mut b, y);
        b.atoms.push(Atom::Pred(Term::bin(
            ScalarOp::Eq,
            Term::Var(id1),
            Term::Var(id2),
        )));
        let mut outs = Vec::new();
        for a in &v1 {
            for c in &v2 {
                let o = b.fresh_var("p");
                b.atoms.push(Atom::Assign {
                    var: o.clone(),
                    term: Term::Agg {
                        func: AggFunc::Sum,
                        arg: Box::new(Term::bin(
                            ScalarOp::Mul,
                            Term::Var(a.clone()),
                            Term::Var(c.clone()),
                        )),
                    },
                });
                outs.push(o);
            }
        }
        let one_row = OneRow::from_rule_atoms(self, b.atoms, outs)?;
        // J rows of K entries each.
        let k = y.ncols();
        let groups: Vec<Vec<String>> = one_row.cols.chunks(k).map(|c| c.to_vec()).collect();
        let mut out = self.emit_unpivot_groups(&one_row, &groups)?;
        out.ndim = if k == 1 { 1 } else { 2 };
        Ok(out)
    }

    /// `'ij,jk->ik'`: pivot B into one wide row, horizontal dot per row of A.
    fn emit_matmul(&mut self, x: &ArrayVal, y: &ArrayVal) -> Result<ArrayVal> {
        let j = x.ncols();
        let rows_b = y.static_rows.ok_or_else(|| {
            Error::Translate("dense matmul requires the right operand's row count".into())
        })?;
        if rows_b != j {
            return Err(Error::Translate(format!(
                "matmul shape mismatch: {j} columns vs {rows_b} rows"
            )));
        }
        let brow = self.emit_pivot_matrix(y, rows_b)?;
        let k = y.ncols();
        let mut b = BodyBuilder::new();
        let (id, avals) = self.array_access(&mut b, x);
        let bvars = brow.access(&mut b);
        let mut outs = Vec::new();
        for kk in 0..k {
            let term = (0..j)
                .map(|jj| {
                    Term::bin(
                        ScalarOp::Mul,
                        Term::Var(avals[jj].clone()),
                        Term::Var(bvars[jj * k + kk].clone()),
                    )
                })
                .reduce(|acc, t| Term::bin(ScalarOp::Add, acc, t))
                .expect("j >= 1");
            let o = b.fresh_var("m");
            b.atoms.push(Atom::Assign {
                var: o.clone(),
                term,
            });
            outs.push(o);
        }
        Ok(self.push_array_rule(b.atoms, Some(id), outs, x.static_rows, 2))
    }

    /// `'ij,j->i'` (ES9 family): pivot v into one row, horizontal dot.
    fn emit_matvec(&mut self, m: &ArrayVal, v: &ArrayVal) -> Result<ArrayVal> {
        let j = m.ncols();
        let vrow = self.emit_pivot_vector(v, j)?;
        let mut b = BodyBuilder::new();
        let (id, avals) = self.array_access(&mut b, m);
        let vvars = vrow.access(&mut b);
        let term = (0..j)
            .map(|jj| {
                Term::bin(
                    ScalarOp::Mul,
                    Term::Var(avals[jj].clone()),
                    Term::Var(vvars[jj].clone()),
                )
            })
            .reduce(|acc, t| Term::bin(ScalarOp::Add, acc, t))
            .ok_or_else(|| Error::Translate("matvec over zero columns".into()))?;
        let o = b.fresh_var("mv");
        b.atoms.push(Atom::Assign {
            var: o.clone(),
            term,
        });
        Ok(self.push_array_rule(b.atoms, Some(id), vec![o], m.static_rows, 1))
    }

    /// `'i,j->ij'`: pivot v into one row, scale by each u entry.
    fn emit_outer(&mut self, u: &ArrayVal, v: &ArrayVal) -> Result<ArrayVal> {
        let k = v.static_rows.ok_or_else(|| {
            Error::Translate("dense outer product requires the right operand's length".into())
        })?;
        let vrow = self.emit_pivot_vector(v, k)?;
        let mut b = BodyBuilder::new();
        let (id, uvals) = self.array_access(&mut b, u);
        let vvars = vrow.access(&mut b);
        let mut outs = Vec::new();
        for vvar in vvars.iter().take(k) {
            let o = b.fresh_var("o");
            b.atoms.push(Atom::Assign {
                var: o.clone(),
                term: Term::bin(
                    ScalarOp::Mul,
                    Term::Var(uvals[0].clone()),
                    Term::Var(vvar.clone()),
                ),
            });
            outs.push(o);
        }
        Ok(self.push_array_rule(b.atoms, Some(id), outs, u.static_rows, 2))
    }

    // ---- reshape helpers (the paper's Figure 2 v4_2/v4_3 constructions) ----

    /// One aggregate per column → 1-row relation.
    fn emit_fold_columns(&mut self, a: &ArrayVal, f: impl Fn(&str) -> Term) -> Result<OneRow> {
        let mut b = BodyBuilder::new();
        let (_, vals) = self.array_access(&mut b, a);
        let mut outs = Vec::new();
        for v in &vals {
            let o = b.fresh_var("f");
            b.atoms.push(Atom::Assign {
                var: o.clone(),
                term: f(v),
            });
            outs.push(o);
        }
        OneRow::from_rule_atoms(self, b.atoms, outs)
    }

    /// Pivots a vector of statically-known length `n` into one row:
    /// `v_i = sum(if(id = i, c0, 0))`.
    fn emit_pivot_vector(&mut self, v: &ArrayVal, n: usize) -> Result<OneRow> {
        let mut b = BodyBuilder::new();
        let (id, vals) = self.array_access(&mut b, v);
        let mut outs = Vec::new();
        for i in 0..n {
            let o = b.fresh_var(&format!("v{i}"));
            b.atoms.push(Atom::Assign {
                var: o.clone(),
                term: Term::Agg {
                    func: AggFunc::Sum,
                    arg: Box::new(Term::If {
                        cond: Box::new(Term::bin(
                            ScalarOp::Eq,
                            Term::Var(id.clone()),
                            Term::int(i as i64),
                        )),
                        then: Box::new(Term::Var(vals[0].clone())),
                        els: Box::new(Term::float(0.0)),
                    }),
                },
            });
            outs.push(o);
        }
        OneRow::from_rule_atoms(self, b.atoms, outs)
    }

    /// Pivots a whole matrix (static `rows`) into one row, row-major.
    fn emit_pivot_matrix(&mut self, m: &ArrayVal, rows: usize) -> Result<OneRow> {
        let mut b = BodyBuilder::new();
        let (id, vals) = self.array_access(&mut b, m);
        let mut outs = Vec::new();
        for i in 0..rows {
            for v in &vals {
                let o = b.fresh_var(&format!("p{i}"));
                b.atoms.push(Atom::Assign {
                    var: o.clone(),
                    term: Term::Agg {
                        func: AggFunc::Sum,
                        arg: Box::new(Term::If {
                            cond: Box::new(Term::bin(
                                ScalarOp::Eq,
                                Term::Var(id.clone()),
                                Term::int(i as i64),
                            )),
                            then: Box::new(Term::Var(v.clone())),
                            els: Box::new(Term::float(0.0)),
                        }),
                    },
                });
                outs.push(o);
            }
        }
        OneRow::from_rule_atoms(self, b.atoms, outs)
    }

    /// Unpivots a 1-row relation into `n` rows of one column.
    fn emit_unpivot(&mut self, one_row: &OneRow, n: usize, _width: usize) -> Result<ArrayVal> {
        let groups: Vec<Vec<String>> = one_row
            .cols
            .iter()
            .take(n)
            .map(|c| vec![c.clone()])
            .collect();
        let mut out = self.emit_unpivot_groups(one_row, &groups)?;
        out.ndim = 1;
        Ok(out)
    }

    /// General unpivot: output row `r` carries the entries `groups[r]` —
    /// built with a constant index relation and nested `if`s (Figure 2).
    fn emit_unpivot_groups(
        &mut self,
        one_row: &OneRow,
        groups: &[Vec<String>],
    ) -> Result<ArrayVal> {
        let width = groups.first().map_or(0, |g| g.len());
        let mut b = BodyBuilder::new();
        let vars = one_row.access(&mut b);
        let col_of = |name: &str| -> usize {
            one_row
                .cols
                .iter()
                .position(|c| c == name)
                .expect("group names come from this row")
        };
        // Constant index relation (the paper's v4_2).
        let idx_var = b.fresh_var("__id");
        b.atoms.push(Atom::ConstRel {
            vars: vec![idx_var.clone()],
            rows: (0..groups.len())
                .map(|i| vec![Const::Int(i as i64)])
                .collect(),
        });
        let mut outs = Vec::new();
        for w in 0..width {
            let mut term = Term::float(0.0);
            for (r, group) in groups.iter().enumerate().rev() {
                term = Term::If {
                    cond: Box::new(Term::bin(
                        ScalarOp::Eq,
                        Term::Var(idx_var.clone()),
                        Term::int(r as i64),
                    )),
                    then: Box::new(Term::Var(vars[col_of(&group[w])].clone())),
                    els: Box::new(term),
                };
            }
            let o = b.fresh_var("u");
            b.atoms.push(Atom::Assign {
                var: o.clone(),
                term,
            });
            outs.push(o);
        }
        Ok(self.push_array_rule(
            b.atoms,
            Some(idx_var),
            outs,
            Some(groups.len()),
            if width == 1 { 1 } else { 2 },
        ))
    }

    // ---------------- sparse einsum (Blacher-style) ----------------

    /// COO translation: join shared indices, group by output indices, sum the
    /// product of values.
    pub(crate) fn einsum_sparse(&mut self, spec: &str, operands: &[ArrayVal]) -> Result<PyVal> {
        let (inputs, output) = crate::einsum_plan::parse_spec(spec)?;
        if inputs.len() != operands.len() {
            return Err(Error::Translate("einsum operand count mismatch".into()));
        }
        let mut b = BodyBuilder::new();
        let mut index_var: std::collections::HashMap<char, String> = Default::default();
        let mut val_vars = Vec::new();
        for (labels, op) in inputs.iter().zip(operands) {
            if op.layout != Layout::Sparse {
                return Err(Error::Translate(
                    "sparse einsum requires COO operands".into(),
                ));
            }
            let mut vars = Vec::new();
            let mut join_preds = Vec::new();
            // (row_id[, col_id], val)
            for (pos, &c) in labels.iter().enumerate() {
                let v = match index_var.get(&c) {
                    Some(existing) => {
                        // shared index: new var + equality (distinct names per
                        // the paper's relation-access renaming); the predicate
                        // is pushed after the access that binds the variable.
                        let nv = b.fresh_var(&format!("{c}{pos}"));
                        join_preds.push(Term::bin(
                            ScalarOp::Eq,
                            Term::Var(existing.clone()),
                            Term::Var(nv.clone()),
                        ));
                        nv
                    }
                    None => {
                        let nv = b.fresh_var(&c.to_string());
                        index_var.insert(c, nv.clone());
                        nv
                    }
                };
                vars.push(v);
            }
            let vv = b.fresh_var("val");
            val_vars.push(vv.clone());
            vars.push(vv);
            b.atoms.push(Atom::Rel {
                rel: op.rel.clone(),
                alias: format!("s{}", b.atoms.len()),
                vars,
            });
            for p in join_preds {
                b.atoms.push(Atom::Pred(p));
            }
        }
        let product = val_vars
            .iter()
            .map(|v| Term::Var(v.clone()))
            .reduce(|acc, t| Term::bin(ScalarOp::Mul, acc, t))
            .ok_or_else(|| Error::Translate("einsum without operands".into()))?;
        let out_var = b.fresh_var("val");
        b.atoms.push(Atom::Assign {
            var: out_var.clone(),
            term: Term::Agg {
                func: AggFunc::Sum,
                arg: Box::new(product),
            },
        });
        let rel = self.fresh_rel();
        let mut head_cols = Vec::new();
        let mut group = Vec::new();
        let coo_names = ["row_id", "col_id"];
        for (pos, c) in output.iter().enumerate() {
            let v = index_var
                .get(c)
                .ok_or_else(|| Error::Translate(format!("output index '{c}' unbound")))?;
            head_cols.push((coo_names[pos.min(1)].to_string(), v.clone()));
            group.push(v.clone());
        }
        head_cols.push(("val".to_string(), out_var));
        let rule_index = self.rules.len();
        self.rules.push(Rule {
            head: Head {
                rel: rel.clone(),
                cols: head_cols,
                group: if group.is_empty() { None } else { Some(group) },
                sort: None,
                limit: None,
                distinct: false,
            },
            body: Body::new(b.atoms),
        });
        let _ = rule_index;
        if output.is_empty() {
            return Ok(PyVal::Scalar(ScalarVal::Rel {
                rel,
                cols: vec!["val".into()],
                col: "val".into(),
                dtype: DType::Float,
            }));
        }
        Ok(PyVal::Array(ArrayVal {
            rel,
            layout: Layout::Sparse,
            ndim: output.len(),
            id_col: "row_id".into(),
            val_cols: vec!["val".into()],
            static_rows: None,
        }))
    }

    // ---------------- ndarray methods & indexing ----------------

    pub(crate) fn array_method(
        &mut self,
        recv: PyVal,
        method: &str,
        args: &[py::Expr],
        kwargs: &[(String, py::Expr)],
    ) -> Result<PyVal> {
        let PyVal::Array(a) = &recv else {
            unreachable!("dispatched on array");
        };
        let a = a.clone();
        match method {
            "sum" => {
                let axis = kwargs
                    .iter()
                    .find(|(k, _)| k == "axis")
                    .map(|(_, v)| v)
                    .or_else(|| args.first());
                match axis {
                    None | Some(py::Expr::NoneLit) => self.emit_fullsum(&a).map(PyVal::Scalar),
                    Some(py::Expr::Int(0)) => self.emit_colsum(&a).map(PyVal::Array),
                    Some(py::Expr::Int(1)) => self.emit_rowsum(&a).map(PyVal::Array),
                    other => Err(Error::Translate(format!("unsupported sum axis {other:?}"))),
                }
            }
            "transpose" => self.emit_transpose(&a).map(PyVal::Array),
            "round" => {
                let digits = match args.first() {
                    Some(py::Expr::Int(n)) => *n,
                    _ => 0,
                };
                self.array_map(&a, |t| Term::Ext {
                    func: "round".into(),
                    args: vec![t, Term::int(digits)],
                })
                .map(PyVal::Array)
            }
            "all" => {
                // Table V: min over the values ≠ 0.
                let mut b = BodyBuilder::new();
                let (_, vals) = self.array_access(&mut b, &a);
                let o = b.fresh_var("all");
                b.atoms.push(Atom::Assign {
                    var: o.clone(),
                    term: Term::Agg {
                        func: AggFunc::Min,
                        arg: Box::new(Term::Var(vals[0].clone())),
                    },
                });
                let rel = self.fresh_rel();
                self.rules.push(Rule {
                    head: Head::simple(rel.clone(), vec![("c0".into(), o)]),
                    body: Body::new(b.atoms),
                });
                Ok(PyVal::Scalar(ScalarVal::Rel {
                    rel,
                    cols: vec!["c0".into()],
                    col: "c0".into(),
                    dtype: DType::Float,
                }))
            }
            "nonzero" => {
                // Table V: R(ID) :- v(ID, c1), (c1 != 0).
                let mut b = BodyBuilder::new();
                let (id, vals) = self.array_access(&mut b, &a);
                b.atoms.push(Atom::Pred(Term::bin(
                    ScalarOp::Ne,
                    Term::Var(vals[0].clone()),
                    Term::float(0.0),
                )));
                Ok(PyVal::Array(self.push_array_rule(
                    b.atoms,
                    Some(id.clone()),
                    vec![id],
                    None,
                    1,
                )))
            }
            "compress" => {
                // compress(mask, axis=1): static column selection.
                let mask = self.translate_expr(&args[0])?;
                let PyVal::ConstList(flags) = mask else {
                    return Err(Error::Translate(
                        "compress requires a literal boolean mask".into(),
                    ));
                };
                let keep: Vec<usize> = flags
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| match c {
                        Const::Bool(true) | Const::Int(1) => Some(i),
                        _ => None,
                    })
                    .collect();
                let mut b = BodyBuilder::new();
                let (id, vals) = self.array_access(&mut b, &a);
                let outs: Vec<String> = keep.iter().map(|&i| vals[i].clone()).collect();
                Ok(PyVal::Array(self.push_array_rule(
                    b.atoms,
                    Some(id),
                    outs,
                    a.static_rows,
                    if keep.len() == 1 { 1 } else { 2 },
                )))
            }
            "mean" => {
                let total = self.emit_fullsum(&a)?;
                // mean = sum / count: emit count rule, then combine in a
                // 1-row rule.
                let mut b = BodyBuilder::new();
                let (_, vals) = self.array_access(&mut b, &a);
                let cnt = b.fresh_var("n");
                b.atoms.push(Atom::Assign {
                    var: cnt.clone(),
                    term: Term::Agg {
                        func: AggFunc::Count,
                        arg: Box::new(Term::Var(vals[0].clone())),
                    },
                });
                let rel = self.fresh_rel();
                self.rules.push(Rule {
                    head: Head::simple(rel.clone(), vec![("c0".into(), cnt)]),
                    body: Body::new(b.atoms),
                });
                let count = ScalarVal::Rel {
                    rel,
                    cols: vec!["c0".into()],
                    col: "c0".into(),
                    dtype: DType::Int,
                };
                self.scalar_binop(ScalarOp::Div, &total, &count)
                    .map(PyVal::Scalar)
            }
            other => Err(Error::Translate(format!(
                "unsupported ndarray method '{other}'"
            ))),
        }
    }

    /// Element-wise map over every value column.
    fn array_map(&mut self, a: &ArrayVal, f: impl Fn(Term) -> Term) -> Result<ArrayVal> {
        let mut b = BodyBuilder::new();
        let (id, vals) = self.array_access(&mut b, a);
        let mut outs = Vec::new();
        for v in &vals {
            let o = b.fresh_var("m");
            b.atoms.push(Atom::Assign {
                var: o.clone(),
                term: f(Term::Var(v.clone())),
            });
            outs.push(o);
        }
        Ok(self.push_array_rule(b.atoms, Some(id), outs, a.static_rows, a.ndim))
    }

    /// Combines two 1-row scalars into a new 1-row scalar.
    fn scalar_binop(&mut self, op: ScalarOp, l: &ScalarVal, r: &ScalarVal) -> Result<ScalarVal> {
        let mut b = BodyBuilder::new();
        let term_of = |s: &ScalarVal, b: &mut BodyBuilder| -> Term {
            match s {
                ScalarVal::Const(k) => Term::Const(k.clone()),
                ScalarVal::Rel { rel, cols, col, .. } => {
                    let dep = ScalarDep {
                        rel: rel.clone(),
                        cols: cols.clone(),
                        col: col.clone(),
                    };
                    b.access_scalar(&dep);
                    Term::Var(b.subst[&scalar_placeholder(rel, col)].clone())
                }
            }
        };
        let lt = term_of(l, &mut b);
        let rt = term_of(r, &mut b);
        let o = b.fresh_var("s");
        b.atoms.push(Atom::Assign {
            var: o.clone(),
            term: Term::bin(op, lt, rt),
        });
        let rel = self.fresh_rel();
        self.rules.push(Rule {
            head: Head::simple(rel.clone(), vec![("c0".into(), o)]),
            body: Body::new(b.atoms),
        });
        Ok(ScalarVal::Rel {
            rel,
            cols: vec!["c0".into()],
            col: "c0".into(),
            dtype: DType::Float,
        })
    }

    /// Array subscripts: `m[indices]` (row gather via join), `m[:, j]`
    /// (column selection).
    pub(crate) fn array_subscript(&mut self, base: &PyVal, index: &py::Expr) -> Result<PyVal> {
        let PyVal::Array(a) = base else {
            unreachable!("dispatched on array")
        };
        let a = a.clone();
        match index {
            // m[:, j] — single column as a vector.
            py::Expr::Tuple(items)
                if items.len() == 2 && matches!(items[0], py::Expr::Slice { .. }) =>
            {
                let py::Expr::Int(j) = items[1] else {
                    return Err(Error::Translate(
                        "column selection needs an integer index".into(),
                    ));
                };
                let mut b = BodyBuilder::new();
                let (id, vals) = self.array_access(&mut b, &a);
                let col = vals
                    .get(j as usize)
                    .ok_or_else(|| Error::Translate(format!("column {j} out of range")))?
                    .clone();
                Ok(PyVal::Array(self.push_array_rule(
                    b.atoms,
                    Some(id),
                    vec![col],
                    a.static_rows,
                    1,
                )))
            }
            // m[indices] — fancy indexing by a vector of row ids.
            _ => {
                let idx = self.translate_expr(index)?;
                let PyVal::Array(ix) = idx else {
                    return Err(Error::Translate(format!(
                        "unsupported array index {}",
                        idx.kind()
                    )));
                };
                let mut b = BodyBuilder::new();
                let (id, vals) = self.array_access(&mut b, &a);
                let (_, ivals) = self.array_access(&mut b, &ix);
                b.atoms.push(Atom::Pred(Term::bin(
                    ScalarOp::Eq,
                    Term::Var(id.clone()),
                    Term::Var(ivals[0].clone()),
                )));
                Ok(PyVal::Array(self.push_array_rule(
                    b.atoms,
                    Some(id),
                    vals,
                    None,
                    a.ndim,
                )))
            }
        }
    }

    /// Final projection of a returned array.
    pub(crate) fn finalize_array(&mut self, a: ArrayVal) -> Result<()> {
        match a.layout {
            Layout::Dense => {
                let mut b = BodyBuilder::new();
                let (id, vals) = self.array_access(&mut b, &a);
                let rel = self.fresh_rel();
                let mut head_cols = vec![("__id".to_string(), id.clone())];
                for (j, v) in vals.iter().enumerate() {
                    head_cols.push((format!("c{j}"), v.clone()));
                }
                self.rules.push(Rule {
                    head: Head {
                        rel,
                        cols: head_cols,
                        group: None,
                        sort: Some(vec![(id, true)]),
                        limit: None,
                        distinct: false,
                    },
                    body: Body::new(b.atoms),
                });
                Ok(())
            }
            Layout::Sparse => {
                let mut b = BodyBuilder::new();
                let phys = a.physical_cols();
                let mut vars = Vec::new();
                for c in &phys {
                    vars.push(b.fresh_var(c));
                }
                b.atoms.push(Atom::Rel {
                    rel: a.rel.clone(),
                    alias: "s".into(),
                    vars: vars.clone(),
                });
                let rel = self.fresh_rel();
                let head_cols: Vec<(String, String)> = phys
                    .iter()
                    .zip(&vars)
                    .map(|(c, v)| (c.clone(), v.clone()))
                    .collect();
                let sort_keys: Vec<(String, bool)> = vars
                    .iter()
                    .take(phys.len().saturating_sub(1))
                    .map(|v| (v.clone(), true))
                    .collect();
                self.rules.push(Rule {
                    head: Head {
                        rel,
                        cols: head_cols,
                        group: None,
                        sort: if sort_keys.is_empty() {
                            None
                        } else {
                            Some(sort_keys)
                        },
                        limit: None,
                        distinct: false,
                    },
                    body: Body::new(b.atoms),
                });
                Ok(())
            }
        }
    }
}

/// Intermediate slot during dense einsum emission.
#[derive(Debug, Clone)]
enum EinsumVal {
    Array(ArrayVal),
    Scalar(ScalarVal),
}

fn expect_array(v: &EinsumVal) -> Result<&ArrayVal> {
    match v {
        EinsumVal::Array(a) => Ok(a),
        EinsumVal::Scalar(_) => Err(Error::Translate(
            "einsum kernel expected a tensor operand, found a scalar".into(),
        )),
    }
}

/// A 1-row relation produced mid-plan (pivot results).
struct OneRow {
    rel: String,
    cols: Vec<String>,
}

impl OneRow {
    fn from_rule_atoms(
        tr: &mut Translator<'_>,
        atoms: Vec<Atom>,
        outs: Vec<String>,
    ) -> Result<OneRow> {
        let rel = tr.fresh_rel();
        let cols: Vec<String> = (0..outs.len()).map(|i| format!("p{i}")).collect();
        let head_cols: Vec<(String, String)> = cols
            .iter()
            .zip(&outs)
            .map(|(c, v)| (c.clone(), v.clone()))
            .collect();
        tr.rules.push(Rule {
            head: Head::simple(rel.clone(), head_cols),
            body: Body::new(atoms),
        });
        Ok(OneRow { rel, cols })
    }

    /// Adds the access atom for this 1-row relation, returning its variables.
    fn access(&self, b: &mut BodyBuilder) -> Vec<String> {
        let mut vars = Vec::new();
        for c in &self.cols {
            vars.push(b.fresh_var(c));
        }
        b.atoms.push(Atom::Rel {
            rel: self.rel.clone(),
            alias: format!("r{}", b.atoms.len()),
            vars: vars.clone(),
        });
        vars
    }
}

fn expr_to_float(e: &py::Expr) -> Result<f64> {
    match e {
        py::Expr::Int(i) => Ok(*i as f64),
        py::Expr::Float(f) => Ok(*f),
        other => Err(Error::Translate(format!(
            "array literals must be numeric, found {other:?}"
        ))),
    }
}
