//! SQL code generation from TondIR (paper, Section III-E).
//!
//! Each rule becomes one CTE in a `WITH` chain; the program's last rule feeds
//! the final `SELECT * FROM <last>`. Constant relations are hoisted into
//! `name(cols) AS (VALUES ...)` CTEs (exactly the paper's Figure 2 shape).
//! Implicit inner joins (shared variables between relation accesses) become
//! equality conjuncts in `WHERE`; outer-join marker atoms become explicit
//! `LEFT/RIGHT/FULL JOIN ... ON` syntax; `exists` atoms become
//! `[NOT] IN (SELECT ...)` predicates; `uid()` becomes
//! `row_number() OVER (...)`.
//!
//! # Backend adaptation: the three dialect profiles
//!
//! The [`Dialect`] controls the spelling of external functions, mirroring the
//! paper's "minor details, mostly in the interface of their external
//! functions". The three profiles pair 1:1 with the engine's execution
//! profiles in `pytond-sqldb` (`duckdb-sim` / `hyper-sim` / `lingodb-sim`):
//!
//! | Rendering | [`Dialect::DuckDb`] | [`Dialect::Hyper`] | [`Dialect::LingoDb`] |
//! |---|---|---|---|
//! | substring | `substr(s, start, len)` | `SUBSTRING(s FROM start FOR len)` | as Hyper |
//! | date parts | `year(d)`, `month(d)`, `day(d)` | `EXTRACT(YEAR FROM d)`, … | as Hyper |
//! | string length | `length(s)` | `CHAR_LENGTH(s)` | as Hyper |
//! | everything else | shared standard spellings (`ROUND`, `ABS`, `COALESCE`, `ADD_MONTHS`, `POWER`, `STRPOS`, …) | — | — |
//!
//! Shared across all dialects: identifiers quote with `"double quotes"` when
//! they are reserved words or not plain lower-case identifiers
//! ([`quote_ident`]); date constants render as `DATE 'YYYY-MM-DD'`; `uid()`
//! renders as `row_number() OVER (...)`. The LingoDB profile's *semantic*
//! gaps — no window functions, no aggregates over disjunctive CASE
//! conditions — are enforced by the engine (`pytond-sqldb`'s `lingodb-sim`
//! checks), not by changing the generated text: LingoDB SQL is otherwise the
//! standard-leaning Hyper spelling. The README's "SQL dialects" section
//! carries the same table for quick reference.

use pytond_common::{Error, Result};
use pytond_tondir::analysis::SchemaEnv;
use pytond_tondir::{Atom, Body, Catalog, Const, OuterKind, Program, Rule, ScalarOp, Term};
use std::collections::HashMap;
use std::fmt::Write;

/// One pending outer-join marker: `(kind, left alias, right alias, ON pairs)`.
type OuterMarker<'a> = (
    &'a OuterKind,
    &'a String,
    &'a String,
    &'a Vec<(String, String)>,
);

/// Target SQL dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dialect {
    /// DuckDB-style spellings (`substr`, `year(d)`).
    #[default]
    DuckDb,
    /// Hyper-style spellings (`SUBSTRING ... FROM ... FOR`, `EXTRACT`).
    Hyper,
    /// LingoDB-style (standard-leaning, like Hyper).
    LingoDb,
}

/// Generates the full SQL statement for a TondIR program.
pub fn generate_sql(program: &Program, catalog: &Catalog, dialect: Dialect) -> Result<String> {
    if program.rules.is_empty() {
        return Err(Error::CodeGen("empty program".into()));
    }
    let mut env = SchemaEnv::from_catalog(catalog);
    let mut ctes: Vec<String> = Vec::new();
    let mut seen_names: Vec<String> = Vec::new();
    let mut const_counter = 0usize;
    for rule in &program.rules {
        if seen_names.contains(&rule.head.rel) {
            return Err(Error::CodeGen(format!(
                "relation '{}' defined twice; the translator must uniquify rule names",
                rule.head.rel
            )));
        }
        let gen = RuleGen {
            env: &env,
            dialect,
            const_counter: &mut const_counter,
        };
        let (sql, extra_ctes) = gen.rule_to_sql(rule)?;
        ctes.extend(extra_ctes);
        let col_list: Vec<String> = rule.head.cols.iter().map(|(n, _)| quote_ident(n)).collect();
        ctes.push(format!(
            "{}({}) AS (\n{}\n)",
            quote_ident(&rule.head.rel),
            col_list.join(", "),
            indent(&sql)
        ));
        seen_names.push(rule.head.rel.clone());
        env.define(&rule.head);
    }
    let last = program.rules.last().expect("non-empty");
    let mut out = String::new();
    write!(
        out,
        "WITH {}\nSELECT * FROM {}",
        ctes.join(",\n"),
        quote_ident(&last.head.rel)
    )
    .unwrap();
    Ok(out)
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "by", "having", "order", "limit", "join", "inner", "left",
    "right", "full", "cross", "on", "and", "or", "not", "in", "is", "between", "like", "exists",
    "union", "as", "asc", "desc", "distinct", "with", "when", "then", "else", "end", "values",
    "case", "null", "true", "false", "date", "cast", "interval", "sum", "min", "max", "avg",
    "count",
];

/// Quotes an identifier when it is not a plain lower-case word.
pub fn quote_ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !name.chars().next().unwrap().is_ascii_digit()
        && !RESERVED.contains(&name.to_lowercase().as_str());
    if plain {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

struct RuleGen<'a> {
    env: &'a SchemaEnv,
    dialect: Dialect,
    const_counter: &'a mut usize,
}

impl<'a> RuleGen<'a> {
    /// Renders a rule body + head into a SELECT, returning any hoisted
    /// VALUES CTEs.
    fn rule_to_sql(self, rule: &Rule) -> Result<(String, Vec<String>)> {
        let mut extra_ctes = Vec::new();
        // Pure constant rule: R(c0) :- (c0 = [...]).
        if rule.body.atoms.len() == 1 {
            if let Atom::ConstRel { rows, .. } = &rule.body.atoms[0] {
                let rendered: Vec<String> = rows
                    .iter()
                    .map(|r| {
                        let vals: Vec<String> = r.iter().map(render_const).collect();
                        format!("({})", vals.join(", "))
                    })
                    .collect();
                return Ok((format!("VALUES {}", rendered.join(", ")), extra_ctes));
            }
        }

        // Variable bindings: var → rendered SQL expression.
        let mut bindings: HashMap<String, String> = HashMap::new();
        // Extra equality conditions from repeated variables (implicit joins).
        let mut conditions: Vec<String> = Vec::new();
        // FROM items in order: (rendered item, alias).
        let mut from_items: Vec<String> = Vec::new();
        // Alias of each relation access for outer-join wiring.
        let mut alias_of: HashMap<String, usize> = HashMap::new(); // alias → from_items idx
        let mut outer_markers: Vec<OuterMarker<'_>> = Vec::new();

        for atom in &rule.body.atoms {
            match atom {
                Atom::Rel { rel, alias, vars } => {
                    let cols = self.env.columns(rel).map_err(|e| {
                        Error::CodeGen(format!("rule '{}': {}", rule.head.rel, e.message()))
                    })?;
                    if cols.len() != vars.len() {
                        return Err(Error::CodeGen(format!(
                            "rule '{}': relation '{rel}' has {} columns, access binds {}",
                            rule.head.rel,
                            cols.len(),
                            vars.len()
                        )));
                    }
                    let item = if alias == rel {
                        quote_ident(rel)
                    } else {
                        format!("{} AS {}", quote_ident(rel), quote_ident(alias))
                    };
                    alias_of.insert(alias.clone(), from_items.len());
                    from_items.push(item);
                    for (col, var) in cols.iter().zip(vars) {
                        let expr = format!("{}.{}", quote_ident(alias), quote_ident(col));
                        match bindings.get(var) {
                            Some(prev) => conditions.push(format!("{prev} = {expr}")),
                            None => {
                                bindings.insert(var.clone(), expr);
                            }
                        }
                    }
                }
                Atom::ConstRel { vars, rows } => {
                    *self.const_counter += 1;
                    let name = format!("const_rel_{}", self.const_counter);
                    let rendered: Vec<String> = rows
                        .iter()
                        .map(|r| {
                            let vals: Vec<String> = r.iter().map(render_const).collect();
                            format!("({})", vals.join(", "))
                        })
                        .collect();
                    let col_list: Vec<String> = vars.iter().map(|v| quote_ident(v)).collect();
                    extra_ctes.push(format!(
                        "{}({}) AS (\n  VALUES {}\n)",
                        quote_ident(&name),
                        col_list.join(", "),
                        rendered.join(", ")
                    ));
                    alias_of.insert(name.clone(), from_items.len());
                    from_items.push(quote_ident(&name));
                    for var in vars {
                        let expr = format!("{}.{}", quote_ident(&name), quote_ident(var));
                        match bindings.get(var) {
                            Some(prev) => conditions.push(format!("{prev} = {expr}")),
                            None => {
                                bindings.insert(var.clone(), expr);
                            }
                        }
                    }
                }
                Atom::Assign { var, term } => {
                    let rendered = self.render_term(term, &bindings)?;
                    let stored = if matches!(term, Term::Bin { .. } | Term::Not(_)) {
                        format!("({rendered})")
                    } else {
                        rendered
                    };
                    bindings.insert(var.clone(), stored);
                }
                Atom::Pred(term) => {
                    let rendered = self.render_term(term, &bindings)?;
                    // Disjunctions must not leak into the AND chain unparenthesized.
                    let rendered = if matches!(
                        term,
                        Term::Bin {
                            op: ScalarOp::Or,
                            ..
                        }
                    ) {
                        format!("({rendered})")
                    } else {
                        rendered
                    };
                    conditions.push(rendered);
                }
                Atom::Exists {
                    body,
                    keys,
                    negated,
                } => {
                    conditions.push(self.render_exists(body, keys, *negated, &bindings)?);
                }
                Atom::OuterJoin {
                    kind,
                    left,
                    right,
                    on,
                } => {
                    outer_markers.push((kind, left, right, on));
                }
            }
        }

        // FROM clause: outer-join markers splice explicit JOIN syntax.
        let from_clause = if outer_markers.is_empty() {
            from_items.join(", ")
        } else {
            self.render_outer_from(&from_items, &alias_of, &outer_markers, &bindings)?
        };

        // SELECT list.
        let mut select_items = Vec::new();
        for (name, var) in &rule.head.cols {
            let expr = bindings.get(var).ok_or_else(|| {
                Error::CodeGen(format!(
                    "rule '{}': head variable '{var}' is unbound",
                    rule.head.rel
                ))
            })?;
            select_items.push(format!("{expr} AS {}", quote_ident(name)));
        }
        let mut sql = String::new();
        write!(
            sql,
            "SELECT {}{}",
            if rule.head.distinct { "DISTINCT " } else { "" },
            select_items.join(", ")
        )
        .unwrap();
        write!(sql, "\nFROM {from_clause}").unwrap();
        if !conditions.is_empty() {
            write!(sql, "\nWHERE {}", conditions.join(" AND ")).unwrap();
        }
        if let Some(group) = &rule.head.group {
            let keys: Vec<String> = group
                .iter()
                .map(|v| {
                    bindings
                        .get(v)
                        .cloned()
                        .ok_or_else(|| Error::CodeGen(format!("group variable '{v}' unbound")))
                })
                .collect::<Result<_>>()?;
            write!(sql, "\nGROUP BY {}", keys.join(", ")).unwrap();
        }
        if let Some(sort) = &rule.head.sort {
            let keys: Vec<String> =
                sort.iter()
                    .map(|(v, asc)| {
                        let expr = bindings.get(v).cloned().ok_or_else(|| {
                            Error::CodeGen(format!("sort variable '{v}' unbound"))
                        })?;
                        Ok(format!("{expr}{}", if *asc { " ASC" } else { " DESC" }))
                    })
                    .collect::<Result<_>>()?;
            write!(sql, "\nORDER BY {}", keys.join(", ")).unwrap();
        }
        if let Some(n) = rule.head.limit {
            write!(sql, "\nLIMIT {n}").unwrap();
        }
        Ok((sql, extra_ctes))
    }

    fn render_outer_from(
        &self,
        from_items: &[String],
        alias_of: &HashMap<String, usize>,
        markers: &[OuterMarker<'_>],
        bindings: &HashMap<String, String>,
    ) -> Result<String> {
        // Relations joined by markers are chained with JOIN syntax; all other
        // items stay comma-separated.
        let mut joined: Vec<bool> = vec![false; from_items.len()];
        let mut chain = String::new();
        for (ki, (kind, left, right, on)) in markers.iter().enumerate() {
            let li = *alias_of
                .get(*left)
                .ok_or_else(|| Error::CodeGen(format!("outer join alias '{left}' unknown")))?;
            let ri = *alias_of
                .get(*right)
                .ok_or_else(|| Error::CodeGen(format!("outer join alias '{right}' unknown")))?;
            let kw = match kind {
                OuterKind::Left => "LEFT JOIN",
                OuterKind::Right => "RIGHT JOIN",
                OuterKind::Full => "FULL OUTER JOIN",
            };
            let conds: Vec<String> =
                on.iter()
                    .map(|(l, r)| {
                        let le = bindings.get(l).cloned().ok_or_else(|| {
                            Error::CodeGen(format!("join variable '{l}' unbound"))
                        })?;
                        let re = bindings.get(r).cloned().ok_or_else(|| {
                            Error::CodeGen(format!("join variable '{r}' unbound"))
                        })?;
                        Ok(format!("{le} = {re}"))
                    })
                    .collect::<Result<_>>()?;
            if ki == 0 {
                write!(
                    chain,
                    "{} {kw} {} ON {}",
                    from_items[li],
                    from_items[ri],
                    conds.join(" AND ")
                )
                .unwrap();
            } else {
                // Later markers extend the one chain; a left side that is
                // not already part of it would silently drop a relation, so
                // reject disjoint outer-join groups outright.
                if !joined[li] {
                    return Err(Error::CodeGen(format!(
                        "disjoint outer-join chains are not supported \
                         (alias '{left}' is not part of the join chain)"
                    )));
                }
                write!(chain, " {kw} {} ON {}", from_items[ri], conds.join(" AND ")).unwrap();
            }
            joined[li] = true;
            joined[ri] = true;
        }
        let mut parts = vec![chain];
        for (i, item) in from_items.iter().enumerate() {
            if !joined[i] {
                parts.push(item.clone());
            }
        }
        Ok(parts.join(", "))
    }

    fn render_exists(
        &self,
        body: &Body,
        keys: &[(String, String)],
        negated: bool,
        outer_bindings: &HashMap<String, String>,
    ) -> Result<String> {
        if keys.len() != 1 {
            return Err(Error::CodeGen(
                "exists atoms must correlate on exactly one key (isin)".into(),
            ));
        }
        // Render the inner body as a one-column subselect.
        let mut inner_bindings: HashMap<String, String> = HashMap::new();
        let mut inner_from: Vec<String> = Vec::new();
        let mut inner_conds: Vec<String> = Vec::new();
        for atom in &body.atoms {
            match atom {
                Atom::Rel { rel, alias, vars } => {
                    let cols = self
                        .env
                        .columns(rel)
                        .map_err(|e| Error::CodeGen(e.message().to_string()))?;
                    let item = if alias == rel {
                        quote_ident(rel)
                    } else {
                        format!("{} AS {}", quote_ident(rel), quote_ident(alias))
                    };
                    inner_from.push(item);
                    for (col, var) in cols.iter().zip(vars) {
                        let expr = format!("{}.{}", quote_ident(alias), quote_ident(col));
                        match inner_bindings.get(var) {
                            Some(prev) => inner_conds.push(format!("{prev} = {expr}")),
                            None => {
                                inner_bindings.insert(var.clone(), expr);
                            }
                        }
                    }
                }
                Atom::Pred(t) => {
                    let rendered = self.render_term(t, &inner_bindings)?;
                    let rendered = if matches!(
                        t,
                        Term::Bin {
                            op: ScalarOp::Or,
                            ..
                        }
                    ) {
                        format!("({rendered})")
                    } else {
                        rendered
                    };
                    inner_conds.push(rendered);
                }
                Atom::Assign { var, term } => {
                    let rendered = self.render_term(term, &inner_bindings)?;
                    let stored = if matches!(term, Term::Bin { .. } | Term::Not(_)) {
                        format!("({rendered})")
                    } else {
                        rendered
                    };
                    inner_bindings.insert(var.clone(), stored);
                }
                other => {
                    return Err(Error::CodeGen(format!(
                        "unsupported atom inside exists: {other:?}"
                    )))
                }
            }
        }
        let (outer_var, inner_var) = &keys[0];
        let outer_expr = outer_bindings
            .get(outer_var)
            .ok_or_else(|| Error::CodeGen(format!("exists outer key '{outer_var}' unbound")))?;
        let inner_expr = inner_bindings
            .get(inner_var)
            .ok_or_else(|| Error::CodeGen(format!("exists inner key '{inner_var}' unbound")))?;
        let mut sub = format!("SELECT {inner_expr} FROM {}", inner_from.join(", "));
        if !inner_conds.is_empty() {
            write!(sub, " WHERE {}", inner_conds.join(" AND ")).unwrap();
        }
        Ok(format!(
            "{outer_expr} {}IN ({sub})",
            if negated { "NOT " } else { "" }
        ))
    }

    // ---------------- terms ----------------

    fn render_term(&self, t: &Term, bindings: &HashMap<String, String>) -> Result<String> {
        Ok(match t {
            Term::Var(v) => bindings
                .get(v)
                .cloned()
                .ok_or_else(|| Error::CodeGen(format!("variable '{v}' unbound")))?,
            Term::Const(c) => render_const(c),
            Term::Agg { func, arg } => {
                use pytond_tondir::AggFunc;
                let inner = self.render_term(arg, bindings)?;
                match func {
                    AggFunc::Sum => format!("SUM({inner})"),
                    AggFunc::Min => format!("MIN({inner})"),
                    AggFunc::Max => format!("MAX({inner})"),
                    AggFunc::Avg => format!("AVG({inner})"),
                    AggFunc::Count => {
                        // count over a bare "1" constant means COUNT(*)
                        if matches!(**arg, Term::Const(Const::Int(1))) {
                            "COUNT(*)".to_string()
                        } else {
                            format!("COUNT({inner})")
                        }
                    }
                    AggFunc::CountDistinct => format!("COUNT(DISTINCT {inner})"),
                }
            }
            Term::Ext { func, args } => self.render_ext(func, args, bindings)?,
            Term::If { cond, then, els } => format!(
                "CASE WHEN {} THEN {} ELSE {} END",
                self.render_term(cond, bindings)?,
                self.render_term(then, bindings)?,
                self.render_term(els, bindings)?
            ),
            Term::Bin { op, lhs, rhs } => {
                let l = self.paren(lhs, bindings)?;
                let r = self.paren(rhs, bindings)?;
                match op {
                    ScalarOp::Like => format!("{l} LIKE {r}"),
                    ScalarOp::NotLike => format!("{l} NOT LIKE {r}"),
                    other => format!("{l} {} {r}", other.sql()),
                }
            }
            Term::Not(inner) => format!("NOT ({})", self.render_term(inner, bindings)?),
            Term::IsNull(inner) => {
                format!("{} IS NULL", self.paren(inner, bindings)?)
            }
        })
    }

    fn paren(&self, t: &Term, bindings: &HashMap<String, String>) -> Result<String> {
        let s = self.render_term(t, bindings)?;
        Ok(match t {
            Term::Bin { .. } => format!("({s})"),
            _ => s,
        })
    }

    /// Dialect-specific external functions (paper: "Backend Adaptation").
    fn render_ext(
        &self,
        func: &str,
        args: &[Term],
        bindings: &HashMap<String, String>,
    ) -> Result<String> {
        let rendered: Vec<String> = args
            .iter()
            .map(|a| self.render_term(a, bindings))
            .collect::<Result<_>>()?;
        let arg = |i: usize| -> Result<&String> {
            rendered
                .get(i)
                .ok_or_else(|| Error::CodeGen(format!("{func} missing argument {i}")))
        };
        Ok(match func {
            "uid" => match rendered.first() {
                Some(col) => format!("row_number() OVER (ORDER BY {col})"),
                None => "row_number() OVER ()".to_string(),
            },
            "year" => match self.dialect {
                Dialect::DuckDb => format!("year({})", arg(0)?),
                _ => format!("EXTRACT(YEAR FROM {})", arg(0)?),
            },
            "month" => match self.dialect {
                Dialect::DuckDb => format!("month({})", arg(0)?),
                _ => format!("EXTRACT(MONTH FROM {})", arg(0)?),
            },
            "day" => match self.dialect {
                Dialect::DuckDb => format!("day({})", arg(0)?),
                _ => format!("EXTRACT(DAY FROM {})", arg(0)?),
            },
            "substr" => match self.dialect {
                Dialect::DuckDb => format!("substr({}, {}, {})", arg(0)?, arg(1)?, arg(2)?),
                _ => format!("SUBSTRING({} FROM {} FOR {})", arg(0)?, arg(1)?, arg(2)?),
            },
            "strlen" => match self.dialect {
                Dialect::DuckDb => format!("length({})", arg(0)?),
                _ => format!("CHAR_LENGTH({})", arg(0)?),
            },
            "round" => {
                if rendered.len() > 1 {
                    format!("ROUND({}, {})", arg(0)?, arg(1)?)
                } else {
                    format!("ROUND({})", arg(0)?)
                }
            }
            "abs" => format!("ABS({})", arg(0)?),
            "floor" => format!("FLOOR({})", arg(0)?),
            "ceil" => format!("CEIL({})", arg(0)?),
            "sqrt" => format!("SQRT({})", arg(0)?),
            "power" => format!("POWER({}, {})", arg(0)?, arg(1)?),
            "upper" => format!("UPPER({})", arg(0)?),
            "lower" => format!("LOWER({})", arg(0)?),
            "coalesce" => format!("COALESCE({})", rendered.join(", ")),
            "add_months" => format!("ADD_MONTHS({}, {})", arg(0)?, arg(1)?),
            "add_years" => format!("ADD_YEARS({}, {})", arg(0)?, arg(1)?),
            "add_days" => format!("ADD_DAYS({}, {})", arg(0)?, arg(1)?),
            "strpos" => format!("STRPOS({}, {})", arg(0)?, arg(1)?),
            other => {
                return Err(Error::CodeGen(format!(
                    "unknown external function '{other}'"
                )))
            }
        })
    }
}

fn render_const(c: &Const) -> String {
    match c {
        Const::Int(i) => i.to_string(),
        Const::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Const::Bool(b) => b.to_string().to_uppercase(),
        Const::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Const::Date(d) => format!("DATE '{}'", pytond_common::date::format(*d)),
        Const::Null => "NULL".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_common::DType;
    use pytond_tondir::builder::*;
    use pytond_tondir::{AggFunc, Head, TableSchema};

    fn catalog() -> Catalog {
        Catalog::new().with(TableSchema::new(
            "r",
            vec![
                ("a".into(), DType::Int),
                ("b".into(), DType::Float),
                ("c".into(), DType::Float),
            ],
        ))
    }

    #[test]
    fn paper_example_aggregation_rule() {
        // R1(a, s) :- R(a, b, c), (s=sum(b)).  →  WITH R1(a, s) AS (SELECT ...)
        let p = Program {
            rules: vec![rule(
                Head {
                    rel: "r1".into(),
                    cols: vec![("a".into(), "a".into()), ("s".into(), "s".into())],
                    group: Some(vec!["a".into()]),
                    sort: None,
                    limit: None,
                    distinct: false,
                },
                vec![
                    rel("r", "r", &["a", "b", "c"]),
                    assign("s", Term::agg(AggFunc::Sum, Term::var("b"))),
                ],
            )],
        };
        let sql = generate_sql(&p, &catalog(), Dialect::DuckDb).unwrap();
        assert!(sql.contains("WITH r1(a, s) AS ("), "{sql}");
        assert!(sql.contains("SUM(r.b) AS s"), "{sql}");
        assert!(sql.contains("GROUP BY r.a"), "{sql}");
        assert!(sql.trim_end().ends_with("SELECT * FROM r1"), "{sql}");
    }

    #[test]
    fn implicit_join_becomes_where_equality() {
        let p = Program {
            rules: vec![rule(
                head("out", &["x"]),
                vec![
                    rel("r", "t1", &["k", "x", "c1"]),
                    rel("r", "t2", &["k", "y", "c2"]),
                ],
            )],
        };
        let sql = generate_sql(&p, &catalog(), Dialect::DuckDb).unwrap();
        assert!(sql.contains("FROM r AS t1, r AS t2"), "{sql}");
        assert!(sql.contains("WHERE t1.a = t2.a"), "{sql}");
    }

    #[test]
    fn filters_and_sort_limit() {
        let p = Program {
            rules: vec![rule(
                Head {
                    rel: "out".into(),
                    cols: vec![("a".into(), "a".into())],
                    group: None,
                    sort: Some(vec![("a".into(), false)]),
                    limit: Some(10),
                    distinct: false,
                },
                vec![
                    rel("r", "r", &["a", "b", "c"]),
                    cmp(ScalarOp::Gt, Term::var("b"), Term::float(5.0)),
                ],
            )],
        };
        let sql = generate_sql(&p, &catalog(), Dialect::DuckDb).unwrap();
        assert!(sql.contains("WHERE r.b > 5.0"), "{sql}");
        assert!(sql.contains("ORDER BY r.a DESC"), "{sql}");
        assert!(sql.contains("LIMIT 10"), "{sql}");
    }

    #[test]
    fn const_rel_hoisted_as_values_cte() {
        let p = Program {
            rules: vec![rule(
                head("out", &["a", "c0"]),
                vec![
                    rel("r", "r", &["a", "b", "c"]),
                    Atom::ConstRel {
                        vars: vec!["c0".into()],
                        rows: vec![vec![Const::Int(0)], vec![Const::Int(1)]],
                    },
                ],
            )],
        };
        let sql = generate_sql(&p, &catalog(), Dialect::DuckDb).unwrap();
        assert!(
            sql.contains("const_rel_1(c0) AS (\n  VALUES (0), (1)\n)"),
            "{sql}"
        );
        assert!(sql.contains("FROM r, const_rel_1"), "{sql}");
    }

    #[test]
    fn exists_becomes_in_subquery() {
        let p = Program {
            rules: vec![rule(
                head("out", &["a"]),
                vec![
                    rel("r", "r", &["a", "b", "c"]),
                    Atom::Exists {
                        body: pytond_tondir::Body::new(vec![
                            rel("r", "inner1", &["a2", "b2", "c2"]),
                            cmp(ScalarOp::Gt, Term::var("b2"), Term::float(1.0)),
                        ]),
                        keys: vec![("a".into(), "a2".into())],
                        negated: true,
                    },
                ],
            )],
        };
        let sql = generate_sql(&p, &catalog(), Dialect::DuckDb).unwrap();
        assert!(
            sql.contains("r.a NOT IN (SELECT inner1.a FROM r AS inner1 WHERE inner1.b > 1.0)"),
            "{sql}"
        );
    }

    #[test]
    fn outer_join_marker_becomes_left_join() {
        let p = Program {
            rules: vec![rule(
                head("out", &["x", "y"]),
                vec![
                    rel("r", "t1", &["k1", "x", "c1"]),
                    rel("r", "t2", &["k2", "y", "c2"]),
                    Atom::OuterJoin {
                        kind: OuterKind::Left,
                        left: "t1".into(),
                        right: "t2".into(),
                        on: vec![("k1".into(), "k2".into())],
                    },
                ],
            )],
        };
        let sql = generate_sql(&p, &catalog(), Dialect::DuckDb).unwrap();
        assert!(
            sql.contains("FROM r AS t1 LEFT JOIN r AS t2 ON t1.a = t2.a"),
            "{sql}"
        );
    }

    #[test]
    fn dialects_differ_in_ext_functions() {
        let p = Program {
            rules: vec![rule(
                head("out", &["y"]),
                vec![
                    rel("r", "r", &["a", "b", "c"]),
                    assign(
                        "y",
                        Term::Ext {
                            func: "substr".into(),
                            args: vec![Term::var("a"), Term::int(1), Term::int(2)],
                        },
                    ),
                ],
            )],
        };
        let duck = generate_sql(&p, &catalog(), Dialect::DuckDb).unwrap();
        let hyper = generate_sql(&p, &catalog(), Dialect::Hyper).unwrap();
        assert!(duck.contains("substr(r.a, 1, 2)"), "{duck}");
        assert!(hyper.contains("SUBSTRING(r.a FROM 1 FOR 2)"), "{hyper}");
    }

    #[test]
    fn uid_renders_row_number() {
        let p = Program {
            rules: vec![rule(
                head("out", &["a", "id"]),
                vec![
                    rel("r", "r", &["a", "b", "c"]),
                    assign(
                        "id",
                        Term::Ext {
                            func: "uid".into(),
                            args: vec![],
                        },
                    ),
                ],
            )],
        };
        let sql = generate_sql(&p, &catalog(), Dialect::DuckDb).unwrap();
        assert!(sql.contains("row_number() OVER ()"), "{sql}");
    }

    #[test]
    fn duplicate_rule_names_rejected() {
        let r1 = rule(head("dup", &["a"]), vec![rel("r", "r", &["a", "b", "c"])]);
        let p = Program {
            rules: vec![r1.clone(), r1],
        };
        assert!(generate_sql(&p, &catalog(), Dialect::DuckDb).is_err());
    }

    #[test]
    fn quoting_of_odd_identifiers() {
        assert_eq!(quote_ident("abc"), "abc");
        assert_eq!(quote_ident("select"), "\"select\"");
        assert_eq!(quote_ident("7"), "\"7\"");
        assert_eq!(quote_ident("my col"), "\"my col\"");
    }

    #[test]
    fn if_renders_case_when() {
        let p = Program {
            rules: vec![rule(
                head("out", &["v"]),
                vec![
                    rel("r", "r", &["a", "b", "c"]),
                    assign(
                        "v",
                        Term::If {
                            cond: Box::new(Term::bin(ScalarOp::Eq, Term::var("a"), Term::int(1))),
                            then: Box::new(Term::var("b")),
                            els: Box::new(Term::int(0)),
                        },
                    ),
                ],
            )],
        };
        let sql = generate_sql(&p, &catalog(), Dialect::DuckDb).unwrap();
        assert!(
            sql.contains("CASE WHEN r.a = 1 THEN r.b ELSE 0 END"),
            "{sql}"
        );
    }
}
