//! Self-join elimination (paper, Section IV): two accesses to the same
//! relation joined on a unique key collapse into one.

use crate::uniqueness::infer_with_schemas;
use pytond_common::hash::FxHashMap;
use pytond_tondir::{Atom, Catalog, Program, Term};

/// Merges redundant self-joins. Two `Rel` atoms over the same relation that
/// share a variable bound at a unique-key position reference the *same row*;
/// the second access's variables are substituted by the first's.
pub fn eliminate_self_joins(mut program: Program, catalog: &Catalog) -> Program {
    let unique = infer_with_schemas(&program, catalog);
    for rule in &mut program.rules {
        while let Some((_first, second, renames)) = find_mergeable(rule, &unique) {
            // Rename the second access's variables throughout the rule, then
            // delete the access.
            rule.body.atoms.remove(second);
            let rename = |v: &str| renames.get(v).cloned();
            for atom in &mut rule.body.atoms {
                rename_atom(atom, &rename);
            }
            for (_, v) in &mut rule.head.cols {
                if let Some(nv) = renames.get(v.as_str()) {
                    *v = nv.clone();
                }
            }
            if let Some(g) = &mut rule.head.group {
                for v in g {
                    if let Some(nv) = renames.get(v.as_str()) {
                        *v = nv.clone();
                    }
                }
            }
            if let Some(s) = &mut rule.head.sort {
                for (v, _) in s {
                    if let Some(nv) = renames.get(v.as_str()) {
                        *v = nv.clone();
                    }
                }
            }
        }
    }
    program
}

fn rename_atom(atom: &mut Atom, rename: &impl Fn(&str) -> Option<String>) {
    match atom {
        Atom::Rel { vars, .. } | Atom::ConstRel { vars, .. } => {
            for v in vars {
                if let Some(nv) = rename(v) {
                    *v = nv;
                }
            }
        }
        Atom::Pred(t) => t.rename_vars(&mut |v| rename(v)),
        Atom::Assign { term, .. } => term.rename_vars(&mut |v| rename(v)),
        Atom::Exists { keys, .. } => {
            for (outer, _) in keys {
                if let Some(nv) = rename(outer) {
                    *outer = nv;
                }
            }
        }
        Atom::OuterJoin { on, .. } => {
            for (l, r) in on {
                if let Some(nv) = rename(l) {
                    *l = nv;
                }
                if let Some(nv) = rename(r) {
                    *r = nv;
                }
            }
        }
    }
}

/// Finds a pair of same-relation accesses joined on a unique position.
/// Returns (first index, second index, second-vars → first-vars mapping).
fn find_mergeable(
    rule: &pytond_tondir::Rule,
    unique: &crate::uniqueness::SchemaUnique,
) -> Option<(usize, usize, FxHashMap<String, String>)> {
    // Outer-joined aliases must not be merged.
    let mut outer_aliases: Vec<&str> = Vec::new();
    for atom in &rule.body.atoms {
        if let Atom::OuterJoin { left, right, .. } = atom {
            outer_aliases.push(left);
            outer_aliases.push(right);
        }
    }
    let accesses: Vec<(usize, &String, &String, &Vec<String>)> = rule
        .body
        .atoms
        .iter()
        .enumerate()
        .filter_map(|(i, a)| match a {
            Atom::Rel { rel, alias, vars } => Some((i, rel, alias, vars)),
            _ => None,
        })
        .collect();
    // Equality predicates contribute additional join pairs: x = y.
    let mut eqs: Vec<(String, String)> = Vec::new();
    for atom in &rule.body.atoms {
        if let Atom::Pred(Term::Bin {
            op: pytond_tondir::ScalarOp::Eq,
            lhs,
            rhs,
        }) = atom
        {
            if let (Term::Var(a), Term::Var(b)) = (lhs.as_ref(), rhs.as_ref()) {
                eqs.push((a.clone(), b.clone()));
            }
        }
    }
    let joined = |a: &str, b: &str| -> bool {
        a == b
            || eqs
                .iter()
                .any(|(x, y)| (x == a && y == b) || (x == b && y == a))
    };
    for (ai, (i1, rel1, alias1, vars1)) in accesses.iter().enumerate() {
        for (i2, rel2, alias2, vars2) in accesses.iter().skip(ai + 1) {
            if rel1 != rel2 || vars1.len() != vars2.len() {
                continue;
            }
            if outer_aliases.contains(&alias1.as_str()) || outer_aliases.contains(&alias2.as_str())
            {
                continue;
            }
            // A shared (or equated) variable at the same unique position?
            let mergeable = vars1
                .iter()
                .zip(vars2.iter())
                .enumerate()
                .any(|(p, (a, b))| joined(a, b) && unique.position_is_unique(rel1, p));
            if mergeable {
                let mut renames = FxHashMap::default();
                for (a, b) in vars1.iter().zip(vars2.iter()) {
                    if a != b {
                        renames.insert(b.clone(), a.clone());
                    }
                }
                return Some((*i1, *i2, renames));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_common::DType;
    use pytond_tondir::builder::*;
    use pytond_tondir::{ScalarOp, TableSchema};

    fn catalog() -> Catalog {
        Catalog::new().with(
            TableSchema::new(
                "r",
                vec![
                    ("a".into(), DType::Int),
                    ("b".into(), DType::Int),
                    ("c".into(), DType::Int),
                    ("d".into(), DType::Int),
                ],
            )
            .with_unique(&["a"]),
        )
    }

    /// The paper's example: `R1(z) :- R(a,b1,c1,d1), R(a,b2,c2,d2), (z=b1*c2)`
    /// collapses to one access.
    #[test]
    fn merges_unique_key_self_join() {
        let p = Program {
            rules: vec![rule(
                head("r1", &["z"]),
                vec![
                    rel("r", "t1", &["a", "b1", "c1", "d1"]),
                    rel("r", "t2", &["a", "b2", "c2", "d2"]),
                    assign(
                        "z",
                        Term::bin(ScalarOp::Mul, Term::var("b1"), Term::var("c2")),
                    ),
                ],
            )],
        };
        let out = eliminate_self_joins(p, &catalog());
        let accesses = out.rules[0]
            .body
            .atoms
            .iter()
            .filter(|a| matches!(a, Atom::Rel { .. }))
            .count();
        assert_eq!(accesses, 1);
        // z now reads b1 * c1.
        match &out.rules[0].body.atoms[1] {
            Atom::Assign { term, .. } => {
                assert_eq!(
                    *term,
                    Term::bin(ScalarOp::Mul, Term::var("b1"), Term::var("c1"))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equality_predicate_joins_count() {
        let p = Program {
            rules: vec![rule(
                head("r1", &["b1"]),
                vec![
                    rel("r", "t1", &["a1", "b1", "c1", "d1"]),
                    rel("r", "t2", &["a2", "b2", "c2", "d2"]),
                    cmp(ScalarOp::Eq, Term::var("a1"), Term::var("a2")),
                ],
            )],
        };
        let out = eliminate_self_joins(p, &catalog());
        let accesses = out.rules[0]
            .body
            .atoms
            .iter()
            .filter(|a| matches!(a, Atom::Rel { .. }))
            .count();
        assert_eq!(accesses, 1);
    }

    #[test]
    fn non_unique_join_keeps_both() {
        let p = Program {
            rules: vec![rule(
                head("r1", &["c1"]),
                vec![
                    rel("r", "t1", &["a1", "b", "c1", "d1"]),
                    rel("r", "t2", &["a2", "b", "c2", "d2"]), // join on b (not unique)
                ],
            )],
        };
        let out = eliminate_self_joins(p, &catalog());
        let accesses = out.rules[0]
            .body
            .atoms
            .iter()
            .filter(|a| matches!(a, Atom::Rel { .. }))
            .count();
        assert_eq!(accesses, 2);
    }

    #[test]
    fn different_relations_untouched() {
        let cat = catalog()
            .with(TableSchema::new("s", vec![("a".into(), DType::Int)]).with_unique(&["a"]));
        let p = Program {
            rules: vec![rule(
                head("r1", &["a"]),
                vec![
                    rel("r", "t1", &["a", "b", "c", "d"]),
                    rel("s", "t2", &["a"]),
                ],
            )],
        };
        let out = eliminate_self_joins(p, &cat);
        let accesses = out.rules[0]
            .body
            .atoms
            .iter()
            .filter(|a| matches!(a, Atom::Rel { .. }))
            .count();
        assert_eq!(accesses, 2);
    }
}
