//! Group-aggregate elimination (paper, Section IV): grouping on a unique key
//! makes every group a single row, so aggregates collapse to identities.

use crate::uniqueness::infer_with_schemas;
use pytond_tondir::{AggFunc, Atom, Catalog, Program, Term};

/// Rewrites `R1(k, s) group(k) :- R(k, ...), (s=sum(b))` into
/// `R1(k, s) :- R(k, ...), (s=b)` when `k` is unique in `R`.
pub fn eliminate_group_aggregates(mut program: Program, catalog: &Catalog) -> Program {
    let unique = infer_with_schemas(&program, catalog);
    for rule in &mut program.rules {
        let Some(group) = rule.head.group.clone() else {
            continue;
        };
        // Single relation access, no const rels (cross joins break the
        // single-row-per-group argument).
        let accesses: Vec<(&String, &Vec<String>)> = rule
            .body
            .atoms
            .iter()
            .filter_map(|a| match a {
                Atom::Rel { rel, vars, .. } => Some((rel, vars)),
                _ => None,
            })
            .collect();
        if accesses.len() != 1
            || rule
                .body
                .atoms
                .iter()
                .any(|a| matches!(a, Atom::ConstRel { .. } | Atom::OuterJoin { .. }))
        {
            continue;
        }
        let (rel, vars) = accesses[0];
        // Group vars → source column names.
        let Some(schema) = unique.schemas.get(rel.as_str()) else {
            continue;
        };
        let mut group_cols = Vec::new();
        let mut resolvable = true;
        for g in &group {
            match vars.iter().position(|v| v == g) {
                Some(pos) => group_cols.push(schema[pos].clone()),
                None => {
                    resolvable = false;
                    break;
                }
            }
        }
        if !resolvable || !unique.cols_contain_key(rel, &group_cols) {
            continue;
        }
        // Rewrite: drop the group clause, aggregates become identities.
        rule.head.group = None;
        for atom in &mut rule.body.atoms {
            if let Atom::Assign { term, .. } = atom {
                strip_aggregates(term);
            }
        }
    }
    program
}

/// Replaces aggregates with their single-row equivalents:
/// `sum/min/max/avg(x)` → `x`, `count(x)` → `1`, `count_distinct(x)` → `1`.
fn strip_aggregates(term: &mut Term) {
    match term {
        Term::Agg { func, arg } => {
            let replacement = match func {
                AggFunc::Count | AggFunc::CountDistinct => Term::int(1),
                _ => (**arg).clone(),
            };
            *term = replacement;
            strip_aggregates(term);
        }
        Term::Ext { args, .. } => args.iter_mut().for_each(strip_aggregates),
        Term::If { cond, then, els } => {
            strip_aggregates(cond);
            strip_aggregates(then);
            strip_aggregates(els);
        }
        Term::Bin { lhs, rhs, .. } => {
            strip_aggregates(lhs);
            strip_aggregates(rhs);
        }
        Term::Not(t) | Term::IsNull(t) => strip_aggregates(t),
        Term::Var(_) | Term::Const(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_common::DType;
    use pytond_tondir::builder::*;
    use pytond_tondir::TableSchema;

    fn catalog() -> Catalog {
        Catalog::new().with(
            TableSchema::new(
                "r",
                vec![
                    ("id".into(), DType::Int),
                    ("a".into(), DType::Int),
                    ("b".into(), DType::Float),
                ],
            )
            .with_unique(&["id"]),
        )
    }

    fn grouped_rule(group_var: &str) -> Program {
        let mut r = rule(
            head("r1", &["k", "s"]),
            vec![
                rel("r", "r", &["id", "a", "b"]),
                assign("s", Term::agg(AggFunc::Sum, Term::var("b"))),
            ],
        );
        r.head.cols[0] = ("k".into(), group_var.into());
        r.head.group = Some(vec![group_var.to_string()]);
        Program { rules: vec![r] }
    }

    /// The paper's example: group-by-sum on the primary key disappears.
    #[test]
    fn eliminates_group_on_unique_key() {
        let out = eliminate_group_aggregates(grouped_rule("id"), &catalog());
        let r = &out.rules[0];
        assert!(r.head.group.is_none());
        assert!(matches!(
            &r.body.atoms[1],
            Atom::Assign { term: Term::Var(v), .. } if v == "b"
        ));
    }

    #[test]
    fn keeps_group_on_non_unique_column() {
        let out = eliminate_group_aggregates(grouped_rule("a"), &catalog());
        assert!(out.rules[0].head.group.is_some());
    }

    #[test]
    fn count_becomes_one() {
        let mut p = grouped_rule("id");
        p.rules[0].body.atoms[1] = assign("s", Term::agg(AggFunc::Count, Term::var("b")));
        let out = eliminate_group_aggregates(p, &catalog());
        assert!(matches!(
            &out.rules[0].body.atoms[1],
            Atom::Assign {
                term: Term::Const(pytond_tondir::Const::Int(1)),
                ..
            }
        ));
    }

    #[test]
    fn joins_are_not_rewritten() {
        let mut r = rule(
            head("r1", &["k", "s"]),
            vec![
                rel("r", "t1", &["id", "a", "b"]),
                rel("r", "t2", &["id", "a2", "b2"]),
                assign("s", Term::agg(AggFunc::Sum, Term::var("b"))),
            ],
        );
        r.head.cols[0] = ("k".into(), "id".into());
        r.head.group = Some(vec!["id".into()]);
        let p = Program { rules: vec![r] };
        let out = eliminate_group_aggregates(p, &catalog());
        assert!(out.rules[0].head.group.is_some());
    }
}
