//! Rule inlining (paper, Section IV): fuse chains of rules up to the flow
//! breakers of Table VII.

use pytond_common::hash::FxHashMap;
use pytond_tondir::analysis;
use pytond_tondir::{Atom, Body, Program, Rule, Term};

/// `true` when the rule must stay a separate CTE (Table VII).
pub fn is_flow_breaker(rule: &Rule, is_sink: bool) -> bool {
    if is_sink {
        return true; // Sink Rule
    }
    if rule.head.group.is_some() {
        return true; // Group By
    }
    if rule.head.distinct {
        return true; // Distinct
    }
    if rule.head.sort.is_some() || rule.head.limit.is_some() {
        return true; // Sort/Limit
    }
    for atom in &rule.body.atoms {
        match atom {
            Atom::OuterJoin { .. } => return true, // Outer Join
            Atom::Assign { term, .. } => {
                if term.contains_agg() {
                    return true; // Aggregate
                }
                // UID generation depends on row order; keep it materialized.
                let mut has_uid = false;
                term.visit(&mut |t| {
                    if matches!(t, Term::Ext { func, .. } if func == "uid") {
                        has_uid = true;
                    }
                });
                if has_uid {
                    return true;
                }
            }
            Atom::Pred(term) if term.contains_agg() => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Inlines every non-flow-breaker rule that is referenced exactly once, into
/// its single consumer. Runs to a fixpoint.
pub fn inline_rules(mut program: Program) -> Program {
    let mut splice_id = 0usize;
    loop {
        let counts = analysis::reference_counts(&program);
        let sink = program.output_relation().map(|s| s.to_string());
        let candidate = program.rules.iter().enumerate().find(|(_, r)| {
            let is_sink = sink.as_deref() == Some(r.head.rel.as_str());
            !is_flow_breaker(r, is_sink)
                && counts.get(&r.head.rel).copied().unwrap_or(0) == 1
                && consumer_is_plain_access(&program, &r.head.rel)
        });
        let Some((idx, _)) = candidate else {
            return program;
        };
        let producer = program.rules.remove(idx);
        splice_id += 1;
        // Find the single consumer and splice the producer's body in.
        for rule in &mut program.rules {
            if splice(rule, &producer, splice_id) {
                break;
            }
        }
    }
}

/// The consumer must reference the relation through a plain body `Rel` atom
/// (not inside `exists`, which would need nested-subquery inlining).
fn consumer_is_plain_access(program: &Program, rel: &str) -> bool {
    for rule in &program.rules {
        // The consumed access must not be an outer-join operand: splicing
        // would dangle the marker's alias reference.
        let mut outer_aliases: Vec<&str> = Vec::new();
        for atom in &rule.body.atoms {
            if let Atom::OuterJoin { left, right, .. } = atom {
                outer_aliases.push(left);
                outer_aliases.push(right);
            }
        }
        for atom in &rule.body.atoms {
            match atom {
                Atom::Rel { rel: r, alias, .. } if r == rel => {
                    return !outer_aliases.contains(&alias.as_str());
                }
                Atom::Exists { body, .. }
                    if body
                        .atoms
                        .iter()
                        .any(|a| matches!(a, Atom::Rel { rel: r, .. } if r == rel)) =>
                {
                    return false;
                }
                _ => {}
            }
        }
    }
    false
}

/// Replaces the consumer's access to `producer.head.rel` with the producer's
/// body, renaming variables to avoid capture. Returns `true` on success.
fn splice(consumer: &mut Rule, producer: &Rule, splice_id: usize) -> bool {
    let pos = consumer
        .body
        .atoms
        .iter()
        .position(|a| matches!(a, Atom::Rel { rel, .. } if *rel == producer.head.rel));
    let Some(pos) = pos else {
        return false;
    };
    let Atom::Rel { vars, .. } = consumer.body.atoms[pos].clone() else {
        unreachable!("position found above");
    };
    // Mapping: producer head var (position i) → consumer var vars[i];
    // all other producer vars → fresh names.
    let mut mapping: FxHashMap<String, String> = FxHashMap::default();
    for ((_, hv), cv) in producer.head.cols.iter().zip(&vars) {
        mapping.insert(hv.clone(), cv.clone());
    }
    let taken: std::collections::HashSet<String> =
        analysis::defined_vars(&consumer.body).into_iter().collect();
    let mut fresh_counter = 0usize;
    let mut fresh = |base: &str, taken: &std::collections::HashSet<String>| -> String {
        loop {
            fresh_counter += 1;
            let name = format!("{base}__i{fresh_counter}");
            if !taken.contains(&name) {
                return name;
            }
        }
    };
    let mut map_var = |v: &str, mapping: &mut FxHashMap<String, String>| -> String {
        if let Some(m) = mapping.get(v) {
            return m.clone();
        }
        let nv = fresh(v, &taken);
        mapping.insert(v.to_string(), nv.clone());
        nv
    };
    // Clone + rename the producer body; aliases get a per-splice suffix so
    // repeated accesses to the same base relation stay distinguishable.
    let mut new_atoms = Vec::with_capacity(producer.body.atoms.len());
    for atom in &producer.body.atoms {
        new_atoms.push(rename_atom_clone(
            atom,
            &mut |v| map_var(v, &mut mapping),
            splice_id,
        ));
    }
    // Splice.
    consumer.body.atoms.splice(pos..=pos, new_atoms);
    true
}

fn rename_atom_clone(
    atom: &Atom,
    rename: &mut impl FnMut(&str) -> String,
    splice_id: usize,
) -> Atom {
    match atom {
        Atom::Rel { rel, alias, vars } => Atom::Rel {
            rel: rel.clone(),
            alias: format!("{alias}_s{splice_id}"),
            vars: vars.iter().map(|v| rename(v)).collect(),
        },
        Atom::ConstRel { vars, rows } => Atom::ConstRel {
            vars: vars.iter().map(|v| rename(v)).collect(),
            rows: rows.clone(),
        },
        Atom::Pred(t) => {
            let mut t = t.clone();
            t.rename_vars(&mut |v| Some(rename(v)));
            Atom::Pred(t)
        }
        Atom::Assign { var, term } => {
            let mut term = term.clone();
            term.rename_vars(&mut |v| Some(rename(v)));
            Atom::Assign {
                var: rename(var),
                term,
            }
        }
        Atom::Exists {
            body,
            keys,
            negated,
        } => Atom::Exists {
            body: Body::new(
                body.atoms
                    .iter()
                    .map(|a| rename_atom_clone(a, rename, splice_id))
                    .collect(),
            ),
            keys: keys.iter().map(|(o, i)| (rename(o), rename(i))).collect(),
            negated: *negated,
        },
        Atom::OuterJoin {
            kind,
            left,
            right,
            on,
        } => Atom::OuterJoin {
            kind: *kind,
            left: format!("{left}_s{splice_id}"),
            right: format!("{right}_s{splice_id}"),
            on: on.iter().map(|(l, r)| (rename(l), rename(r))).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_tondir::builder::*;
    use pytond_tondir::{AggFunc, ScalarOp};

    /// The paper's 5-rule inlining example collapses to one rule.
    #[test]
    fn paper_example_inlines_to_one_rule() {
        // R2(b, c, d) :- R1(a, b, c, d), (a > 1000).
        // R3(b, d) :- R2(b, c, d), (c != "A").
        // R5(e, g) :- R4(e, f, g), (f > 100).
        // R6(b, g) :- R3(b, x), R5(x, g).
        // R7(b, m) group(b) :- R6(b, g), (m = max(g)).
        let mut r7 = rule(
            head("r7", &["b", "m"]),
            vec![
                rel("r6", "r6", &["b", "g"]),
                assign("m", Term::agg(AggFunc::Max, Term::var("g"))),
            ],
        );
        r7.head.group = Some(vec!["b".into()]);
        let p = Program {
            rules: vec![
                rule(
                    head("r2", &["b", "c", "d"]),
                    vec![
                        rel("r1", "r1", &["a", "b", "c", "d"]),
                        cmp(ScalarOp::Gt, Term::var("a"), Term::int(1000)),
                    ],
                ),
                rule(
                    head("r3", &["b", "d"]),
                    vec![
                        rel("r2", "r2", &["b", "c", "d"]),
                        cmp(ScalarOp::Ne, Term::var("c"), Term::str("A")),
                    ],
                ),
                rule(
                    head("r5", &["e", "g"]),
                    vec![
                        rel("r4", "r4", &["e", "f", "g"]),
                        cmp(ScalarOp::Gt, Term::var("f"), Term::int(100)),
                    ],
                ),
                rule(
                    head("r6", &["b", "g"]),
                    vec![rel("r3", "r3", &["b", "x"]), rel("r5", "r5", &["x", "g"])],
                ),
                r7,
            ],
        };
        let out = inline_rules(p);
        assert_eq!(out.rules.len(), 1, "{out:#?}");
        let body = &out.rules[0].body.atoms;
        // Both base relations and all three filters survive in one body.
        let rels: Vec<&str> = body
            .iter()
            .filter_map(|a| match a {
                Atom::Rel { rel, .. } => Some(rel.as_str()),
                _ => None,
            })
            .collect();
        assert!(rels.contains(&"r1") && rels.contains(&"r4"));
        let preds = body.iter().filter(|a| matches!(a, Atom::Pred(_))).count();
        assert_eq!(preds, 3);
    }

    #[test]
    fn flow_breakers_stop_inlining() {
        let mut agg = rule(
            head("g", &["k", "s"]),
            vec![
                rel("r1", "r1", &["k", "v"]),
                assign("s", Term::agg(AggFunc::Sum, Term::var("v"))),
            ],
        );
        agg.head.group = Some(vec!["k".into()]);
        let p = Program {
            rules: vec![
                agg,
                rule(
                    head("out", &["k"]),
                    vec![
                        rel("g", "g", &["k", "s"]),
                        cmp(ScalarOp::Gt, Term::var("s"), Term::int(0)),
                    ],
                ),
            ],
        };
        let out = inline_rules(p);
        assert_eq!(out.rules.len(), 2);
    }

    #[test]
    fn multiply_referenced_rules_stay() {
        let p = Program {
            rules: vec![
                rule(head("v1", &["a"]), vec![rel("r", "r", &["a"])]),
                rule(
                    head("out", &["x"]),
                    vec![rel("v1", "t1", &["x"]), rel("v1", "t2", &["x"])],
                ),
            ],
        };
        let out = inline_rules(p);
        assert_eq!(out.rules.len(), 2);
    }

    #[test]
    fn variable_capture_avoided() {
        // Producer uses internal var "tmp"; consumer also defines "tmp".
        let p = Program {
            rules: vec![
                rule(
                    head("v1", &["y"]),
                    vec![
                        rel("r", "r", &["a"]),
                        assign(
                            "tmp",
                            Term::bin(ScalarOp::Add, Term::var("a"), Term::int(1)),
                        ),
                        assign("y", Term::var("tmp")),
                    ],
                ),
                rule(
                    head("out", &["z"]),
                    vec![
                        rel("v1", "v1", &["w"]),
                        rel("s", "s", &["tmp"]),
                        assign(
                            "z",
                            Term::bin(ScalarOp::Add, Term::var("w"), Term::var("tmp")),
                        ),
                    ],
                ),
            ],
        };
        let out = inline_rules(p);
        assert_eq!(out.rules.len(), 1);
        // The spliced body must not bind the consumer's "tmp" again.
        let mut assign_targets = Vec::new();
        for a in &out.rules[0].body.atoms {
            if let Atom::Assign { var, .. } = a {
                assign_targets.push(var.clone());
            }
        }
        let tmp_count = assign_targets.iter().filter(|v| *v == "tmp").count();
        assert_eq!(tmp_count, 0, "{assign_targets:?}");
    }

    #[test]
    fn uid_rules_are_breakers() {
        let r = rule(
            head("v1", &["id", "a"]),
            vec![
                rel("r", "r", &["a"]),
                assign(
                    "id",
                    Term::Ext {
                        func: "uid".into(),
                        args: vec![],
                    },
                ),
            ],
        );
        assert!(is_flow_breaker(&r, false));
    }
}
