//! Uniqueness inference: which head columns of each rule form unique keys.
//!
//! Sources (paper, Section III-A): declared constraints in the catalog,
//! `uid()` columns, `group(...)` heads (group keys are unique per output
//! row), and `distinct` heads. Single-source rules propagate the source's
//! unique keys through their variable bindings.

use pytond_common::hash::FxHashMap;
use pytond_tondir::{Atom, Catalog, Program, Rule, Term};

/// Unique column sets per relation name at each point of the program.
#[derive(Debug, Clone, Default)]
pub struct UniqueSets {
    map: FxHashMap<String, Vec<Vec<String>>>,
}

impl UniqueSets {
    /// Seeds from the catalog and walks the program, inferring per-rule keys.
    pub fn infer(program: &Program, catalog: &Catalog) -> UniqueSets {
        let mut u = UniqueSets::default();
        for t in catalog.tables() {
            u.map.insert(t.name.clone(), t.unique.clone());
        }
        for rule in &program.rules {
            let keys = u.rule_keys(rule);
            u.map.insert(rule.head.rel.clone(), keys);
        }
        u
    }

    /// Unique column sets of a relation.
    pub fn of(&self, rel: &str) -> &[Vec<String>] {
        self.map.get(rel).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// `true` when `cols` contains a unique key of `rel`.
    pub fn is_unique_key(&self, rel: &str, cols: &[&str]) -> bool {
        self.of(rel)
            .iter()
            .any(|key| !key.is_empty() && key.iter().all(|k| cols.contains(&k.as_str())))
    }

    fn rule_keys(&self, rule: &Rule) -> Vec<Vec<String>> {
        let mut keys: Vec<Vec<String>> = Vec::new();
        // group(...) head: the group keys are unique in the output.
        if let Some(group) = &rule.head.group {
            let cols: Vec<String> = rule
                .head
                .cols
                .iter()
                .filter(|(_, v)| group.contains(v))
                .map(|(c, _)| c.clone())
                .collect();
            if cols.len() == group.len() {
                keys.push(cols);
            }
        }
        // distinct head: the full column set is unique.
        if rule.head.distinct {
            keys.push(rule.head.cols.iter().map(|(c, _)| c.clone()).collect());
        }
        // uid() assignment exported through the head.
        for atom in &rule.body.atoms {
            if let Atom::Assign { var, term } = atom {
                if matches!(term, Term::Ext { func, .. } if func == "uid") {
                    for (c, v) in &rule.head.cols {
                        if v == var {
                            keys.push(vec![c.clone()]);
                        }
                    }
                }
            }
        }
        // Single-access rules without grouping propagate source keys
        // (filters/projections preserve uniqueness of surviving columns).
        let accesses: Vec<&Atom> = rule
            .body
            .atoms
            .iter()
            .filter(|a| matches!(a, Atom::Rel { .. }))
            .collect();
        if accesses.len() == 1 && rule.head.group.is_none() {
            if let Atom::Rel { rel, vars, .. } = accesses[0] {
                // var → source column position → source column name needs the
                // source schema; we only know positions, so map through the
                // defining head/catalog by position index stored in var order.
                for key in self.of(rel).to_vec() {
                    // Translate source cols to this rule's head cols: source
                    // col at position p binds vars[p]; find head col with that
                    // var.
                    let positions = self.key_positions(rel, &key);
                    let mut mapped = Vec::new();
                    let mut ok = !positions.is_empty();
                    for p in positions {
                        let Some(var) = vars.get(p) else {
                            ok = false;
                            break;
                        };
                        match rule.head.cols.iter().find(|(_, v)| v == var) {
                            Some((c, _)) => mapped.push(c.clone()),
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        keys.push(mapped);
                    }
                }
            }
        }
        keys.sort();
        keys.dedup();
        keys
    }

    /// Positions of `key` columns inside `rel`'s schema. We reconstruct the
    /// schema from whichever defining head or catalog entry registered it —
    /// stored here as the order of the unique-set owner's columns.
    fn key_positions(&self, _rel: &str, _key: &[String]) -> Vec<usize> {
        // Positions require the relation schema; resolved by the caller in
        // `infer_with_schemas`. This basic variant is overridden below.
        Vec::new()
    }
}

/// Schema-aware uniqueness inference (the entry point passes used by O2/O3).
pub fn infer_with_schemas(program: &Program, catalog: &Catalog) -> SchemaUnique {
    let mut schemas: FxHashMap<String, Vec<String>> = FxHashMap::default();
    for t in catalog.tables() {
        schemas.insert(
            t.name.clone(),
            t.cols.iter().map(|(c, _)| c.clone()).collect(),
        );
    }
    let mut map: FxHashMap<String, Vec<Vec<String>>> = FxHashMap::default();
    for t in catalog.tables() {
        map.insert(t.name.clone(), t.unique.clone());
    }
    for rule in &program.rules {
        let keys = rule_keys(rule, &schemas, &map);
        schemas.insert(
            rule.head.rel.clone(),
            rule.head.cols.iter().map(|(c, _)| c.clone()).collect(),
        );
        map.insert(rule.head.rel.clone(), keys);
    }
    SchemaUnique { schemas, map }
}

/// Uniqueness facts plus relation schemas (column orders).
#[derive(Debug, Clone)]
pub struct SchemaUnique {
    /// Relation → ordered column names.
    pub schemas: FxHashMap<String, Vec<String>>,
    /// Relation → unique column sets.
    pub map: FxHashMap<String, Vec<Vec<String>>>,
}

impl SchemaUnique {
    /// `true` when column `col` (by position) of `rel` is a single-column
    /// unique key.
    pub fn position_is_unique(&self, rel: &str, pos: usize) -> bool {
        let Some(schema) = self.schemas.get(rel) else {
            return false;
        };
        let Some(col) = schema.get(pos) else {
            return false;
        };
        self.map
            .get(rel)
            .map(|keys| keys.iter().any(|k| k.len() == 1 && k[0] == *col))
            .unwrap_or(false)
    }

    /// `true` when the named columns contain a unique key of `rel`.
    pub fn cols_contain_key(&self, rel: &str, cols: &[String]) -> bool {
        self.map
            .get(rel)
            .map(|keys| {
                keys.iter()
                    .any(|k| !k.is_empty() && k.iter().all(|c| cols.contains(c)))
            })
            .unwrap_or(false)
    }
}

fn rule_keys(
    rule: &Rule,
    schemas: &FxHashMap<String, Vec<String>>,
    map: &FxHashMap<String, Vec<Vec<String>>>,
) -> Vec<Vec<String>> {
    let mut keys: Vec<Vec<String>> = Vec::new();
    if let Some(group) = &rule.head.group {
        let cols: Vec<String> = rule
            .head
            .cols
            .iter()
            .filter(|(_, v)| group.contains(v))
            .map(|(c, _)| c.clone())
            .collect();
        if cols.len() == group.len() {
            keys.push(cols);
        }
    }
    if rule.head.distinct {
        keys.push(rule.head.cols.iter().map(|(c, _)| c.clone()).collect());
    }
    for atom in &rule.body.atoms {
        if let Atom::Assign { var, term } = atom {
            if matches!(term, Term::Ext { func, .. } if func == "uid") {
                for (c, v) in &rule.head.cols {
                    if v == var {
                        keys.push(vec![c.clone()]);
                    }
                }
            }
        }
    }
    let accesses: Vec<(&String, &Vec<String>)> = rule
        .body
        .atoms
        .iter()
        .filter_map(|a| match a {
            Atom::Rel { rel, vars, .. } => Some((rel, vars)),
            _ => None,
        })
        .collect();
    if accesses.len() == 1 && rule.head.group.is_none() {
        let (rel, vars) = accesses[0];
        if let (Some(schema), Some(src_keys)) = (schemas.get(rel), map.get(rel)) {
            for key in src_keys {
                let mut mapped = Vec::new();
                let mut ok = !key.is_empty();
                for col in key {
                    let Some(pos) = schema.iter().position(|c| c == col) else {
                        ok = false;
                        break;
                    };
                    let Some(var) = vars.get(pos) else {
                        ok = false;
                        break;
                    };
                    match rule.head.cols.iter().find(|(_, v)| v == var) {
                        Some((c, _)) => mapped.push(c.clone()),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    keys.push(mapped);
                }
            }
        }
    }
    keys.sort();
    keys.dedup();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_common::DType;
    use pytond_tondir::builder::*;
    use pytond_tondir::TableSchema;

    fn catalog() -> Catalog {
        Catalog::new().with(
            TableSchema::new(
                "t",
                vec![("pk".into(), DType::Int), ("x".into(), DType::Int)],
            )
            .with_unique(&["pk"]),
        )
    }

    #[test]
    fn catalog_keys_seed() {
        let p = Program { rules: vec![] };
        let u = infer_with_schemas(&p, &catalog());
        assert!(u.position_is_unique("t", 0));
        assert!(!u.position_is_unique("t", 1));
    }

    #[test]
    fn filters_propagate_keys() {
        let p = Program {
            rules: vec![rule(
                head("v1", &["pk", "x"]),
                vec![rel("t", "t", &["pk", "x"])],
            )],
        };
        let u = infer_with_schemas(&p, &catalog());
        assert!(u.position_is_unique("v1", 0));
    }

    #[test]
    fn group_heads_make_keys() {
        let mut r = rule(
            head("g", &["x", "s"]),
            vec![
                rel("t", "t", &["pk", "x"]),
                assign("s", Term::agg(pytond_tondir::AggFunc::Sum, Term::var("pk"))),
            ],
        );
        r.head.group = Some(vec!["x".into()]);
        let p = Program { rules: vec![r] };
        let u = infer_with_schemas(&p, &catalog());
        assert!(u.cols_contain_key("g", &["x".into(), "s".into()]));
        assert!(u.position_is_unique("g", 0));
    }

    #[test]
    fn uid_columns_are_unique() {
        let r = rule(
            head("v", &["__id", "x"]),
            vec![
                rel("t", "t", &["pk", "x"]),
                assign(
                    "__id",
                    Term::Ext {
                        func: "uid".into(),
                        args: vec![],
                    },
                ),
            ],
        );
        let p = Program { rules: vec![r] };
        let u = infer_with_schemas(&p, &catalog());
        assert!(u.position_is_unique("v", 0));
    }

    #[test]
    fn joins_are_conservative() {
        let r = rule(
            head("j", &["pk", "x"]),
            vec![rel("t", "t1", &["pk", "x"]), rel("t", "t2", &["pk", "y"])],
        );
        let p = Program { rules: vec![r] };
        let u = infer_with_schemas(&p, &catalog());
        assert!(!u.position_is_unique("j", 0));
    }
}
