//! TondIR optimization (paper, Section IV).
//!
//! Five rewrites, stacked cumulatively into the levels the evaluation
//! ablates in Figure 10:
//!
//! | Level | Adds |
//! |---|---|
//! | `O0` | nothing (the "Grizzly-simulated" baseline) |
//! | `O1` | local + global dead-code elimination |
//! | `O2` | group-aggregate elimination (unique-key groups) |
//! | `O3` | self-join elimination (unique-key self joins) |
//! | `O4` | rule inlining up to flow breakers (Table VII) |

pub mod dce;
pub mod groupelim;
pub mod inline;
pub mod selfjoin;
pub mod uniqueness;

use pytond_tondir::{Catalog, Program};

/// Cumulative optimization levels (Figure 10's O1–O4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// No IR optimization (Grizzly-simulated).
    O0,
    /// Local + global dead-code elimination.
    O1,
    /// `O1` + group-aggregate elimination.
    O2,
    /// `O2` + self-join elimination.
    O3,
    /// `O3` + rule inlining (the default).
    #[default]
    O4,
}

impl OptLevel {
    /// All levels in ascending order.
    pub fn all() -> [OptLevel; 5] {
        [
            OptLevel::O0,
            OptLevel::O1,
            OptLevel::O2,
            OptLevel::O3,
            OptLevel::O4,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
            OptLevel::O4 => "O4",
        }
    }
}

/// Optimizes a program at the given level. The catalog supplies the
/// uniqueness facts for O2/O3 (paper: annotations + database catalog).
pub fn optimize(mut program: Program, catalog: &Catalog, level: OptLevel) -> Program {
    if level >= OptLevel::O1 {
        program = dce::local_dce(program);
        program = dce::global_dce(program, catalog);
    }
    if level >= OptLevel::O2 {
        program = groupelim::eliminate_group_aggregates(program, catalog);
        program = dce::local_dce(program);
    }
    if level >= OptLevel::O3 {
        program = selfjoin::eliminate_self_joins(program, catalog);
        program = dce::local_dce(program);
        program = dce::global_dce(program, catalog);
    }
    if level >= OptLevel::O4 {
        program = inline::inline_rules(program);
        program = dce::local_dce(program);
        program = dce::global_dce(program, catalog);
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_common::DType;
    use pytond_tondir::builder::*;
    use pytond_tondir::{AggFunc, ScalarOp, TableSchema, Term};

    fn catalog() -> Catalog {
        Catalog::new().with(
            TableSchema::new(
                "r",
                vec![
                    ("id".into(), DType::Int),
                    ("a".into(), DType::Int),
                    ("b".into(), DType::Float),
                ],
            )
            .with_unique(&["id"]),
        )
    }

    /// End-to-end: all four optimizations compose on a small pipeline.
    #[test]
    fn levels_are_cumulative_and_shrink_programs() {
        // v1: filter; v2: project; v3: group on unique id (eliminable);
        // final: plain projection.
        let p = Program {
            rules: vec![
                rule(
                    head("v1", &["id", "a", "b"]),
                    vec![
                        rel("r", "r", &["id", "a", "b"]),
                        cmp(ScalarOp::Gt, Term::var("a"), Term::int(0)),
                        assign("dead", Term::var("b")), // local DCE target
                    ],
                ),
                rule(
                    head("v2", &["id", "b"]),
                    vec![rel("v1", "v1", &["id", "a", "b"])],
                ),
                {
                    let mut r3 = rule(
                        head("v3", &["id", "s"]),
                        vec![
                            rel("v2", "v2", &["id", "b"]),
                            assign("s", Term::agg(AggFunc::Sum, Term::var("b"))),
                        ],
                    );
                    r3.head.group = Some(vec!["id".into()]);
                    r3
                },
                rule(head("out", &["s"]), vec![rel("v3", "v3", &["id", "s"])]),
            ],
        };
        let o0 = optimize(p.clone(), &catalog(), OptLevel::O0);
        assert_eq!(o0.rules.len(), 4);
        let o1 = optimize(p.clone(), &catalog(), OptLevel::O1);
        // dead assign removed
        assert!(o1.rules[0].body.atoms.len() < p.rules[0].body.atoms.len());
        let o2 = optimize(p.clone(), &catalog(), OptLevel::O2);
        // grouping on the unique id disappears
        assert!(o2.rules.iter().all(|r| r.head.group.is_none()));
        let o4 = optimize(p, &catalog(), OptLevel::O4);
        // chain collapses into a single rule
        assert_eq!(o4.rules.len(), 1, "{o4:#?}");
    }
}
