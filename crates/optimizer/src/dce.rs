//! Local and global dead-code elimination (paper, Section IV).

use pytond_common::hash::{FxHashMap, FxHashSet};
use pytond_tondir::analysis;
use pytond_tondir::{Atom, Catalog, Program, Rule};

/// Local DCE: drops assignments whose variable is never used within the rule
/// (the paper's `R1(y) :- R(a,b), (x=a), (y=a*b).` example).
pub fn local_dce(mut program: Program) -> Program {
    for rule in &mut program.rules {
        loop {
            let used = analysis::used_vars(rule);
            // Variables used by *other* assignments also count.
            let before = rule.body.atoms.len();
            rule.body.atoms.retain(|a| match a {
                Atom::Assign { var, .. } => used.contains(var),
                _ => true,
            });
            if rule.body.atoms.len() == before {
                break;
            }
        }
    }
    program
}

/// Global DCE: removes head columns no consumer reads, shrinking the
/// producing rule and every access to it (the paper's attribute-pruning
/// example). Iterates to a fixpoint.
pub fn global_dce(mut program: Program, catalog: &Catalog) -> Program {
    loop {
        let Some(needed) = needed_positions(&program, catalog) else {
            return program;
        };
        let mut changed = false;
        // Shrink producing heads.
        for rule in &mut program.rules {
            let Some(keep) = needed.get(&rule.head.rel) else {
                continue;
            };
            if keep.len() == rule.head.cols.len() {
                continue;
            }
            let cols = std::mem::take(&mut rule.head.cols);
            rule.head.cols = cols
                .into_iter()
                .enumerate()
                .filter_map(|(i, c)| keep.contains(&i).then_some(c))
                .collect();
            changed = true;
        }
        if !changed {
            return program;
        }
        // Shrink every access to the shrunk relations.
        for rule in &mut program.rules {
            shrink_accesses(&mut rule.body.atoms, &needed);
        }
        program = local_dce(program);
    }
}

fn shrink_accesses(atoms: &mut [Atom], needed: &FxHashMap<String, Vec<usize>>) {
    for atom in atoms.iter_mut() {
        match atom {
            Atom::Rel { rel, vars, .. } => {
                if let Some(keep) = needed.get(rel) {
                    if keep.len() != vars.len() {
                        let old = std::mem::take(vars);
                        *vars = old
                            .into_iter()
                            .enumerate()
                            .filter_map(|(i, v)| keep.contains(&i).then_some(v))
                            .collect();
                    }
                }
            }
            Atom::Exists { body, .. } => shrink_accesses(&mut body.atoms, needed),
            _ => {}
        }
    }
}

/// Computes, per derived relation, the head-column positions any consumer
/// still needs. Returns `None` when nothing can be pruned. Base tables are
/// never pruned (their schema is fixed in the database).
fn needed_positions(program: &Program, catalog: &Catalog) -> Option<FxHashMap<String, Vec<usize>>> {
    let mut needed: FxHashMap<String, FxHashSet<usize>> = FxHashMap::default();
    let out_rel = program.output_relation()?.to_string();
    // The program output keeps every column.
    if let Some(def) = program.defining_rule(&out_rel) {
        needed
            .entry(out_rel.clone())
            .or_default()
            .extend(0..def.head.cols.len());
    }
    for rule in &program.rules {
        mark_body(&rule.body.atoms, rule, &mut needed);
    }
    // Convert to sorted position lists for derived relations only.
    let mut out: FxHashMap<String, Vec<usize>> = FxHashMap::default();
    let mut any_shrinks = false;
    for rule in &program.rules {
        if catalog.table(&rule.head.rel).is_some() {
            continue; // never prune base tables
        }
        let all: FxHashSet<usize> = (0..rule.head.cols.len()).collect();
        let keep = needed
            .get(&rule.head.rel)
            .cloned()
            .unwrap_or_default()
            .intersection(&all)
            .copied()
            .collect::<FxHashSet<usize>>();
        let mut keep: Vec<usize> = keep.into_iter().collect();
        keep.sort_unstable();
        // Keep at least one column (zero-column relations are not expressible).
        if keep.is_empty() && !rule.head.cols.is_empty() {
            keep.push(0);
        }
        if keep.len() < rule.head.cols.len() {
            any_shrinks = true;
        }
        out.insert(rule.head.rel.clone(), keep);
    }
    any_shrinks.then_some(out)
}

fn mark_body(atoms: &[Atom], rule: &Rule, needed: &mut FxHashMap<String, FxHashSet<usize>>) {
    // A bound variable is "live" when it appears in the rule's used set or in
    // more than one access position (join variable).
    let used = analysis::used_vars(rule);
    let mut occurrence: FxHashMap<&str, usize> = FxHashMap::default();
    fn count<'a>(atoms: &'a [Atom], occurrence: &mut FxHashMap<&'a str, usize>) {
        for atom in atoms {
            match atom {
                Atom::Rel { vars, .. } | Atom::ConstRel { vars, .. } => {
                    for v in vars {
                        *occurrence.entry(v.as_str()).or_insert(0) += 1;
                    }
                }
                Atom::Exists { body, keys, .. } => {
                    count(&body.atoms, occurrence);
                    for (_, inner) in keys {
                        *occurrence.entry(inner.as_str()).or_insert(0) += 1;
                    }
                }
                _ => {}
            }
        }
    }
    count(&rule.body.atoms, &mut occurrence);

    fn mark(
        atoms: &[Atom],
        used: &FxHashSet<String>,
        occurrence: &FxHashMap<&str, usize>,
        needed: &mut FxHashMap<String, FxHashSet<usize>>,
    ) {
        for atom in atoms {
            match atom {
                Atom::Rel { rel, vars, .. } => {
                    for (i, v) in vars.iter().enumerate() {
                        let live = used.contains(v)
                            || occurrence.get(v.as_str()).copied().unwrap_or(0) > 1;
                        if live {
                            needed.entry(rel.clone()).or_default().insert(i);
                        }
                    }
                }
                Atom::Exists { body, .. } => mark(&body.atoms, used, occurrence, needed),
                _ => {}
            }
        }
    }
    mark(atoms, &used, &occurrence, needed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_common::DType;
    use pytond_tondir::builder::*;
    use pytond_tondir::{AggFunc, ScalarOp, TableSchema, Term};

    fn catalog() -> Catalog {
        Catalog::new().with(TableSchema::new(
            "r",
            vec![
                ("a".into(), DType::Int),
                ("b".into(), DType::Int),
                ("c".into(), DType::Int),
                ("d".into(), DType::Int),
            ],
        ))
    }

    /// Paper example: `R1(y) :- R(a, b), (x=a), (y=a*b).` drops `(x=a)`.
    #[test]
    fn local_dce_removes_unused_assignment() {
        let p = Program {
            rules: vec![rule(
                head("r1", &["y"]),
                vec![
                    rel("r", "r", &["a", "b", "c", "d"]),
                    assign("x", Term::var("a")),
                    assign(
                        "y",
                        Term::bin(ScalarOp::Mul, Term::var("a"), Term::var("b")),
                    ),
                ],
            )],
        };
        let out = local_dce(p);
        assert_eq!(out.rules[0].body.atoms.len(), 2);
    }

    #[test]
    fn local_dce_cascades() {
        // y uses x; z uses y; only z is dead → all three removable only if
        // none feeds the head. Here head uses none.
        let p = Program {
            rules: vec![rule(
                head("r1", &["a"]),
                vec![
                    rel("r", "r", &["a", "b", "c", "d"]),
                    assign("x", Term::var("b")),
                    assign("y", Term::var("x")),
                ],
            )],
        };
        let out = local_dce(p);
        assert_eq!(out.rules[0].body.atoms.len(), 1);
    }

    /// Paper example: columns c, d of R1 unused downstream get pruned.
    #[test]
    fn global_dce_prunes_unused_columns() {
        let mut r2 = rule(
            head("r2", &["a", "s"]),
            vec![
                rel("r1", "r1", &["a", "b", "c", "d"]),
                assign("s", Term::agg(AggFunc::Sum, Term::var("b"))),
            ],
        );
        r2.head.group = Some(vec!["a".into()]);
        let p = Program {
            rules: vec![
                rule(
                    head("r1", &["a", "b", "c", "d"]),
                    vec![
                        rel("r", "r", &["a", "b", "c", "d"]),
                        cmp(ScalarOp::Lt, Term::var("a"), Term::int(10)),
                        cmp(ScalarOp::Eq, Term::var("c"), Term::var("d")),
                    ],
                ),
                r2,
            ],
        };
        let out = global_dce(p, &catalog());
        // r1 keeps only a and b.
        assert_eq!(out.rules[0].head.col_names(), vec!["a", "b"]);
        // and the consumer's access shrank to two variables.
        match &out.rules[1].body.atoms[0] {
            Atom::Rel { vars, .. } => assert_eq!(vars.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn global_dce_keeps_join_variables() {
        let p = Program {
            rules: vec![
                rule(
                    head("v1", &["a", "b"]),
                    vec![rel("r", "r", &["a", "b", "c", "d"])],
                ),
                rule(
                    head("out", &["b"]),
                    vec![
                        rel("v1", "t1", &["k", "b"]),
                        rel("r", "t2", &["k", "b2", "c2", "d2"]),
                    ],
                ),
            ],
        };
        let out = global_dce(p, &catalog());
        // v1.a stays: it is the join key in `out`.
        assert_eq!(out.rules[0].head.col_names(), vec!["a", "b"]);
    }

    #[test]
    fn base_tables_never_pruned() {
        let p = Program {
            rules: vec![rule(
                head("v1", &["a"]),
                vec![rel("r", "r", &["a", "b", "c", "d"])],
            )],
        };
        let out = global_dce(p, &catalog());
        match &out.rules[0].body.atoms[0] {
            Atom::Rel { vars, .. } => assert_eq!(vars.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn output_relation_keeps_all_columns() {
        let p = Program {
            rules: vec![rule(
                head("out", &["a", "b", "c", "d"]),
                vec![rel("r", "r", &["a", "b", "c", "d"])],
            )],
        };
        let out = global_dce(p, &catalog());
        assert_eq!(out.rules[0].head.cols.len(), 4);
    }
}
