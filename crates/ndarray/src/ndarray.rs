//! Row-major dense `f64` tensors of arbitrary order.

use pytond_common::{Error, Result};

/// A dense tensor. `data.len() == shape.iter().product()`; strides are
/// implicit row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct NdArray {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl NdArray {
    /// Builds from a shape and matching data buffer.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f64>) -> Result<NdArray> {
        let expect: usize = shape.iter().product();
        if data.len() != expect {
            return Err(Error::Data(format!(
                "shape {shape:?} expects {expect} elements, got {}",
                data.len()
            )));
        }
        Ok(NdArray { shape, data })
    }

    /// An all-zeros tensor.
    pub fn zeros(shape: Vec<usize>) -> NdArray {
        let n = shape.iter().product();
        NdArray {
            shape,
            data: vec![0.0; n],
        }
    }

    /// 1-D tensor from a slice.
    pub fn vector(data: &[f64]) -> NdArray {
        NdArray {
            shape: vec![data.len()],
            data: data.to_vec(),
        }
    }

    /// 2-D tensor from nested rows.
    pub fn matrix(rows: &[&[f64]]) -> Result<NdArray> {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(Error::Data("ragged matrix rows".into()));
            }
            data.extend_from_slice(row);
        }
        NdArray::from_vec(vec![r, c], data)
    }

    /// Tensor order (number of dimensions).
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data in row-major order.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Flat offset of a multi-index.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        let mut off = 0;
        for (i, &x) in idx.iter().enumerate() {
            debug_assert!(x < self.shape[i]);
            off = off * self.shape[i] + x;
        }
        off
    }

    /// Element at a multi-index.
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.offset(idx)]
    }

    /// Sets an element.
    pub fn set(&mut self, idx: &[usize], v: f64) {
        let off = self.offset(idx);
        self.data[off] = v;
    }

    /// Reinterprets the buffer under a new shape of equal size.
    pub fn reshape(&self, shape: Vec<usize>) -> Result<NdArray> {
        NdArray::from_vec(shape, self.data.clone())
    }

    // ---------------- reductions ----------------

    /// Sum of all elements (`m.sum()` / einsum `'ij->'`).
    pub fn sum_all(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Sum over `axis` of a matrix: `axis=0` → column sums (`'ij->j'`),
    /// `axis=1` → row sums (`'ij->i'`).
    pub fn sum_axis(&self, axis: usize) -> Result<NdArray> {
        if self.ndim() != 2 {
            return Err(Error::Data("sum_axis requires a matrix".into()));
        }
        let (r, c) = (self.shape[0], self.shape[1]);
        match axis {
            0 => {
                let mut out = vec![0.0; c];
                for i in 0..r {
                    let row = &self.data[i * c..(i + 1) * c];
                    for (o, &x) in out.iter_mut().zip(row) {
                        *o += x;
                    }
                }
                NdArray::from_vec(vec![c], out)
            }
            1 => {
                let mut out = vec![0.0; r];
                for (i, o) in out.iter_mut().enumerate() {
                    *o = self.data[i * c..(i + 1) * c].iter().sum();
                }
                NdArray::from_vec(vec![r], out)
            }
            _ => Err(Error::Data(format!("invalid axis {axis}"))),
        }
    }

    /// Arithmetic mean of all elements.
    pub fn mean_all(&self) -> f64 {
        if self.data.is_empty() {
            f64::NAN
        } else {
            self.sum_all() / self.data.len() as f64
        }
    }

    /// `true` when every element is non-zero (`v.all()`).
    pub fn all(&self) -> bool {
        self.data.iter().all(|&x| x != 0.0)
    }

    /// Indices of non-zero elements of a vector (`v.nonzero()`).
    pub fn nonzero(&self) -> Vec<usize> {
        self.data
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| (x != 0.0).then_some(i))
            .collect()
    }

    // ---------------- shaping ----------------

    /// Matrix transpose (`'ij->ji'`).
    pub fn transpose(&self) -> Result<NdArray> {
        if self.ndim() != 2 {
            return Err(Error::Data("transpose requires a matrix".into()));
        }
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        NdArray::from_vec(vec![c, r], out)
    }

    /// Keeps the rows (`axis=0`) or columns (`axis=1`) selected by `mask`
    /// (NumPy `compress`).
    pub fn compress(&self, mask: &[bool], axis: usize) -> Result<NdArray> {
        if self.ndim() != 2 {
            return Err(Error::Data("compress requires a matrix".into()));
        }
        let (r, c) = (self.shape[0], self.shape[1]);
        match axis {
            0 => {
                if mask.len() != r {
                    return Err(Error::Data("mask length mismatch".into()));
                }
                let keep: Vec<usize> = mask
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &m)| m.then_some(i))
                    .collect();
                let mut out = Vec::with_capacity(keep.len() * c);
                for &i in &keep {
                    out.extend_from_slice(&self.data[i * c..(i + 1) * c]);
                }
                NdArray::from_vec(vec![keep.len(), c], out)
            }
            1 => {
                if mask.len() != c {
                    return Err(Error::Data("mask length mismatch".into()));
                }
                let keep: Vec<usize> = mask
                    .iter()
                    .enumerate()
                    .filter_map(|(j, &m)| m.then_some(j))
                    .collect();
                let mut out = Vec::with_capacity(keep.len() * r);
                for i in 0..r {
                    for &j in &keep {
                        out.push(self.data[i * c + j]);
                    }
                }
                NdArray::from_vec(vec![r, keep.len()], out)
            }
            _ => Err(Error::Data(format!("invalid axis {axis}"))),
        }
    }

    /// Row gather (`m[indices]`, NumPy fancy indexing).
    pub fn take_rows(&self, indices: &[usize]) -> Result<NdArray> {
        if self.ndim() == 1 {
            let out: Vec<f64> = indices.iter().map(|&i| self.data[i]).collect();
            return NdArray::from_vec(vec![indices.len()], out);
        }
        if self.ndim() != 2 {
            return Err(Error::Data("take_rows requires order ≤ 2".into()));
        }
        let c = self.shape[1];
        let mut out = Vec::with_capacity(indices.len() * c);
        for &i in indices {
            out.extend_from_slice(&self.data[i * c..(i + 1) * c]);
        }
        NdArray::from_vec(vec![indices.len(), c], out)
    }

    /// One column of a matrix as a vector (`m[:, j]`).
    pub fn column(&self, j: usize) -> Result<NdArray> {
        if self.ndim() != 2 {
            return Err(Error::Data("column requires a matrix".into()));
        }
        let (r, c) = (self.shape[0], self.shape[1]);
        let out: Vec<f64> = (0..r).map(|i| self.data[i * c + j]).collect();
        NdArray::from_vec(vec![r], out)
    }

    // ---------------- element-wise ----------------

    /// Applies `f` element-wise.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> NdArray {
        NdArray {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Rounds to `digits` decimals (`v.round()` with 0 digits by default).
    pub fn round(&self, digits: i32) -> NdArray {
        let scale = 10f64.powi(digits);
        self.map(|x| (x * scale).round() / scale)
    }

    fn zip(&self, other: &NdArray, f: impl Fn(f64, f64) -> f64) -> Result<NdArray> {
        if self.shape != other.shape {
            return Err(Error::Data(format!(
                "shape mismatch {:?} vs {:?}",
                self.shape, other.shape
            )));
        }
        Ok(NdArray {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise addition.
    pub fn add(&self, other: &NdArray) -> Result<NdArray> {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &NdArray) -> Result<NdArray> {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &NdArray) -> Result<NdArray> {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise division.
    pub fn div(&self, other: &NdArray) -> Result<NdArray> {
        self.zip(other, |a, b| a / b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f64) -> NdArray {
        self.map(|x| x * s)
    }

    // ---------------- linear algebra ----------------

    /// Matrix multiplication (`'ij,jk->ik'`), cache-friendly i-k-j order.
    pub fn matmul(&self, other: &NdArray) -> Result<NdArray> {
        if self.ndim() != 2 || other.ndim() != 2 || self.shape[1] != other.shape[0] {
            return Err(Error::Data(format!(
                "matmul shape mismatch {:?} x {:?}",
                self.shape, other.shape
            )));
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in arow.iter().enumerate() {
                let brow = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        NdArray::from_vec(vec![m, n], out)
    }

    /// Vector inner product (`'i,i->'`).
    pub fn inner(&self, other: &NdArray) -> Result<f64> {
        if self.ndim() != 1 || other.ndim() != 1 || self.len() != other.len() {
            return Err(Error::Data("inner requires equal-length vectors".into()));
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Vector outer product (`'i,j->ij'`).
    pub fn outer(&self, other: &NdArray) -> Result<NdArray> {
        if self.ndim() != 1 || other.ndim() != 1 {
            return Err(Error::Data("outer requires vectors".into()));
        }
        let (m, n) = (self.len(), other.len());
        let mut out = Vec::with_capacity(m * n);
        for &a in &self.data {
            for &b in &other.data {
                out.push(a * b);
            }
        }
        NdArray::from_vec(vec![m, n], out)
    }

    /// Main diagonal of a square matrix (`'ii->i'`).
    pub fn diagonal(&self) -> Result<NdArray> {
        if self.ndim() != 2 || self.shape[0] != self.shape[1] {
            return Err(Error::Data("diagonal requires a square matrix".into()));
        }
        let n = self.shape[0];
        let out: Vec<f64> = (0..n).map(|i| self.data[i * n + i]).collect();
        NdArray::from_vec(vec![n], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> NdArray {
        NdArray::matrix(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_validates_size() {
        assert!(NdArray::from_vec(vec![2, 2], vec![1.0]).is_err());
        assert_eq!(m23().shape(), &[2, 3]);
    }

    #[test]
    fn indexing() {
        let m = m23();
        assert_eq!(m.get(&[0, 2]), 3.0);
        assert_eq!(m.get(&[1, 0]), 4.0);
    }

    #[test]
    fn sums() {
        let m = m23();
        assert_eq!(m.sum_all(), 21.0);
        assert_eq!(m.sum_axis(0).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(m.sum_axis(1).unwrap().data(), &[6.0, 15.0]);
        assert_eq!(m.mean_all(), 3.5);
    }

    #[test]
    fn transpose_round_trip() {
        let m = m23();
        let t = m.transpose().unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]), 6.0);
        assert_eq!(t.transpose().unwrap(), m);
    }

    #[test]
    fn matmul_known_result() {
        let a = m23();
        let b = a.transpose().unwrap();
        let p = a.matmul(&b).unwrap();
        // [[14, 32], [32, 77]]
        assert_eq!(p.data(), &[14.0, 32.0, 32.0, 77.0]);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn inner_outer() {
        let v = NdArray::vector(&[1.0, 2.0]);
        let w = NdArray::vector(&[3.0, 4.0]);
        assert_eq!(v.inner(&w).unwrap(), 11.0);
        let o = v.outer(&w).unwrap();
        assert_eq!(o.data(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn compress_both_axes() {
        let m = m23();
        let rows = m.compress(&[false, true], 0).unwrap();
        assert_eq!(rows.data(), &[4.0, 5.0, 6.0]);
        let cols = m.compress(&[true, false, true], 1).unwrap();
        assert_eq!(cols.shape(), &[2, 2]);
        assert_eq!(cols.data(), &[1.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    fn nonzero_and_all() {
        let v = NdArray::vector(&[0.0, 1.5, 0.0, 2.0]);
        assert_eq!(v.nonzero(), vec![1, 3]);
        assert!(!v.all());
        assert!(NdArray::vector(&[1.0, 2.0]).all());
    }

    #[test]
    fn fancy_indexing_and_columns() {
        let m = m23();
        let r = m.take_rows(&[1, 0, 1]).unwrap();
        assert_eq!(r.shape(), &[3, 3]);
        assert_eq!(r.get(&[0, 0]), 4.0);
        assert_eq!(m.column(1).unwrap().data(), &[2.0, 5.0]);
    }

    #[test]
    fn elementwise_and_round() {
        let a = NdArray::vector(&[1.24, 2.46]);
        assert_eq!(a.round(1).data(), &[1.2, 2.5]);
        let b = NdArray::vector(&[1.0, 2.0]);
        assert_eq!(a.add(&b).unwrap().len(), 2);
        assert!(a.add(&m23()).is_err());
        assert_eq!(b.scale(3.0).data(), &[3.0, 6.0]);
    }

    #[test]
    fn diagonal_of_square() {
        let m = NdArray::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.diagonal().unwrap().data(), &[1.0, 4.0]);
        assert!(m23().diagonal().is_err());
    }
}
