//! Einstein-summation over dense tensors.
//!
//! Supports any number of operands. N-ary expressions are reduced to a chain
//! of pairwise contractions chosen greedily by intermediate size — the same
//! strategy class as `opt_einsum`'s default path optimizer, which the paper
//! uses to pre-process non-binary einsums (Section III-D). Binary
//! contractions with pure batch/contract/left/right index structure take a
//! fast batched-matmul path; everything else (diagonals, repeated indices)
//! falls back to a general index-space walk.

use crate::ndarray::NdArray;
use pytond_common::{Error, Result};
use std::collections::BTreeMap;

/// A parsed einsum specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Index letters of each input operand.
    pub inputs: Vec<Vec<char>>,
    /// Index letters of the output.
    pub output: Vec<char>,
}

impl Spec {
    /// Parses `"ij,jk->ik"`. Without `->`, the output follows NumPy's
    /// implicit rule: letters appearing exactly once, alphabetically.
    pub fn parse(spec: &str) -> Result<Spec> {
        let spec: String = spec.chars().filter(|c| !c.is_whitespace()).collect();
        let (ins, out) = match spec.split_once("->") {
            Some((i, o)) => (i, Some(o)),
            None => (spec.as_str(), None),
        };
        let inputs: Vec<Vec<char>> = ins.split(',').map(|s| s.chars().collect()).collect();
        for inp in &inputs {
            for &c in inp {
                if !c.is_ascii_lowercase() {
                    return Err(Error::Data(format!("invalid einsum index '{c}'")));
                }
            }
        }
        let output = match out {
            Some(o) => o.chars().collect(),
            None => {
                let mut counts: BTreeMap<char, usize> = BTreeMap::new();
                for inp in &inputs {
                    for &c in inp {
                        *counts.entry(c).or_insert(0) += 1;
                    }
                }
                counts
                    .into_iter()
                    .filter_map(|(c, n)| (n == 1).then_some(c))
                    .collect()
            }
        };
        for &c in &output {
            if !inputs.iter().any(|i| i.contains(&c)) {
                return Err(Error::Data(format!(
                    "output index '{c}' does not appear in any input"
                )));
            }
        }
        Ok(Spec { inputs, output })
    }
}

impl std::fmt::Display for Spec {
    /// Canonical string form.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ins: Vec<String> = self.inputs.iter().map(|i| i.iter().collect()).collect();
        write!(
            f,
            "{}->{}",
            ins.join(","),
            self.output.iter().collect::<String>()
        )
    }
}

/// Evaluates an einsum over the given operands.
pub fn einsum(spec: &str, operands: &[&NdArray]) -> Result<NdArray> {
    let spec = Spec::parse(spec)?;
    if spec.inputs.len() != operands.len() {
        return Err(Error::Data(format!(
            "spec has {} inputs, got {} operands",
            spec.inputs.len(),
            operands.len()
        )));
    }
    let mut dims: BTreeMap<char, usize> = BTreeMap::new();
    for (labels, op) in spec.inputs.iter().zip(operands) {
        if labels.len() != op.ndim() {
            return Err(Error::Data(format!(
                "operand of order {} labelled with {} indices",
                op.ndim(),
                labels.len()
            )));
        }
        for (&c, &d) in labels.iter().zip(op.shape()) {
            match dims.get(&c) {
                Some(&prev) if prev != d => {
                    return Err(Error::Data(format!(
                        "dimension mismatch for index '{c}': {prev} vs {d}"
                    )));
                }
                _ => {
                    dims.insert(c, d);
                }
            }
        }
    }
    match operands.len() {
        0 => Err(Error::Data("einsum needs at least one operand".into())),
        1 => unary(&spec.inputs[0], &spec.output, operands[0], &dims),
        2 => binary(
            &spec.inputs[0],
            &spec.inputs[1],
            &spec.output,
            operands[0],
            operands[1],
            &dims,
        ),
        _ => nary(spec, operands, &dims),
    }
}

/// Greedy pairwise contraction for ≥3 operands (our `opt_einsum`).
fn nary(spec: Spec, operands: &[&NdArray], dims: &BTreeMap<char, usize>) -> Result<NdArray> {
    let mut labels: Vec<Vec<char>> = spec.inputs.clone();
    let mut arrays: Vec<NdArray> = operands.iter().map(|&a| a.clone()).collect();
    while arrays.len() > 2 {
        // Pick the pair whose contraction output is smallest.
        let mut best: Option<(usize, usize, Vec<char>, usize)> = None;
        for i in 0..arrays.len() {
            for j in (i + 1)..arrays.len() {
                let out = pair_output(&labels, i, j, &spec.output);
                let size: usize = out.iter().map(|c| dims[c]).product();
                if best.as_ref().map_or(true, |(.., s)| size < *s) {
                    best = Some((i, j, out, size));
                }
            }
        }
        let (i, j, out, _) = best.expect("≥3 arrays implies a pair");
        let contracted = binary(&labels[i], &labels[j], &out, &arrays[i], &arrays[j], dims)?;
        // Remove j first (j > i) to keep indices stable.
        arrays.remove(j);
        labels.remove(j);
        arrays.remove(i);
        labels.remove(i);
        arrays.push(contracted);
        labels.push(out);
    }
    binary(
        &labels[0],
        &labels[1],
        &spec.output,
        &arrays[0],
        &arrays[1],
        dims,
    )
}

/// Output labels of contracting operands `i` and `j`: every index of the pair
/// that is still needed by another operand or the final output.
fn pair_output(labels: &[Vec<char>], i: usize, j: usize, final_out: &[char]) -> Vec<char> {
    let mut out = Vec::new();
    for (k, l) in labels.iter().enumerate() {
        if k == i || k == j {
            continue;
        }
        for &c in l {
            if (labels[i].contains(&c) || labels[j].contains(&c)) && !out.contains(&c) {
                out.push(c);
            }
        }
    }
    for &c in final_out {
        if (labels[i].contains(&c) || labels[j].contains(&c)) && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

/// Unary einsum: permutation / partial reduction / diagonal extraction.
fn unary(
    labels: &[char],
    output: &[char],
    op: &NdArray,
    dims: &BTreeMap<char, usize>,
) -> Result<NdArray> {
    let out_shape: Vec<usize> = output.iter().map(|c| dims[c]).collect();
    let mut out = NdArray::zeros(out_shape);
    // Iterate the full input index space; accumulate into the output cell.
    let letters: Vec<char> = {
        let mut l: Vec<char> = Vec::new();
        for &c in labels {
            if !l.contains(&c) {
                l.push(c);
            }
        }
        l
    };
    let sizes: Vec<usize> = letters.iter().map(|c| dims[c]).collect();
    let mut idx = vec![0usize; letters.len()];
    let pos_of = |c: char, assignment: &[usize]| -> usize {
        assignment[letters.iter().position(|&l| l == c).unwrap()]
    };
    loop {
        let in_idx: Vec<usize> = labels.iter().map(|&c| pos_of(c, &idx)).collect();
        let out_idx: Vec<usize> = output.iter().map(|&c| pos_of(c, &idx)).collect();
        let off = out.offset(&out_idx);
        out.data_mut()[off] += op.get(&in_idx);
        if !advance(&mut idx, &sizes) {
            break;
        }
    }
    Ok(out)
}

/// Binary einsum with a batched-matmul fast path.
fn binary(
    a_labels: &[char],
    b_labels: &[char],
    output: &[char],
    a: &NdArray,
    b: &NdArray,
    dims: &BTreeMap<char, usize>,
) -> Result<NdArray> {
    let distinct = |l: &[char]| {
        let mut seen = Vec::new();
        for &c in l {
            if seen.contains(&c) {
                return false;
            }
            seen.push(c);
        }
        true
    };
    let out_distinct = distinct(output);
    if distinct(a_labels) && distinct(b_labels) && out_distinct {
        return binary_bmm(a_labels, b_labels, output, a, b, dims);
    }
    // General fallback (diagonals / repeated output indices).
    binary_general(a_labels, b_labels, output, a, b, dims)
}

/// Classifies indices into batch (in both inputs and output), contracted
/// (both inputs, not output), left-only, right-only; then runs one matmul per
/// batch slice after permuting both operands.
fn binary_bmm(
    a_labels: &[char],
    b_labels: &[char],
    output: &[char],
    a: &NdArray,
    b: &NdArray,
    dims: &BTreeMap<char, usize>,
) -> Result<NdArray> {
    let mut batch = Vec::new();
    let mut contract = Vec::new();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (&c, _) in dims.iter() {
        let in_a = a_labels.contains(&c);
        let in_b = b_labels.contains(&c);
        let in_o = output.contains(&c);
        match (in_a, in_b, in_o) {
            (true, true, true) => batch.push(c),
            (true, true, false) => contract.push(c),
            (true, false, true) => left.push(c),
            (false, true, true) => right.push(c),
            (true, false, false) | (false, true, false) => contract.push(c), // summed out one side
            _ => {}
        }
    }
    // Summed-out-one-side indices ('ij,k->i' style) need pre-reduction; route
    // those through the general path for simplicity.
    for &c in &contract {
        if !(a_labels.contains(&c) && b_labels.contains(&c)) {
            return binary_general(a_labels, b_labels, output, a, b, dims);
        }
    }

    let size = |set: &[char]| -> usize { set.iter().map(|c| dims[c]).product() };
    let (nb, nm, nn, nk) = (size(&batch), size(&left), size(&right), size(&contract));

    // Permute A to [batch, left, contract] and B to [batch, contract, right].
    let a_perm = permuted(
        a,
        a_labels,
        &[&batch[..], &left[..], &contract[..]].concat(),
        dims,
    )?;
    let b_perm = permuted(
        b,
        b_labels,
        &[&batch[..], &contract[..], &right[..]].concat(),
        dims,
    )?;

    let mut out = vec![0.0; nb * nm * nn];
    for bi in 0..nb {
        let abase = bi * nm * nk;
        let bbase = bi * nk * nn;
        let obase = bi * nm * nn;
        for i in 0..nm {
            let arow = &a_perm[abase + i * nk..abase + (i + 1) * nk];
            let orow = &mut out[obase + i * nn..obase + (i + 1) * nn];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b_perm[bbase + kk * nn..bbase + (kk + 1) * nn];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
    // Reassemble from [batch, left, right] order into the requested output order.
    let natural: Vec<char> = batch.iter().chain(&left).chain(&right).copied().collect();
    let natural_shape: Vec<usize> = natural.iter().map(|c| dims[c]).collect();
    let tmp = NdArray::from_vec(natural_shape, out)?;
    if natural == output {
        return Ok(tmp);
    }
    let final_data = permuted(&tmp, &natural, output, dims)?;
    NdArray::from_vec(output.iter().map(|c| dims[c]).collect(), final_data)
}

/// Returns `op`'s data re-laid-out so its axes follow `target` label order.
fn permuted(
    op: &NdArray,
    labels: &[char],
    target: &[char],
    dims: &BTreeMap<char, usize>,
) -> Result<Vec<f64>> {
    if labels == target {
        return Ok(op.data().to_vec());
    }
    let tshape: Vec<usize> = target.iter().map(|c| dims[c]).collect();
    let mut out = vec![0.0; tshape.iter().product()];
    let sizes: Vec<usize> = labels.iter().map(|c| dims[c]).collect();
    let mut idx = vec![0usize; labels.len()];
    loop {
        let src = op.offset(&idx);
        let mut dst = 0usize;
        for (ti, &tc) in target.iter().enumerate() {
            let pos = labels
                .iter()
                .position(|&l| l == tc)
                .ok_or_else(|| Error::Data(format!("permutation target index '{tc}' missing")))?;
            dst = dst * tshape[ti] + idx[pos];
        }
        out[dst] = op.data()[src];
        if !advance(&mut idx, &sizes) {
            break;
        }
    }
    Ok(out)
}

/// General binary fallback: walks the combined index space.
fn binary_general(
    a_labels: &[char],
    b_labels: &[char],
    output: &[char],
    a: &NdArray,
    b: &NdArray,
    dims: &BTreeMap<char, usize>,
) -> Result<NdArray> {
    let mut letters: Vec<char> = Vec::new();
    for &c in a_labels.iter().chain(b_labels) {
        if !letters.contains(&c) {
            letters.push(c);
        }
    }
    let sizes: Vec<usize> = letters.iter().map(|c| dims[c]).collect();
    let out_shape: Vec<usize> = output.iter().map(|c| dims[c]).collect();
    let mut out = NdArray::zeros(out_shape);
    let mut idx = vec![0usize; letters.len()];
    let pos_of = |c: char, assignment: &[usize]| -> usize {
        assignment[letters.iter().position(|&l| l == c).unwrap()]
    };
    loop {
        let a_idx: Vec<usize> = a_labels.iter().map(|&c| pos_of(c, &idx)).collect();
        let b_idx: Vec<usize> = b_labels.iter().map(|&c| pos_of(c, &idx)).collect();
        let o_idx: Vec<usize> = output.iter().map(|&c| pos_of(c, &idx)).collect();
        let off = out.offset(&o_idx);
        out.data_mut()[off] += a.get(&a_idx) * b.get(&b_idx);
        if !advance(&mut idx, &sizes) {
            break;
        }
    }
    Ok(out)
}

/// Odometer increment; `false` when the space is exhausted.
fn advance(idx: &mut [usize], sizes: &[usize]) -> bool {
    if sizes.contains(&0) {
        return false;
    }
    for i in (0..idx.len()).rev() {
        idx[i] += 1;
        if idx[i] < sizes[i] {
            return true;
        }
        idx[i] = 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> NdArray {
        NdArray::matrix(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    fn close(a: &NdArray, b: &NdArray) {
        assert_eq!(a.shape(), b.shape(), "{a:?} vs {b:?}");
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn spec_parsing_explicit_and_implicit() {
        let s = Spec::parse("ij,jk->ik").unwrap();
        assert_eq!(s.output, vec!['i', 'k']);
        // implicit: 'ij,jk' → i and k appear once → "ik"
        let s = Spec::parse("ij,jk").unwrap();
        assert_eq!(s.output, vec!['i', 'k']);
        // implicit trace: 'ii' → no single-occurrence letters → scalar
        let s = Spec::parse("ii").unwrap();
        assert!(s.output.is_empty());
        assert!(Spec::parse("ij->ijz").is_err());
        assert!(Spec::parse("iJ->i").is_err());
    }

    /// Table III of the paper: each dedicated NumPy API must equal its einsum.
    #[test]
    fn table3_colsum() {
        close(
            &einsum("ij->j", &[&m23()]).unwrap(),
            &m23().sum_axis(0).unwrap(),
        );
    }

    #[test]
    fn table3_rowsum() {
        close(
            &einsum("ij->i", &[&m23()]).unwrap(),
            &m23().sum_axis(1).unwrap(),
        );
    }

    #[test]
    fn table3_full_sum() {
        let r = einsum("ij->", &[&m23()]).unwrap();
        assert_eq!(r.data(), &[21.0]);
    }

    #[test]
    fn table3_inner() {
        let v1 = NdArray::vector(&[1.0, 2.0, 3.0]);
        let v2 = NdArray::vector(&[4.0, 5.0, 6.0]);
        let r = einsum("i,i->", &[&v1, &v2]).unwrap();
        assert_eq!(r.data(), &[32.0]);
    }

    #[test]
    fn table3_outer() {
        let v1 = NdArray::vector(&[1.0, 2.0]);
        let v2 = NdArray::vector(&[3.0, 4.0, 5.0]);
        close(
            &einsum("i,j->ij", &[&v1, &v2]).unwrap(),
            &v1.outer(&v2).unwrap(),
        );
    }

    #[test]
    fn table3_transpose() {
        close(
            &einsum("ij->ji", &[&m23()]).unwrap(),
            &m23().transpose().unwrap(),
        );
    }

    #[test]
    fn table3_matmul() {
        let a = m23();
        let b = a.transpose().unwrap();
        close(
            &einsum("ij,jk->ik", &[&a, &b]).unwrap(),
            &a.matmul(&b).unwrap(),
        );
    }

    #[test]
    fn diagonal_extraction() {
        let m = NdArray::matrix(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let d = einsum("ii->i", &[&m]).unwrap();
        assert_eq!(d.data(), &[1.0, 4.0]);
        let trace = einsum("ii->", &[&m]).unwrap();
        assert_eq!(trace.data(), &[5.0]);
    }

    #[test]
    fn hadamard_product() {
        let a = m23();
        close(
            &einsum("ij,ij->ij", &[&a, &a]).unwrap(),
            &a.mul(&a).unwrap(),
        );
    }

    #[test]
    fn covariance_kernel_es8() {
        // 'ij,ik->jk' — the paper's covariance computation (Figure 2).
        let a = m23();
        let cov = einsum("ij,ik->jk", &[&a, &a]).unwrap();
        let expect = a.transpose().unwrap().matmul(&a).unwrap();
        close(&cov, &expect);
    }

    #[test]
    fn matvec_kernel() {
        let a = m23();
        let v = NdArray::vector(&[1.0, 0.5, 2.0]);
        let r = einsum("ij,j->i", &[&a, &v]).unwrap();
        assert_eq!(r.data(), &[8.0, 18.5]);
    }

    #[test]
    fn three_operand_chain_matches_sequential() {
        let a = m23(); // 2x3
        let b = a.transpose().unwrap(); // 3x2
        let c = NdArray::matrix(&[&[1.0, 0.0], &[0.0, 2.0]]).unwrap(); // 2x2
        let chained = einsum("ij,jk,kl->il", &[&a, &b, &c]).unwrap();
        let seq = a.matmul(&b).unwrap().matmul(&c).unwrap();
        close(&chained, &seq);
    }

    #[test]
    fn paper_example_ab_cc_ba() {
        // Section III-D walk-through: 'ab,cc->ba' = transpose(a) * trace(c).
        let a = m23();
        let c = NdArray::matrix(&[&[2.0, 9.0], &[9.0, 3.0]]).unwrap();
        let r = einsum("ab,cc->ba", &[&a, &c]).unwrap();
        let expect = a.transpose().unwrap().scale(5.0);
        close(&r, &expect);
    }

    #[test]
    fn scalar_times_matrix() {
        let s = NdArray::from_vec(vec![], vec![3.0]).unwrap();
        let m = m23();
        let r = einsum(",ij->ij", &[&s, &m]).unwrap();
        close(&r, &m.scale(3.0));
    }

    #[test]
    fn operand_count_mismatch_is_error() {
        assert!(einsum("ij,jk->ik", &[&m23()]).is_err());
    }

    #[test]
    fn dim_mismatch_is_error() {
        let a = m23();
        assert!(einsum("ij,jk->ik", &[&a, &a]).is_err());
    }
}
