//! COO (coordinate) sparse matrices — the layout of Blacher et al. that the
//! paper compares its dense layout against (Sections II-B and V-B, Figure 9).
//!
//! A dense matrix becomes a `(row_id, col_id, val)` triple list; zero entries
//! are omitted. PyTond's sparse translation path materializes exactly this
//! relation in the database.

use crate::ndarray::NdArray;
use pytond_common::{Column, Relation, Result};

/// A sparse matrix in coordinate format.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    /// Matrix shape `(rows, cols)`.
    pub shape: (usize, usize),
    /// Row ids of the stored entries.
    pub rows: Vec<i64>,
    /// Column ids of the stored entries.
    pub cols: Vec<i64>,
    /// Values of the stored entries (non-zero by construction from dense).
    pub vals: Vec<f64>,
}

impl Coo {
    /// Converts a dense matrix, dropping zeros.
    pub fn from_dense(m: &NdArray) -> Result<Coo> {
        if m.ndim() != 2 {
            return Err(pytond_common::Error::Data(
                "COO conversion requires a matrix".into(),
            ));
        }
        let (r, c) = (m.shape()[0], m.shape()[1]);
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for i in 0..r {
            for j in 0..c {
                let v = m.get(&[i, j]);
                if v != 0.0 {
                    rows.push(i as i64);
                    cols.push(j as i64);
                    vals.push(v);
                }
            }
        }
        Ok(Coo {
            shape: (r, c),
            rows,
            cols,
            vals,
        })
    }

    /// Rebuilds the dense matrix.
    pub fn to_dense(&self) -> NdArray {
        let mut out = NdArray::zeros(vec![self.shape.0, self.shape.1]);
        for ((&r, &c), &v) in self.rows.iter().zip(&self.cols).zip(&self.vals) {
            out.set(&[r as usize, c as usize], v);
        }
        out
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of non-zero entries.
    pub fn density(&self) -> f64 {
        let total = self.shape.0 * self.shape.1;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// The `(row_id, col_id, val)` relation loaded into the database for the
    /// sparse execution path.
    pub fn to_relation(&self) -> Relation {
        Relation::new(vec![
            ("row_id".into(), Column::from_i64(self.rows.clone())),
            ("col_id".into(), Column::from_i64(self.cols.clone())),
            ("val".into(), Column::from_f64(self.vals.clone())),
        ])
        .expect("equal-length COO vectors")
    }

    /// Sparse covariance `A^T A` computed directly on the triples —
    /// the reference implementation for the sparse SQL path of Figure 9.
    pub fn covariance(&self) -> NdArray {
        let c = self.shape.1;
        let mut out = NdArray::zeros(vec![c, c]);
        // Group entries by row, then emit pairwise products within each row.
        let mut by_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.shape.0];
        for ((&r, &cc), &v) in self.rows.iter().zip(&self.cols).zip(&self.vals) {
            by_row[r as usize].push((cc as usize, v));
        }
        for entries in &by_row {
            for &(j, vj) in entries {
                for &(k, vk) in entries {
                    let off = out.offset(&[j, k]);
                    out.data_mut()[off] += vj * vk;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_m() -> NdArray {
        NdArray::matrix(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 3.0]]).unwrap()
    }

    #[test]
    fn dense_round_trip() {
        let m = sparse_m();
        let coo = Coo::from_dense(&m).unwrap();
        assert_eq!(coo.nnz(), 3);
        assert_eq!(coo.to_dense(), m);
    }

    #[test]
    fn density_measures_fill() {
        let coo = Coo::from_dense(&sparse_m()).unwrap();
        assert!((coo.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relation_schema_matches_paper_layout() {
        let coo = Coo::from_dense(&sparse_m()).unwrap();
        let rel = coo.to_relation();
        assert_eq!(rel.names(), vec!["row_id", "col_id", "val"]);
        assert_eq!(rel.num_rows(), 3);
    }

    #[test]
    fn sparse_covariance_matches_dense() {
        let m = sparse_m();
        let coo = Coo::from_dense(&m).unwrap();
        let dense_cov = m.transpose().unwrap().matmul(&m).unwrap();
        let sparse_cov = coo.covariance();
        assert_eq!(dense_cov, sparse_cov);
    }
}
