//! NumPy-like dense tensors with a general `einsum` — the linear-algebra
//! baseline of the paper's evaluation ("Background on NumPy", Section II-A).
//!
//! Provides:
//!
//! * [`NdArray`] — row-major dense `f64` tensors of arbitrary order with the
//!   APIs the paper's workloads call (`sum`, `transpose`, `matmul`, `inner`,
//!   `outer`, `compress`, `nonzero`, `round`, `all`, fancy indexing);
//! * [`einsum::einsum`] — Einstein-notation contraction over any number of
//!   operands, with a fast batched-matmul path for the binary contractions
//!   that dominate the benchmarks and a greedy pairwise path optimizer that
//!   plays the role of `opt_einsum` (paper, Section III-D);
//! * [`coo::Coo`] — the COO sparse layout used as the comparison point for
//!   PyTond's dense-vs-sparse experiments (Figure 9).

pub mod coo;
pub mod einsum;
pub mod ndarray;

pub use coo::Coo;
pub use einsum::einsum;
pub use ndarray::NdArray;
