//! Schema and constraint metadata — PyTond's "contextual information".
//!
//! The paper's Section III-A describes two sources of context: the DBMS
//! catalog (schemas, uniqueness/PK constraints, cardinalities) and `@pytond`
//! decorator arguments. Both funnel into this [`Catalog`], which the
//! translator uses for type inference and the optimizer uses for
//! group-aggregate and self-join elimination.

use pytond_common::{DType, Error, Result};
use std::collections::BTreeMap;

/// Schema of one base table plus the constraints the optimizer can exploit.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// `(column, type)` pairs in schema order.
    pub cols: Vec<(String, DType)>,
    /// Column sets known to be unique (primary key first, by convention).
    pub unique: Vec<Vec<String>>,
    /// Estimated/exact row count when known.
    pub row_count: Option<u64>,
}

impl TableSchema {
    /// Creates a schema with no constraints.
    pub fn new(name: impl Into<String>, cols: Vec<(String, DType)>) -> TableSchema {
        TableSchema {
            name: name.into(),
            cols,
            unique: Vec::new(),
            row_count: None,
        }
    }

    /// Adds a uniqueness constraint over `cols` (builder style).
    pub fn with_unique(mut self, cols: &[&str]) -> TableSchema {
        self.unique
            .push(cols.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Sets the row count (builder style).
    pub fn with_rows(mut self, n: u64) -> TableSchema {
        self.row_count = Some(n);
        self
    }

    /// Column names in order.
    pub fn col_names(&self) -> Vec<&str> {
        self.cols.iter().map(|(c, _)| c.as_str()).collect()
    }

    /// Looks up a column's type.
    pub fn col_type(&self, name: &str) -> Option<DType> {
        self.cols.iter().find(|(c, _)| c == name).map(|(_, t)| *t)
    }

    /// Position of a column.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|(c, _)| c == name)
    }

    /// `true` when the given column set contains a unique key (a superset of
    /// any declared unique set is itself unique).
    pub fn is_unique_key(&self, cols: &[&str]) -> bool {
        self.unique
            .iter()
            .any(|key| key.iter().all(|k| cols.contains(&k.as_str())))
    }
}

/// The catalog: all base-table schemas visible to the compiler.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    tables: BTreeMap<String, TableSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers (or replaces) a table schema.
    pub fn add(&mut self, schema: TableSchema) {
        self.tables.insert(schema.name.clone(), schema);
    }

    /// Builder-style [`Catalog::add`].
    pub fn with(mut self, schema: TableSchema) -> Catalog {
        self.add(schema);
        self
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(name)
    }

    /// Like [`Catalog::table`] but returns a catalog error.
    pub fn expect_table(&self, name: &str) -> Result<&TableSchema> {
        self.table(name)
            .ok_or_else(|| Error::Catalog(format!("unknown table '{name}'")))
    }

    /// Iterates all schemas in name order.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "orders",
            vec![
                ("o_orderkey".into(), DType::Int),
                ("o_custkey".into(), DType::Int),
                ("o_totalprice".into(), DType::Float),
            ],
        )
        .with_unique(&["o_orderkey"])
        .with_rows(1500)
    }

    #[test]
    fn lookup_paths() {
        let s = schema();
        assert_eq!(s.col_type("o_custkey"), Some(DType::Int));
        assert_eq!(s.col_index("o_totalprice"), Some(2));
        assert_eq!(s.col_type("nope"), None);
        assert_eq!(s.row_count, Some(1500));
    }

    #[test]
    fn unique_key_supersets_count() {
        let s = schema();
        assert!(s.is_unique_key(&["o_orderkey"]));
        assert!(s.is_unique_key(&["o_orderkey", "o_custkey"]));
        assert!(!s.is_unique_key(&["o_custkey"]));
    }

    #[test]
    fn catalog_registration() {
        let cat = Catalog::new().with(schema());
        assert!(cat.table("orders").is_some());
        assert!(cat.expect_table("lineitem").is_err());
        assert_eq!(cat.len(), 1);
    }
}
