//! Small constructors that keep hand-written IR (tests, translator) terse.

use crate::ir::*;

/// Relation-access atom with explicit alias.
pub fn rel(relname: &str, alias: &str, vars: &[&str]) -> Atom {
    Atom::Rel {
        rel: relname.to_string(),
        alias: alias.to_string(),
        vars: vars.iter().map(|v| v.to_string()).collect(),
    }
}

/// Relation-access atom from owned variable names.
pub fn rel_owned(relname: &str, alias: &str, vars: Vec<String>) -> Atom {
    Atom::Rel {
        rel: relname.to_string(),
        alias: alias.to_string(),
        vars,
    }
}

/// Assignment atom.
pub fn assign(var: &str, term: Term) -> Atom {
    Atom::Assign {
        var: var.to_string(),
        term,
    }
}

/// Predicate atom.
pub fn pred(term: Term) -> Atom {
    Atom::Pred(term)
}

/// Comparison predicate atom `lhs op rhs`.
pub fn cmp(op: ScalarOp, lhs: Term, rhs: Term) -> Atom {
    Atom::Pred(Term::bin(op, lhs, rhs))
}

/// Head without modifiers, column names equal to variable names.
pub fn head(relname: &str, vars: &[&str]) -> Head {
    Head::simple(
        relname,
        vars.iter()
            .map(|v| (v.to_string(), v.to_string()))
            .collect(),
    )
}

/// A full rule.
pub fn rule(h: Head, atoms: Vec<Atom>) -> Rule {
    Rule {
        head: h,
        body: Body::new(atoms),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let r = rule(
            head("R", &["a"]),
            vec![
                rel("T", "t1", &["a", "b"]),
                cmp(ScalarOp::Gt, Term::var("b"), Term::int(0)),
                assign("c", Term::var("a")),
            ],
        );
        assert_eq!(r.head.rel, "R");
        assert_eq!(r.body.atoms.len(), 3);
        assert!(matches!(&r.body.atoms[1], Atom::Pred(_)));
        assert!(matches!(&r.body.atoms[2], Atom::Assign { .. }));
    }
}
