//! TondIR — the Datalog-inspired intermediate representation of PyTond.
//!
//! The grammar follows Table IV of the paper:
//!
//! ```text
//! Program P ::= R | P R
//! Rule    R ::= H :- B.
//! Head    H ::= r [group(x)] [sort(x, b) [limit(n)]]
//! Relation r ::= X(x)
//! Body    B ::= a | B , a
//! Atom    a ::= r | [<c>] | exists(B) | x θ t
//! Term    t ::= x | agg(t) | ext(x) | if(t, t, t) | t ⋄ t | c
//! ```
//!
//! Inner joins are expressed implicitly by sharing a variable between two
//! relation-access atoms; outer joins carry explicit `outer_left/right/full`
//! marker atoms (paper, Section III-C); `exists` models containment filters
//! (`isin`). Head variables double as output column names, and body relation
//! accesses bind variables positionally to the source relation's columns —
//! the property the paper relies on for sound code generation through
//! optimization.
//!
//! This crate also hosts the [`Catalog`]: the schema/constraint metadata that
//! PyTond reads from the database catalog and from `@pytond` decorator
//! arguments (paper, Section III-A "Contextual Information").

pub mod analysis;
pub mod builder;
pub mod catalog;
pub mod ir;
pub mod printer;

pub use catalog::{Catalog, TableSchema};
pub use ir::{AggFunc, Atom, Body, Const, Head, OuterKind, Program, Rule, ScalarOp, Term};
