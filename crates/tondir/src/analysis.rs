//! Program analyses shared by the optimizer and the SQL generator:
//! variable def/use sets, rule dependency edges, and positional schema
//! resolution (which column of which source relation a body variable binds).

use crate::catalog::Catalog;
use crate::ir::*;
use pytond_common::hash::{FxHashMap, FxHashSet};
use pytond_common::{Error, Result};

/// Variables *defined* by a rule body: relation-access bindings, assignment
/// targets and constant-relation columns.
pub fn defined_vars(body: &Body) -> FxHashSet<String> {
    let mut out = FxHashSet::default();
    for atom in &body.atoms {
        match atom {
            Atom::Rel { vars, .. } | Atom::ConstRel { vars, .. } => {
                out.extend(vars.iter().cloned());
            }
            Atom::Assign { var, .. } => {
                out.insert(var.clone());
            }
            _ => {}
        }
    }
    out
}

/// Variables *used* by a rule: head columns, group/sort keys, predicate and
/// assignment right-hand sides, exists correlation keys and outer-join keys.
pub fn used_vars(rule: &Rule) -> FxHashSet<String> {
    let mut out = FxHashSet::default();
    for (_, v) in &rule.head.cols {
        out.insert(v.clone());
    }
    if let Some(g) = &rule.head.group {
        out.extend(g.iter().cloned());
    }
    if let Some(s) = &rule.head.sort {
        out.extend(s.iter().map(|(v, _)| v.clone()));
    }
    for atom in &rule.body.atoms {
        match atom {
            Atom::Pred(t) => out.extend(t.vars()),
            Atom::Assign { term, .. } => out.extend(term.vars()),
            Atom::Exists { keys, .. } => out.extend(keys.iter().map(|(o, _)| o.clone())),
            Atom::OuterJoin { on, .. } => {
                out.extend(on.iter().flat_map(|(l, r)| [l.clone(), r.clone()]));
            }
            _ => {}
        }
    }
    out
}

/// Variables appearing in more than one relation access of the body — the
/// implicit inner-join keys.
pub fn join_vars(body: &Body) -> FxHashSet<String> {
    let mut seen = FxHashSet::default();
    let mut joined = FxHashSet::default();
    for atom in &body.atoms {
        if let Atom::Rel { vars, .. } = atom {
            let mut in_this_atom = FxHashSet::default();
            for v in vars {
                if !in_this_atom.insert(v.clone()) {
                    // repeated inside one atom (e.g. diagonal access): also a join
                    joined.insert(v.clone());
                }
                if seen.contains(v) {
                    joined.insert(v.clone());
                }
            }
            seen.extend(in_this_atom);
        }
    }
    joined
}

/// Names of relations referenced by a rule body (including inside `exists`).
pub fn referenced_relations(body: &Body) -> Vec<String> {
    let mut out = Vec::new();
    for atom in &body.atoms {
        match atom {
            Atom::Rel { rel, .. } => out.push(rel.clone()),
            Atom::Exists { body, .. } => out.extend(referenced_relations(body)),
            _ => {}
        }
    }
    out
}

/// How many rules (bodies) in the program reference each relation.
pub fn reference_counts(p: &Program) -> FxHashMap<String, usize> {
    let mut out: FxHashMap<String, usize> = FxHashMap::default();
    for rule in &p.rules {
        for r in referenced_relations(&rule.body) {
            *out.entry(r).or_insert(0) += 1;
        }
    }
    out
}

/// Resolves the column names of every relation as the program executes:
/// base tables come from the catalog, derived relations from the defining
/// rule's head. Handles redefinition (a rule may replace a relation).
#[derive(Debug, Clone)]
pub struct SchemaEnv {
    schemas: FxHashMap<String, Vec<String>>,
}

impl SchemaEnv {
    /// Environment seeded with the base-table schemas.
    pub fn from_catalog(catalog: &Catalog) -> SchemaEnv {
        let mut schemas = FxHashMap::default();
        for t in catalog.tables() {
            schemas.insert(
                t.name.clone(),
                t.cols.iter().map(|(c, _)| c.clone()).collect(),
            );
        }
        SchemaEnv { schemas }
    }

    /// Column names of `rel` at the current point.
    pub fn columns(&self, rel: &str) -> Result<&[String]> {
        self.schemas
            .get(rel)
            .map(|v| v.as_slice())
            .ok_or_else(|| Error::Catalog(format!("unknown relation '{rel}'")))
    }

    /// Registers the head of a rule, making its relation visible to
    /// subsequent rules (replacing any previous definition).
    pub fn define(&mut self, head: &Head) {
        self.schemas.insert(
            head.rel.clone(),
            head.cols.iter().map(|(c, _)| c.clone()).collect(),
        );
    }

    /// Validates positional binding: each relation access must bind exactly
    /// as many variables as the source has columns.
    pub fn check_rule(&self, rule: &Rule) -> Result<()> {
        for atom in &rule.body.atoms {
            if let Atom::Rel { rel, vars, .. } = atom {
                let cols = self.columns(rel)?;
                if cols.len() != vars.len() {
                    return Err(Error::Catalog(format!(
                        "relation '{rel}' has {} columns but the access binds {} variables",
                        cols.len(),
                        vars.len()
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Full-program validation: positional binding arity, head vars defined in
/// the body, and rules referencing only earlier-defined relations.
pub fn validate(p: &Program, catalog: &Catalog) -> Result<()> {
    let mut env = SchemaEnv::from_catalog(catalog);
    for (i, rule) in p.rules.iter().enumerate() {
        env.check_rule(rule)
            .map_err(|e| Error::Catalog(format!("rule {i}: {}", e.message())))?;
        let defined = defined_vars(&rule.body);
        for (col, var) in &rule.head.cols {
            if !defined.contains(var) {
                return Err(Error::Catalog(format!(
                    "rule {i}: head column '{col}' uses undefined variable '{var}'"
                )));
            }
        }
        if let Some(g) = &rule.head.group {
            for v in g {
                if !defined.contains(v) {
                    return Err(Error::Catalog(format!(
                        "rule {i}: group variable '{v}' is undefined"
                    )));
                }
            }
        }
        env.define(&rule.head);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use pytond_common::DType;

    fn catalog() -> Catalog {
        Catalog::new().with(crate::catalog::TableSchema::new(
            "t",
            vec![("a".into(), DType::Int), ("b".into(), DType::Int)],
        ))
    }

    #[test]
    fn def_use_sets() {
        let r = rule(
            head("r1", &["a", "s"]),
            vec![
                rel("t", "t", &["a", "b"]),
                assign("s", Term::agg(AggFunc::Sum, Term::var("b"))),
                cmp(ScalarOp::Gt, Term::var("a"), Term::int(0)),
            ],
        );
        let defined = defined_vars(&r.body);
        assert!(defined.contains("a") && defined.contains("b") && defined.contains("s"));
        let used = used_vars(&r);
        assert!(used.contains("a") && used.contains("b") && used.contains("s"));
    }

    #[test]
    fn join_vars_detects_shared_variables() {
        let body = Body::new(vec![
            rel("t", "t1", &["k", "x"]),
            rel("s", "s1", &["k", "y"]),
        ]);
        let jv = join_vars(&body);
        assert!(jv.contains("k"));
        assert!(!jv.contains("x"));
    }

    #[test]
    fn join_vars_detects_diagonal_access() {
        let body = Body::new(vec![rel("m", "m1", &["i", "i", "v"])]);
        assert!(join_vars(&body).contains("i"));
    }

    #[test]
    fn validate_accepts_well_formed_program() {
        let p = Program {
            rules: vec![
                rule(
                    head("r1", &["a"]),
                    vec![
                        rel("t", "t", &["a", "b"]),
                        cmp(ScalarOp::Gt, Term::var("b"), Term::int(1)),
                    ],
                ),
                rule(head("r2", &["a"]), vec![rel("r1", "r1", &["a"])]),
            ],
        };
        validate(&p, &catalog()).unwrap();
    }

    #[test]
    fn validate_rejects_arity_mismatch() {
        let p = Program {
            rules: vec![rule(head("r1", &["a"]), vec![rel("t", "t", &["a"])])],
        };
        let err = validate(&p, &catalog()).unwrap_err();
        assert!(err.to_string().contains("binds 1 variables"), "{err}");
    }

    #[test]
    fn validate_rejects_undefined_head_var() {
        let p = Program {
            rules: vec![rule(head("r1", &["z"]), vec![rel("t", "t", &["a", "b"])])],
        };
        assert!(validate(&p, &catalog()).is_err());
    }

    #[test]
    fn reference_counts_span_exists() {
        let p = Program {
            rules: vec![rule(
                head("r1", &["a"]),
                vec![
                    rel("t", "t", &["a", "b"]),
                    Atom::Exists {
                        body: Body::new(vec![rel("t", "inner", &["c", "d"])]),
                        keys: vec![("a".into(), "c".into())],
                        negated: false,
                    },
                ],
            )],
        };
        let counts = reference_counts(&p);
        assert_eq!(counts.get("t"), Some(&2));
    }

    #[test]
    fn schema_env_tracks_redefinition() {
        let mut env = SchemaEnv::from_catalog(&catalog());
        assert_eq!(env.columns("t").unwrap().len(), 2);
        env.define(&head("t", &["a", "b", "id"]));
        assert_eq!(env.columns("t").unwrap().len(), 3);
    }
}
