//! Pretty-printer rendering TondIR in the paper's Datalog-like notation, e.g.
//!
//! ```text
//! R1(a, s) group(a) :- R(a, b, c), (s=sum(b)).
//! ```

use crate::ir::*;
use std::fmt::Write;

/// Renders a whole program, one rule per line.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for rule in &p.rules {
        out.push_str(&print_rule(rule));
        out.push('\n');
    }
    out
}

/// Renders one rule.
pub fn print_rule(r: &Rule) -> String {
    let mut s = String::new();
    write!(s, "{}(", r.head.rel).unwrap();
    let cols: Vec<String> = r
        .head
        .cols
        .iter()
        .map(|(name, var)| {
            if name == var {
                name.clone()
            } else {
                format!("{name}={var}")
            }
        })
        .collect();
    write!(s, "{})", cols.join(", ")).unwrap();
    if r.head.distinct {
        s.push_str(" distinct");
    }
    if let Some(g) = &r.head.group {
        write!(s, " group({})", g.join(", ")).unwrap();
    }
    if let Some(sort) = &r.head.sort {
        let keys: Vec<String> = sort
            .iter()
            .map(
                |(v, asc)| {
                    if *asc {
                        v.clone()
                    } else {
                        format!("{v} desc")
                    }
                },
            )
            .collect();
        write!(s, " sort({})", keys.join(", ")).unwrap();
    }
    if let Some(n) = r.head.limit {
        write!(s, " limit({n})").unwrap();
    }
    s.push_str(" :- ");
    let atoms: Vec<String> = r.body.atoms.iter().map(print_atom).collect();
    s.push_str(&atoms.join(", "));
    s.push('.');
    s
}

/// Renders one atom.
pub fn print_atom(a: &Atom) -> String {
    match a {
        Atom::Rel { rel, alias, vars } => {
            if alias == rel {
                format!("{rel}({})", vars.join(", "))
            } else {
                format!("{rel}@{alias}({})", vars.join(", "))
            }
        }
        Atom::ConstRel { vars, rows } => {
            let rendered: Vec<String> = rows
                .iter()
                .map(|row| {
                    let vals: Vec<String> = row.iter().map(print_const).collect();
                    if vals.len() == 1 {
                        vals[0].clone()
                    } else {
                        format!("({})", vals.join(", "))
                    }
                })
                .collect();
            format!("[{} <{}>]", vars.join(", "), rendered.join(", "))
        }
        Atom::Exists {
            body,
            keys,
            negated,
        } => {
            let inner: Vec<String> = body.atoms.iter().map(print_atom).collect();
            let key_str: Vec<String> = keys.iter().map(|(o, i)| format!("{o}={i}")).collect();
            format!(
                "{}exists({}; {})",
                if *negated { "not " } else { "" },
                inner.join(", "),
                key_str.join(", ")
            )
        }
        Atom::Pred(t) => format!("({})", print_term(t)),
        Atom::Assign { var, term } => format!("({var}={})", print_term(term)),
        Atom::OuterJoin {
            kind,
            left,
            right,
            on,
        } => {
            let name = match kind {
                OuterKind::Left => "outer_left",
                OuterKind::Right => "outer_right",
                OuterKind::Full => "outer_full",
            };
            let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
            format!("{name}({left}, {right}; {})", keys.join(", "))
        }
    }
}

/// Renders one term.
pub fn print_term(t: &Term) -> String {
    match t {
        Term::Var(v) => v.clone(),
        Term::Const(c) => print_const(c),
        Term::Agg { func, arg } => format!("{}({})", func.name(), print_term(arg)),
        Term::Ext { func, args } => {
            let rendered: Vec<String> = args.iter().map(print_term).collect();
            format!("{func}({})", rendered.join(", "))
        }
        Term::If { cond, then, els } => format!(
            "if({}, {}, {})",
            print_term(cond),
            print_term(then),
            print_term(els)
        ),
        Term::Bin { op, lhs, rhs } => {
            format!("{} {} {}", paren(lhs), op.sql().to_lowercase(), paren(rhs))
        }
        Term::Not(t) => format!("not {}", paren(t)),
        Term::IsNull(t) => format!("isnull({})", print_term(t)),
    }
}

fn paren(t: &Term) -> String {
    match t {
        Term::Bin { .. } => format!("({})", print_term(t)),
        _ => print_term(t),
    }
}

fn print_const(c: &Const) -> String {
    match c {
        Const::Int(i) => i.to_string(),
        Const::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Const::Bool(b) => b.to_string(),
        Const::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Const::Date(d) => format!("date '{}'", pytond_common::date::format(*d)),
        Const::Null => "null".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn prints_paper_style_rule() {
        // R1(a, s) group(a) :- R(a, b, c), (s=sum(b)).
        let rule = Rule {
            head: Head {
                rel: "R1".into(),
                cols: vec![("a".into(), "a".into()), ("s".into(), "s".into())],
                group: Some(vec!["a".into()]),
                sort: None,
                limit: None,
                distinct: false,
            },
            body: Body::new(vec![
                rel("R", "R", &["a", "b", "c"]),
                assign("s", Term::agg(AggFunc::Sum, Term::var("b"))),
            ]),
        };
        assert_eq!(
            print_rule(&rule),
            "R1(a, s) group(a) :- R(a, b, c), (s=sum(b))."
        );
    }

    #[test]
    fn prints_sort_limit_and_distinct() {
        let rule = Rule {
            head: Head {
                rel: "R".into(),
                cols: vec![("x".into(), "x".into())],
                group: None,
                sort: Some(vec![("x".into(), false)]),
                limit: Some(10),
                distinct: true,
            },
            body: Body::new(vec![rel("T", "T", &["x"])]),
        };
        assert_eq!(
            print_rule(&rule),
            "R(x) distinct sort(x desc) limit(10) :- T(x)."
        );
    }

    #[test]
    fn prints_renamed_head_columns_and_aliases() {
        let rule = Rule {
            head: Head::simple("R", vec![("total".into(), "v3".into())]),
            body: Body::new(vec![rel("T", "t1", &["v1", "v2", "v3"])]),
        };
        assert_eq!(print_rule(&rule), "R(total=v3) :- T@t1(v1, v2, v3).");
    }

    #[test]
    fn prints_exists_and_const_rel() {
        let rule = Rule {
            head: Head::simple("R", vec![("a".into(), "a".into())]),
            body: Body::new(vec![
                rel("T", "T", &["a"]),
                Atom::Exists {
                    body: Body::new(vec![rel("S", "S", &["b"])]),
                    keys: vec![("a".into(), "b".into())],
                    negated: true,
                },
                Atom::ConstRel {
                    vars: vec!["c0".into()],
                    rows: vec![vec![Const::Int(0)], vec![Const::Int(1)]],
                },
            ]),
        };
        let s = print_rule(&rule);
        assert!(s.contains("not exists(S(b); a=b)"), "{s}");
        assert!(s.contains("[c0 <0, 1>]"), "{s}");
    }

    #[test]
    fn prints_terms_with_parens() {
        let t = Term::bin(
            ScalarOp::Mul,
            Term::bin(ScalarOp::Add, Term::var("a"), Term::int(1)),
            Term::var("b"),
        );
        assert_eq!(print_term(&t), "(a + 1) * b");
    }

    #[test]
    fn prints_if_and_string_escaping() {
        let t = Term::If {
            cond: Box::new(Term::bin(ScalarOp::Eq, Term::var("b"), Term::str("o'x"))),
            then: Box::new(Term::var("c")),
            els: Box::new(Term::int(0)),
        };
        assert_eq!(print_term(&t), "if(b = 'o''x', c, 0)");
    }
}
