//! Core data model of TondIR (Table IV of the paper).

use pytond_common::DType;

/// A TondIR program: an ordered list of rules. The head relation of the last
/// rule is the program's result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Rules in dependency order (a rule may only reference base tables and
    /// relations defined by earlier rules).
    pub rules: Vec<Rule>,
}

impl Program {
    /// The relation produced by the program (head of the last rule).
    pub fn output_relation(&self) -> Option<&str> {
        self.rules.last().map(|r| r.head.rel.as_str())
    }

    /// Finds the *last* rule defining `rel` (relations may be redefined by
    /// consecutive rules, e.g. when UID columns are attached).
    pub fn defining_rule(&self, rel: &str) -> Option<&Rule> {
        self.rules.iter().rev().find(|r| r.head.rel == rel)
    }
}

/// A rule `H :- B.`
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The head (output relation, optional group/sort/limit).
    pub head: Head,
    /// The body (chain of atoms).
    pub body: Body,
}

/// A rule head: `X(col=var, ...) [group(vars)] [sort(vars) [limit(n)]]`.
///
/// Each head column pairs the **output column name** with the body variable
/// or assignment that produces it. In the paper's notation the variable name
/// *is* the column name; keeping the pair explicit keeps code generation
/// sound when optimization renames variables (Section III-A).
#[derive(Debug, Clone, PartialEq)]
pub struct Head {
    /// Output relation name.
    pub rel: String,
    /// `(output column name, body variable)` pairs, in schema order.
    pub cols: Vec<(String, String)>,
    /// Optional `group(vars)` clause: grouping variables.
    pub group: Option<Vec<String>>,
    /// Optional `sort(var, ascending)` clause.
    pub sort: Option<Vec<(String, bool)>>,
    /// Optional `limit(n)` clause (requires `sort` per the grammar).
    pub limit: Option<u64>,
    /// Distinct projection (`unique` in the paper's flow-breaker table).
    pub distinct: bool,
}

impl Head {
    /// A plain head with neither grouping nor ordering.
    pub fn simple(rel: impl Into<String>, cols: Vec<(String, String)>) -> Head {
        Head {
            rel: rel.into(),
            cols,
            group: None,
            sort: None,
            limit: None,
            distinct: false,
        }
    }

    /// Output column names in order.
    pub fn col_names(&self) -> Vec<&str> {
        self.cols.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The body variable feeding output column `name`.
    pub fn var_of(&self, name: &str) -> Option<&str> {
        self.cols
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A rule body: a conjunctive chain of atoms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Body {
    /// Atoms, in source order (order is semantically irrelevant except that
    /// assignments must precede uses; the translator maintains this).
    pub atoms: Vec<Atom>,
}

impl Body {
    /// Creates a body from atoms.
    pub fn new(atoms: Vec<Atom>) -> Body {
        Body { atoms }
    }

    /// All relation-access atoms as `(alias, rel, vars)`.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &str, &[String])> {
        self.atoms.iter().filter_map(|a| match a {
            Atom::Rel { rel, alias, vars } => Some((alias.as_str(), rel.as_str(), vars.as_slice())),
            _ => None,
        })
    }
}

/// Outer-join kinds carried by the marker atoms of Section III-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OuterKind {
    /// `outer_left(x)`.
    Left,
    /// `outer_right(x)`.
    Right,
    /// `outer_full(x)`.
    Full,
}

/// A body atom.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// Access to relation `rel`, binding each of its columns positionally to
    /// a variable. `alias` is the unique per-rule instance name (paper:
    /// "Relation Access Renaming").
    Rel {
        /// Source relation (base table or earlier rule's head).
        rel: String,
        /// Unique access alias within the rule.
        alias: String,
        /// One variable per source column, positional.
        vars: Vec<String>,
    },
    /// An inline constant relation `[<c>]`.
    ConstRel {
        /// One variable per column.
        vars: Vec<String>,
        /// Row values.
        rows: Vec<Vec<Const>>,
    },
    /// Existential containment filter `exists(B)` / its negation — the
    /// translation of `isin`. `keys` pairs outer variables with the inner
    /// body's variables they must match.
    Exists {
        /// Inner body.
        body: Body,
        /// `(outer var, inner var)` correlation pairs.
        keys: Vec<(String, String)>,
        /// `true` for `not exists` (anti-join).
        negated: bool,
    },
    /// A boolean filter predicate `x θ t`.
    Pred(Term),
    /// A fresh-variable assignment `x = t` (x not previously defined).
    Assign {
        /// Defined variable.
        var: String,
        /// Defining term.
        term: Term,
    },
    /// Outer-join marker (`ext` atom per Section III-C): relates two relation
    /// accesses of this body by alias with an equi-join condition.
    OuterJoin {
        /// Join kind.
        kind: OuterKind,
        /// Alias of the left relation access.
        left: String,
        /// Alias of the right relation access.
        right: String,
        /// `(left var, right var)` equi-join pairs.
        on: Vec<(String, String)>,
    },
}

/// Aggregation functions usable inside `agg(t)` terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Avg,
    /// Row count (`count(*)` when the argument is a bare variable).
    Count,
    /// Count of distinct values.
    CountDistinct,
}

impl AggFunc {
    /// Lower-case name as printed in IR and SQL.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
            AggFunc::Count => "count",
            AggFunc::CountDistinct => "count_distinct",
        }
    }
}

/// Binary scalar operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
    /// SQL `LIKE` (pattern on the right).
    Like,
    /// SQL `NOT LIKE`.
    NotLike,
    /// String concatenation.
    Concat,
}

impl ScalarOp {
    /// `true` for operators producing booleans.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            ScalarOp::Eq
                | ScalarOp::Ne
                | ScalarOp::Lt
                | ScalarOp::Le
                | ScalarOp::Gt
                | ScalarOp::Ge
                | ScalarOp::And
                | ScalarOp::Or
                | ScalarOp::Like
                | ScalarOp::NotLike
        )
    }

    /// The SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            ScalarOp::Add => "+",
            ScalarOp::Sub => "-",
            ScalarOp::Mul => "*",
            ScalarOp::Div => "/",
            ScalarOp::Mod => "%",
            ScalarOp::Eq => "=",
            ScalarOp::Ne => "<>",
            ScalarOp::Lt => "<",
            ScalarOp::Le => "<=",
            ScalarOp::Gt => ">",
            ScalarOp::Ge => ">=",
            ScalarOp::And => "AND",
            ScalarOp::Or => "OR",
            ScalarOp::Like => "LIKE",
            ScalarOp::NotLike => "NOT LIKE",
            ScalarOp::Concat => "||",
        }
    }
}

/// A constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Date literal (days since epoch; printed as `date 'YYYY-MM-DD'`).
    Date(i32),
    /// SQL NULL.
    Null,
}

impl Const {
    /// The static type if known.
    pub fn dtype(&self) -> Option<DType> {
        match self {
            Const::Int(_) => Some(DType::Int),
            Const::Float(_) => Some(DType::Float),
            Const::Bool(_) => Some(DType::Bool),
            Const::Str(_) => Some(DType::Str),
            Const::Date(_) => Some(DType::Date),
            Const::Null => None,
        }
    }
}

/// A scalar term.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Variable reference.
    Var(String),
    /// Constant.
    Const(Const),
    /// Aggregation `agg(t)`; only valid in rules whose head groups (or that
    /// aggregate to a single row).
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Aggregated term.
        arg: Box<Term>,
    },
    /// External function call `ext(x)`: `uid()`, `year(d)`, `round(x, n)`,
    /// `abs(x)`, `substr(s, a, b)`, `strlen(s)`, ...
    Ext {
        /// Function name (lower-case).
        func: String,
        /// Arguments.
        args: Vec<Term>,
    },
    /// Conditional `if(cond, then, else)`.
    If {
        /// Condition.
        cond: Box<Term>,
        /// Value when true.
        then: Box<Term>,
        /// Value when false.
        els: Box<Term>,
    },
    /// Binary operation `t ⋄ t`.
    Bin {
        /// Operator.
        op: ScalarOp,
        /// Left operand.
        lhs: Box<Term>,
        /// Right operand.
        rhs: Box<Term>,
    },
    /// Logical negation.
    Not(Box<Term>),
    /// NULL test (needed for outer-join results and `fillna`).
    IsNull(Box<Term>),
}

impl Term {
    /// Variable reference shorthand.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Integer constant shorthand.
    pub fn int(v: i64) -> Term {
        Term::Const(Const::Int(v))
    }

    /// Float constant shorthand.
    pub fn float(v: f64) -> Term {
        Term::Const(Const::Float(v))
    }

    /// String constant shorthand.
    pub fn str(v: impl Into<String>) -> Term {
        Term::Const(Const::Str(v.into()))
    }

    /// Binary operation shorthand.
    pub fn bin(op: ScalarOp, lhs: Term, rhs: Term) -> Term {
        Term::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Aggregation shorthand.
    pub fn agg(func: AggFunc, arg: Term) -> Term {
        Term::Agg {
            func,
            arg: Box::new(arg),
        }
    }

    /// `true` if any sub-term is an aggregation.
    pub fn contains_agg(&self) -> bool {
        let mut found = false;
        self.visit(&mut |t| {
            if matches!(t, Term::Agg { .. }) {
                found = true;
            }
        });
        found
    }

    /// Pre-order visit of the term tree.
    pub fn visit(&self, f: &mut impl FnMut(&Term)) {
        f(self);
        match self {
            Term::Agg { arg, .. } => arg.visit(f),
            Term::Ext { args, .. } => args.iter().for_each(|a| a.visit(f)),
            Term::If { cond, then, els } => {
                cond.visit(f);
                then.visit(f);
                els.visit(f);
            }
            Term::Bin { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Term::Not(t) | Term::IsNull(t) => t.visit(f),
            Term::Var(_) | Term::Const(_) => {}
        }
    }

    /// All variables referenced by the term, in first-use order.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |t| {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        });
        out
    }

    /// Rewrites every variable through `f` (in place).
    pub fn rename_vars(&mut self, f: &mut impl FnMut(&str) -> Option<String>) {
        match self {
            Term::Var(v) => {
                if let Some(nv) = f(v) {
                    *v = nv;
                }
            }
            Term::Agg { arg, .. } => arg.rename_vars(f),
            Term::Ext { args, .. } => args.iter_mut().for_each(|a| a.rename_vars(f)),
            Term::If { cond, then, els } => {
                cond.rename_vars(f);
                then.rename_vars(f);
                els.rename_vars(f);
            }
            Term::Bin { lhs, rhs, .. } => {
                lhs.rename_vars(f);
                rhs.rename_vars(f);
            }
            Term::Not(t) | Term::IsNull(t) => t.rename_vars(f),
            Term::Const(_) => {}
        }
    }

    /// Substitutes whole sub-terms for variables (used by rule inlining).
    pub fn substitute(&mut self, f: &mut impl FnMut(&str) -> Option<Term>) {
        if let Term::Var(v) = self {
            if let Some(t) = f(v) {
                *self = t;
                // Substituted terms are already fully resolved; don't recurse.
                return;
            }
        }
        match self {
            Term::Agg { arg, .. } => arg.substitute(f),
            Term::Ext { args, .. } => args.iter_mut().for_each(|a| a.substitute(f)),
            Term::If { cond, then, els } => {
                cond.substitute(f);
                then.substitute(f);
                els.substitute(f);
            }
            Term::Bin { lhs, rhs, .. } => {
                lhs.substitute(f);
                rhs.substitute(f);
            }
            Term::Not(t) | Term::IsNull(t) => t.substitute(f),
            Term::Var(_) | Term::Const(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_term() -> Term {
        // if(a > 1, sum(b * 2), c)
        Term::If {
            cond: Box::new(Term::bin(ScalarOp::Gt, Term::var("a"), Term::int(1))),
            then: Box::new(Term::agg(
                AggFunc::Sum,
                Term::bin(ScalarOp::Mul, Term::var("b"), Term::int(2)),
            )),
            els: Box::new(Term::var("c")),
        }
    }

    #[test]
    fn vars_collects_in_order_without_duplicates() {
        let t = Term::bin(
            ScalarOp::Add,
            Term::var("x"),
            Term::bin(ScalarOp::Mul, Term::var("y"), Term::var("x")),
        );
        assert_eq!(t.vars(), vec!["x", "y"]);
    }

    #[test]
    fn contains_agg_detects_nested_aggregates() {
        assert!(sample_term().contains_agg());
        assert!(!Term::var("a").contains_agg());
    }

    #[test]
    fn rename_vars_rewrites_all_occurrences() {
        let mut t = sample_term();
        t.rename_vars(&mut |v| (v == "b").then(|| "renamed".to_string()));
        assert!(t.vars().contains(&"renamed".to_string()));
        assert!(!t.vars().contains(&"b".to_string()));
    }

    #[test]
    fn substitute_replaces_with_terms() {
        let mut t = Term::bin(ScalarOp::Add, Term::var("x"), Term::var("y"));
        t.substitute(&mut |v| (v == "x").then(|| Term::int(5)));
        assert_eq!(t, Term::bin(ScalarOp::Add, Term::int(5), Term::var("y")));
    }

    #[test]
    fn head_lookup() {
        let h = Head::simple(
            "r",
            vec![("a".into(), "v1".into()), ("b".into(), "v2".into())],
        );
        assert_eq!(h.col_names(), vec!["a", "b"]);
        assert_eq!(h.var_of("b"), Some("v2"));
        assert_eq!(h.var_of("zz"), None);
    }

    #[test]
    fn program_output_and_defining_rule() {
        let r1 = Rule {
            head: Head::simple("t1", vec![("a".into(), "a".into())]),
            body: Body::default(),
        };
        let mut r2 = r1.clone();
        r2.head.rel = "t2".into();
        let p = Program {
            rules: vec![r1, r2],
        };
        assert_eq!(p.output_relation(), Some("t2"));
        assert_eq!(p.defining_rule("t1").unwrap().head.rel, "t1");
    }

    #[test]
    fn scalar_op_predicates() {
        assert!(ScalarOp::Eq.is_predicate());
        assert!(ScalarOp::Like.is_predicate());
        assert!(!ScalarOp::Add.is_predicate());
        assert_eq!(ScalarOp::Ne.sql(), "<>");
    }
}
