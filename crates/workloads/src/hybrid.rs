//! The synthetic hybrid matrix-calculation workloads (paper, Section V-A):
//! join two large tables, convert to a NumPy array, run an einsum —
//! matrix-vector multiplication or covariance — optionally with a
//! join-dependent filter before the final calculation (the "Filtered"
//! variants).

use crate::Workload;
use pytond_common::{Column, Relation, Result, Value};
use pytond_frame::{DataFrame, JoinHow};
use pytond_ndarray::{einsum, NdArray};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type Tables = [(&'static str, Relation, Vec<Vec<&'static str>>)];
type TableVec = Vec<(&'static str, Relation, Vec<Vec<&'static str>>)>;

/// Two join-compatible numeric tables `tx(id, a, b)` and `ty(id, c, d)`.
pub fn hybrid_tables(scale: usize) -> TableVec {
    let n = 20_000 * scale;
    let mut rng = StdRng::seed_from_u64(23);
    let id: Vec<i64> = (0..n as i64).collect();
    let col = |rng: &mut StdRng| -> Vec<f64> { (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect() };
    let tx = Relation::new(vec![
        ("id".into(), Column::from_i64(id.clone())),
        ("a".into(), Column::from_f64(col(&mut rng))),
        ("b".into(), Column::from_f64(col(&mut rng))),
    ])
    .unwrap();
    let ty = Relation::new(vec![
        ("id".into(), Column::from_i64(id)),
        ("c".into(), Column::from_f64(col(&mut rng))),
        ("d".into(), Column::from_f64(col(&mut rng))),
    ])
    .unwrap();
    vec![("tx", tx, vec![vec!["id"]]), ("ty", ty, vec![vec!["id"]])]
}

/// Hybrid Covar, non-filtered.
pub const HYBRID_COVAR_NF: &str = r#"
@pytond
def hybrid_covar_nf(tx, ty):
    j = tx.merge(ty, on='id')
    m = j.drop(columns=['id']).to_numpy()
    cov = np.einsum('ij,ik->jk', m, m)
    return cov
"#;

/// Hybrid Covar, filtered (join-dependent filter before the einsum).
pub const HYBRID_COVAR_F: &str = r#"
@pytond
def hybrid_covar_f(tx, ty):
    j = tx.merge(ty, on='id')
    f = j[j.a + j.c > 0.5]
    m = f.drop(columns=['id']).to_numpy()
    cov = np.einsum('ij,ik->jk', m, m)
    return cov
"#;

/// Hybrid MV, non-filtered.
pub const HYBRID_MV_NF: &str = r#"
@pytond
def hybrid_mv_nf(tx, ty):
    j = tx.merge(ty, on='id')
    m = j.drop(columns=['id']).to_numpy()
    v = np.array([0.5, -1.0, 2.0, 1.5])
    r = np.einsum('ij,j->i', m, v)
    return r
"#;

/// Hybrid MV, filtered.
pub const HYBRID_MV_F: &str = r#"
@pytond
def hybrid_mv_f(tx, ty):
    j = tx.merge(ty, on='id')
    f = j[j.a + j.c > 0.5]
    m = f.drop(columns=['id']).to_numpy()
    v = np.array([0.5, -1.0, 2.0, 1.5])
    r = np.einsum('ij,j->i', m, v)
    return r
"#;

fn joined_matrix(tables: &Tables, filtered: bool) -> Result<NdArray> {
    let tx = DataFrame::from_relation(&tables[0].1);
    let ty = DataFrame::from_relation(&tables[1].1);
    let j = tx.merge(&ty, JoinHow::Inner, &["id"], &["id"])?;
    let j = if filtered {
        let m = j.col("a")?.add(j.col("c")?)?.gt_val(&Value::Float(0.5));
        j.filter(&m)?
    } else {
        j
    };
    let cols = ["a", "b", "c", "d"];
    let n = j.num_rows();
    let mut buf = Vec::with_capacity(n * cols.len());
    for i in 0..n {
        for c in &cols {
            buf.push(j.col(c)?.get(i).as_f64().unwrap_or(0.0));
        }
    }
    NdArray::from_vec(vec![n, cols.len()], buf)
}

fn covar_baseline_nf(tables: &Tables) -> Result<Relation> {
    covar_baseline(tables, false)
}

fn covar_baseline_f(tables: &Tables) -> Result<Relation> {
    covar_baseline(tables, true)
}

fn covar_baseline(tables: &Tables, filtered: bool) -> Result<Relation> {
    let m = joined_matrix(tables, filtered)?;
    let cov = einsum("ij,ik->jk", &[&m, &m])?;
    matrix_relation(&cov)
}

fn mv_baseline_nf(tables: &Tables) -> Result<Relation> {
    mv_baseline(tables, false)
}

fn mv_baseline_f(tables: &Tables) -> Result<Relation> {
    mv_baseline(tables, true)
}

fn mv_baseline(tables: &Tables, filtered: bool) -> Result<Relation> {
    let m = joined_matrix(tables, filtered)?;
    let v = NdArray::vector(&[0.5, -1.0, 2.0, 1.5]);
    let r = einsum("ij,j->i", &[&m, &v])?;
    matrix_relation(&r)
}

/// Renders an array as the engine's dense relation shape (id + value cols).
pub fn matrix_relation(a: &NdArray) -> Result<Relation> {
    let (rows, cols) = if a.ndim() == 2 {
        (a.shape()[0], a.shape()[1])
    } else {
        (a.shape()[0], 1)
    };
    let mut out: Vec<(String, Column)> = Vec::with_capacity(cols + 1);
    out.push(("__id".into(), Column::from_i64((0..rows as i64).collect())));
    for j in 0..cols {
        let data: Vec<f64> = (0..rows)
            .map(|i| {
                if a.ndim() == 2 {
                    a.get(&[i, j])
                } else {
                    a.get(&[i])
                }
            })
            .collect();
        out.push((format!("c{j}"), Column::from_f64(data)));
    }
    Relation::new(out)
}

/// Hybrid Covar workload (Figures 5/6/8/10).
pub fn hybrid_covar(scale: usize, filtered: bool) -> Workload {
    Workload {
        name: if filtered {
            "Hybrid Covar (F)"
        } else {
            "Hybrid Covar (NF)"
        },
        tables: hybrid_tables(scale),
        source: if filtered {
            HYBRID_COVAR_F
        } else {
            HYBRID_COVAR_NF
        },
        baseline: if filtered {
            covar_baseline_f
        } else {
            covar_baseline_nf
        },
        ignore_id_cols: true,
    }
}

/// Hybrid MV workload.
pub fn hybrid_mv(scale: usize, filtered: bool) -> Workload {
    Workload {
        name: if filtered {
            "Hybrid MV (F)"
        } else {
            "Hybrid MV (NF)"
        },
        tables: hybrid_tables(scale),
        source: if filtered { HYBRID_MV_F } else { HYBRID_MV_NF },
        baseline: if filtered {
            mv_baseline_f
        } else {
            mv_baseline_nf
        },
        ignore_id_cols: true,
    }
}
