//! Real-world notebook workloads: Crime Index, Birth Analysis, N3, N9.

use crate::Workload;
use pytond_common::{Column, Relation, Result, Value};
use pytond_frame::{AggOp, DataFrame};
use pytond_ndarray::{einsum, NdArray};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type Tables = [(&'static str, Relation, Vec<Vec<&'static str>>)];
type TableVec = Vec<(&'static str, Relation, Vec<Vec<&'static str>>)>;

// =====================================================================
// Crime Index (Weld notebook): Pandas → NumPy einsum → Pandas.
// =====================================================================

/// Synthetic city statistics (the notebook's per-city population/crime data).
pub fn crime_tables(scale: usize) -> TableVec {
    let n = 5_000 * scale;
    let mut rng = StdRng::seed_from_u64(7);
    let pop: Vec<f64> = (0..n)
        .map(|_| rng.gen_range(1_000.0..5_000_000.0))
        .collect();
    let crimes: Vec<f64> = pop.iter().map(|p| p * rng.gen_range(0.001..0.05)).collect();
    let name: Vec<String> = (0..n).map(|i| format!("city{i}")).collect();
    vec![(
        "cities",
        Relation::new(vec![
            ("name".into(), Column::from_str_vec(name)),
            ("population".into(), Column::from_f64(pop)),
            ("total_crimes".into(), Column::from_f64(crimes)),
        ])
        .unwrap(),
        vec![],
    )]
}

const CRIME_SRC: &str = r#"
@pytond
def crime_index(cities):
    big = cities[cities.population > 500000.0]
    data = big[['population', 'total_crimes']]
    arr = data.to_numpy()
    weights = np.array([0.000001, -0.0001])
    idx = np.einsum('ij,j->i', arr, weights)
    df = pd.DataFrame(idx, columns=['index_val'])
    sel = df[df.index_val > 0.5]
    return sel[['index_val']]
"#;

fn crime_baseline(tables: &Tables) -> Result<Relation> {
    let cities = DataFrame::from_relation(&tables[0].1);
    let big = cities.filter(&cities.col("population")?.gt_val(&Value::Float(500_000.0)))?;
    let data = big.select(&["population", "total_crimes"])?;
    let n = data.num_rows();
    let mut buf = Vec::with_capacity(n * 2);
    for i in 0..n {
        buf.push(data.col("population")?.get(i).as_f64().unwrap_or(0.0));
        buf.push(data.col("total_crimes")?.get(i).as_f64().unwrap_or(0.0));
    }
    let arr = NdArray::from_vec(vec![n, 2], buf)?;
    let weights = NdArray::vector(&[0.000001, -0.0001]);
    let idx = einsum("ij,j->i", &[&arr, &weights])?;
    let vals: Vec<f64> = idx.data().iter().copied().filter(|&v| v > 0.5).collect();
    Relation::new(vec![("index_val".into(), Column::from_f64(vals))])
}

/// The Crime Index workload.
pub fn crime_index(scale: usize) -> Workload {
    Workload {
        name: "Crime Index",
        tables: crime_tables(scale),
        source: CRIME_SRC,
        baseline: crime_baseline,
        ignore_id_cols: true,
    }
}

// =====================================================================
// Birth Analysis: pivot_table-centric notebook.
// =====================================================================

/// Synthetic birth statistics `(year, sex, births)`.
pub fn birth_tables(scale: usize) -> TableVec {
    let years = 120;
    let per_year = 50 * scale;
    let mut rng = StdRng::seed_from_u64(11);
    let mut year = Vec::new();
    let mut sex = Vec::new();
    let mut births = Vec::new();
    for y in 0..years {
        for _ in 0..per_year {
            year.push(1900 + y);
            sex.push(if rng.gen_bool(0.5) { "F" } else { "M" }.to_string());
            births.push(rng.gen_range(5..2_000i64));
        }
    }
    vec![(
        "births",
        Relation::new(vec![
            ("year".into(), Column::from_i64(year)),
            ("sex".into(), Column::from_str_vec(sex)),
            ("births".into(), Column::from_i64(births)),
        ])
        .unwrap(),
        vec![],
    )]
}

const BIRTH_SRC: &str = r#"
@pytond(pivot_values={'sex': ['F', 'M']})
def birth_analysis(births):
    pv = births.pivot_table(index='year', columns='sex', values='births', aggfunc='sum')
    pv['total'] = pv.F + pv.M
    pv['f_share'] = pv.F / pv.total
    big = pv[pv.total > 20000]
    return big.sort_values(by=['year'])
"#;

fn birth_baseline(tables: &Tables) -> Result<Relation> {
    let births = DataFrame::from_relation(&tables[0].1);
    let mut pv = births.pivot_table("year", "sex", "births", AggOp::Sum)?;
    let total = pv.col("F")?.add(pv.col("M")?)?.rename("total");
    pv.insert(total)?;
    let share = pv
        .col("F")?
        .map_numeric(|x| x)?
        .div(&pv.col("total")?.map_numeric(|x| x)?)?
        .rename("f_share");
    pv.insert(share)?;
    let big = pv.filter(&pv.col("total")?.gt_val(&Value::Int(20_000)))?;
    Ok(big.sort_values(&[("year", true)])?.to_relation())
}

/// The Birth Analysis workload.
pub fn birth_analysis(scale: usize) -> Workload {
    Workload {
        name: "Birth Analysis",
        tables: birth_tables(scale),
        source: BIRTH_SRC,
        baseline: birth_baseline,
        ignore_id_cols: false,
    }
}

// =====================================================================
// N3: airline on-time performance (relational pipeline on wide data).
// =====================================================================

/// Synthetic airline on-time data.
pub fn n3_tables(scale: usize) -> TableVec {
    let n = 20_000 * scale;
    let mut rng = StdRng::seed_from_u64(13);
    const CARRIERS: &[&str] = &["AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9"];
    let carrier: Vec<String> = (0..n)
        .map(|_| CARRIERS[rng.gen_range(0..CARRIERS.len())].to_string())
        .collect();
    let dep_delay: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..180.0)).collect();
    let arr_delay: Vec<f64> = dep_delay
        .iter()
        .map(|d| d + rng.gen_range(-30.0..30.0))
        .collect();
    let distance: Vec<f64> = (0..n).map(|_| rng.gen_range(100.0..3_000.0)).collect();
    let cancelled: Vec<i64> = (0..n).map(|_| i64::from(rng.gen_bool(0.02))).collect();
    vec![(
        "flights",
        Relation::new(vec![
            ("carrier".into(), Column::from_str_vec(carrier)),
            ("dep_delay".into(), Column::from_f64(dep_delay)),
            ("arr_delay".into(), Column::from_f64(arr_delay)),
            ("distance".into(), Column::from_f64(distance)),
            ("cancelled".into(), Column::from_i64(cancelled)),
        ])
        .unwrap(),
        vec![],
    )]
}

const N3_SRC: &str = r#"
@pytond
def n3(flights):
    f = flights[(flights.cancelled == 0) & (flights.dep_delay >= 0.0)]
    f['gain'] = f.dep_delay - f.arr_delay
    g = f.groupby(['carrier']).agg(mean_gain=('gain', 'mean'), n=('gain', 'count'), total_dist=('distance', 'sum'))
    big = g[g.n > 10]
    return big.sort_values(by=['mean_gain'], ascending=False)
"#;

fn n3_baseline(tables: &Tables) -> Result<Relation> {
    let flights = DataFrame::from_relation(&tables[0].1);
    let m = flights
        .col("cancelled")?
        .eq_val(&Value::Int(0))
        .and(&flights.col("dep_delay")?.ge_val(&Value::Float(0.0)))?;
    let mut f = flights.filter(&m)?;
    let gain = f.col("dep_delay")?.sub(f.col("arr_delay")?)?.rename("gain");
    f.insert(gain)?;
    let g = f.groupby(&["carrier"])?.agg(&[
        ("gain", AggOp::Mean, "mean_gain"),
        ("gain", AggOp::Count, "n"),
        ("distance", AggOp::Sum, "total_dist"),
    ])?;
    let big = g.filter(&g.col("n")?.gt_val(&Value::Int(10)))?;
    Ok(big.sort_values(&[("mean_gain", false)])?.to_relation())
}

/// The N3 workload.
pub fn n3(scale: usize) -> Workload {
    Workload {
        name: "N3",
        tables: n3_tables(scale),
        source: N3_SRC,
        baseline: n3_baseline,
        ignore_id_cols: false,
    }
}

// =====================================================================
// N9: e-commerce event analytics.
// =====================================================================

/// Synthetic e-commerce events.
pub fn n9_tables(scale: usize) -> TableVec {
    let n = 15_000 * scale;
    let mut rng = StdRng::seed_from_u64(17);
    const TYPES: &[&str] = &["view", "cart", "purchase"];
    const CATS: &[&str] = &[
        "electronics",
        "apparel",
        "computers",
        "appliances",
        "auto",
        "furniture",
        "kids",
        "sport",
    ];
    let event_type: Vec<String> = (0..n)
        .map(|_| {
            let r: f64 = rng.gen();
            if r < 0.7 {
                TYPES[0]
            } else if r < 0.9 {
                TYPES[1]
            } else {
                TYPES[2]
            }
            .to_string()
        })
        .collect();
    let category: Vec<String> = (0..n)
        .map(|_| CATS[rng.gen_range(0..CATS.len())].to_string())
        .collect();
    let price: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..2_000.0)).collect();
    let quantity: Vec<i64> = (0..n).map(|_| rng.gen_range(1..5)).collect();
    vec![(
        "events",
        Relation::new(vec![
            ("event_type".into(), Column::from_str_vec(event_type)),
            ("category".into(), Column::from_str_vec(category)),
            ("price".into(), Column::from_f64(price)),
            ("quantity".into(), Column::from_i64(quantity)),
        ])
        .unwrap(),
        vec![],
    )]
}

const N9_SRC: &str = r#"
@pytond
def n9(events):
    e = events[events.event_type == 'purchase']
    e['rev'] = e.price * e.quantity
    g = e.groupby(['category']).agg(revenue=('rev', 'sum'), n=('rev', 'count'))
    g['avg_value'] = g.revenue / g.n
    return g.sort_values(by=['revenue'], ascending=False).head(10)
"#;

fn n9_baseline(tables: &Tables) -> Result<Relation> {
    let events = DataFrame::from_relation(&tables[0].1);
    let mut e = events.filter(
        &events
            .col("event_type")?
            .eq_val(&Value::Str("purchase".into())),
    )?;
    let qf = e.col("quantity")?.map_numeric(|x| x)?;
    let rev = e.col("price")?.mul(&qf)?.rename("rev");
    e.insert(rev)?;
    let mut g = e
        .groupby(&["category"])?
        .agg(&[("rev", AggOp::Sum, "revenue"), ("rev", AggOp::Count, "n")])?;
    let avg = g
        .col("revenue")?
        .div(&g.col("n")?.map_numeric(|x| x)?)?
        .rename("avg_value");
    g.insert(avg)?;
    Ok(g.sort_values(&[("revenue", false)])?.head(10).to_relation())
}

/// The N9 workload.
pub fn n9(scale: usize) -> Workload {
    Workload {
        name: "N9",
        tables: n9_tables(scale),
        source: N9_SRC,
        baseline: n9_baseline,
        ignore_id_cols: false,
    }
}
