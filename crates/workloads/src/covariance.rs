//! The covariance micro-benchmark of Figure 9: NumPy vs PyTond with dense
//! and sparse (COO) layouts, swept over sparsity, rows, and columns.

use pytond_common::{Column, Relation};
use pytond_ndarray::{Coo, NdArray};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates an `rows × cols` matrix with the given fraction of non-zero
/// entries (`sparsity` = 1.0 means fully dense, like the paper's fixed
/// dimension).
pub fn gen_matrix(rows: usize, cols: usize, sparsity: f64, seed: u64) -> NdArray {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0.0f64; rows * cols];
    for v in data.iter_mut() {
        if rng.gen_bool(sparsity.clamp(0.0, 1.0)) {
            *v = rng.gen_range(-1.0..1.0);
        }
    }
    NdArray::from_vec(vec![rows, cols], data).expect("shape matches data")
}

/// The dense relation `(__id, c0..c{n-1})` the PyTond dense path reads.
pub fn dense_relation(m: &NdArray) -> Relation {
    let (rows, cols) = (m.shape()[0], m.shape()[1]);
    let mut out: Vec<(String, Column)> = Vec::with_capacity(cols + 1);
    out.push(("__id".into(), Column::from_i64((0..rows as i64).collect())));
    for j in 0..cols {
        out.push((
            format!("c{j}"),
            Column::from_f64((0..rows).map(|i| m.get(&[i, j])).collect()),
        ));
    }
    Relation::new(out).expect("rectangular")
}

/// The COO relation `(row_id, col_id, val)` the sparse path reads.
pub fn sparse_relation(m: &NdArray) -> Relation {
    Coo::from_dense(m).expect("matrix").to_relation()
}

/// Python source of the dense covariance (`m` binds to the dense table).
pub fn covariance_dense_source() -> &'static str {
    r#"
@pytond
def covariance(m):
    return np.einsum('ij,ik->jk', m, m)
"#
}

/// Python source of the sparse covariance (COO operand).
pub fn covariance_sparse_source() -> &'static str {
    r#"
@pytond(layout='sparse')
def covariance(m):
    return np.einsum('ij,ik->jk', m, m)
"#
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_controls_density() {
        let dense = gen_matrix(100, 8, 1.0, 1);
        let sparse = gen_matrix(100, 8, 0.01, 1);
        let nnz = |m: &NdArray| m.data().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nnz(&dense), 800);
        assert!(nnz(&sparse) < 40);
    }

    #[test]
    fn relations_have_expected_shapes() {
        let m = gen_matrix(10, 3, 0.5, 2);
        let d = dense_relation(&m);
        assert_eq!(d.names(), vec!["__id", "c0", "c1", "c2"]);
        assert_eq!(d.num_rows(), 10);
        let s = sparse_relation(&m);
        assert_eq!(s.names(), vec!["row_id", "col_id", "val"]);
    }
}
