//! The hybrid data-science workloads of the paper's evaluation (Section V-A):
//! Crime Index, Birth Analysis, the Kaggle notebooks N3/N9, and the synthetic
//! Hybrid Covar / Hybrid MV pairs (non-filtered and filtered) — plus the
//! covariance micro-benchmark of Figure 9.
//!
//! Each workload carries a deterministic data generator, the Python source
//! for the PyTond path, and an interpreted baseline over `pytond-frame` /
//! `pytond-ndarray` (the evaluation's "Python" bars). The original notebooks
//! use proprietary/Kaggle datasets; the generators synthesize data with the
//! same schema, cardinalities and selectivities (see DESIGN.md).

pub mod covariance;
pub mod hybrid;
pub mod notebooks;

pub use covariance::{covariance_dense_source, covariance_sparse_source, gen_matrix};
pub use hybrid::{hybrid_tables, HYBRID_COVAR_F, HYBRID_COVAR_NF, HYBRID_MV_F, HYBRID_MV_NF};
pub use notebooks::{birth_tables, crime_tables, n3_tables, n9_tables};

use pytond_common::{Relation, Result};

/// One table of a workload: `(table name, relation, unique keys)`.
pub type WorkloadTable = (&'static str, Relation, Vec<Vec<&'static str>>);

/// A named workload: tables + Python source + interpreted baseline.
pub struct Workload {
    /// Display name matching the paper's figures.
    pub name: &'static str,
    /// Tables to register.
    pub tables: Vec<WorkloadTable>,
    /// Python source for the PyTond path.
    pub source: &'static str,
    /// Interpreted baseline.
    pub baseline: fn(&[WorkloadTable]) -> Result<Relation>,
    /// Columns to ignore when diffing compiled vs baseline results
    /// (generated row-id columns whose numbering conventions differ).
    pub ignore_id_cols: bool,
}

/// All eight workloads of Figures 5/6/8, at `scale` (≈ rows multiplier).
pub fn all_workloads(scale: usize) -> Vec<Workload> {
    vec![
        notebooks::crime_index(scale),
        notebooks::birth_analysis(scale),
        hybrid::hybrid_covar(scale, false),
        hybrid::hybrid_covar(scale, true),
        hybrid::hybrid_mv(scale, false),
        hybrid::hybrid_mv(scale, true),
        notebooks::n3(scale),
        notebooks::n9(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_enumerate_and_generate() {
        let ws = all_workloads(1);
        assert_eq!(ws.len(), 8);
        for w in &ws {
            assert!(w.source.contains("@pytond"), "{}", w.name);
            assert!(!w.tables.is_empty(), "{}", w.name);
            let out = (w.baseline)(&w.tables);
            assert!(out.is_ok(), "{} baseline: {:?}", w.name, out.err());
        }
    }
}
