//! PyTond: compile Pandas/NumPy Python source to an optimized, prepared
//! query plan and execute it in-database — compile once, execute many.
//!
//! This crate wires the whole pipeline of the paper's Figure 1 together.
//! The compile phase runs the front-end and planner exactly once; the
//! execute phase runs the prepared plan with zero per-call lexing, parsing,
//! binding or planning:
//!
//! ```text
//! compile (once):
//! @pytond source ──pyparse──► AST ──translate──► TondIR ──optimizer──► TondIR
//!                                                              │
//!                              sqldb::lower ◄─────────────────┤
//!                                    │                         └────► sqlgen
//!                              PreparedQuery                     (SQL export:
//!                           (bound + optimized plan)              dialects +
//!                                    │                            differential
//! execute (many):                    ▼                            oracle)
//!                        sqldb::execute_prepared ──► Relation
//! ```
//!
//! Prepared plans are cached per `(source, opt level, profile, stats
//! version)` across 16 lock shards: a `register_table`/`append` bumps the
//! statistics version and the next execution transparently re-plans, so
//! cost-based join orders stay fresh as data grows. Generated SQL text is
//! still available on [`Compiled::sql`] as an *export format* for the
//! paper's real backends (DuckDB/Hyper/LingoDB dialects) — the in-process
//! engine never re-parses it.
//!
//! [`Pytond`] is `Send + Sync` and every method takes `&self`: wrap one
//! instance in an `Arc` (or hand out [`Database`] clones) and serve any
//! number of client threads — reads pin an immutable snapshot, appends
//! publish new versions without blocking them. `docs/SERVING.md` documents
//! the full concurrency model.
//!
//! # Quick start
//!
//! ```
//! use pytond::{Pytond, Backend};
//! use pytond_common::{Column, Relation};
//!
//! let py = Pytond::new();
//! py.register_table(
//!     "sales",
//!     Relation::new(vec![
//!         ("region".into(), Column::from_strs(&["eu", "us", "eu"])),
//!         ("amount".into(), Column::from_f64(vec![10.0, 20.0, 5.0])),
//!     ])
//!     .unwrap(),
//!     &[],
//! );
//! let out = py
//!     .run(
//!         r#"
//! @pytond
//! def total_by_region(sales):
//!     big = sales[sales.amount > 6.0]
//!     return big.groupby(['region']).agg(total=('amount', 'sum'))
//! "#,
//!         &Backend::duckdb_sim(1),
//!     )
//!     .unwrap();
//! assert_eq!(out.num_rows(), 2);
//! ```

#![warn(missing_docs)]

pub use pytond_optimizer::OptLevel;
pub use pytond_sqldb::{
    CancelToken, Database, EngineConfig, PreparedQuery, Profile, RefreshMode, ViewState,
};
pub use pytond_sqlgen::Dialect;

use pytond_common::hash::{FxHashMap, FxHasher};
use pytond_common::version::Versioned;
use pytond_common::{Error, Relation, Result};
use pytond_tondir::{Catalog, Program, TableSchema};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// A named backend: engine profile + thread count (the paper's
/// DuckDB/Hyper/LingoDB × 1–4 threads matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backend {
    /// Engine profile.
    pub profile: Profile,
    /// Worker threads. `0` = auto: resolve to
    /// [`pytond_common::pool::default_threads`] (the `PYTOND_THREADS`
    /// environment variable, else the machine's hardware parallelism) when
    /// the query executes; `1` = the serial path. See `docs/EXECUTION.md`.
    pub threads: usize,
    /// Per-query deadline in milliseconds for every query run through this
    /// backend. `None` (the default) defers to `PYTOND_QUERY_TIMEOUT_MS`;
    /// `Some(0)` explicitly disables the deadline. On expiry the query
    /// returns the transient [`pytond_common::Error::Timeout`] within one
    /// morsel claim. See `docs/RESILIENCE.md`.
    pub timeout_ms: Option<u64>,
    /// Per-query memory budget in MiB. `None` defers to
    /// `PYTOND_QUERY_MEM_MB`; `Some(0)` disables the budget. Exceeding it
    /// returns the transient [`pytond_common::Error::ResourceExhausted`].
    pub mem_budget_mb: Option<u64>,
}

impl Backend {
    /// A profile at automatic parallelism (`threads = 0`): the engine uses
    /// every hardware thread, or whatever `PYTOND_THREADS` dictates.
    pub fn auto(profile: Profile) -> Backend {
        Backend {
            profile,
            threads: 0,
            timeout_ms: None,
            mem_budget_mb: None,
        }
    }

    /// DuckDB-like vectorized profile.
    pub fn duckdb_sim(threads: usize) -> Backend {
        Backend {
            profile: Profile::Vectorized,
            threads,
            timeout_ms: None,
            mem_budget_mb: None,
        }
    }

    /// Hyper-like fused profile.
    pub fn hyper_sim(threads: usize) -> Backend {
        Backend {
            profile: Profile::Fused,
            threads,
            timeout_ms: None,
            mem_budget_mb: None,
        }
    }

    /// LingoDB-like restricted profile.
    pub fn lingodb_sim(threads: usize) -> Backend {
        Backend {
            profile: Profile::Lingo,
            threads,
            timeout_ms: None,
            mem_budget_mb: None,
        }
    }

    /// The SQL dialect this backend's paper counterpart expects.
    pub fn dialect(&self) -> Dialect {
        match self.profile {
            Profile::Vectorized => Dialect::DuckDb,
            Profile::Fused => Dialect::Hyper,
            Profile::Lingo => Dialect::LingoDb,
        }
    }

    /// The engine profile a dialect pairs with (inverse of
    /// [`Backend::dialect`]).
    pub fn profile_for(dialect: Dialect) -> Profile {
        match dialect {
            Dialect::DuckDb => Profile::Vectorized,
            Dialect::Hyper => Profile::Fused,
            Dialect::LingoDb => Profile::Lingo,
        }
    }

    /// A copy of this backend with a per-query deadline (overrides the
    /// `PYTOND_QUERY_TIMEOUT_MS` default for queries run through it;
    /// `0` disables the deadline entirely).
    pub fn with_timeout_ms(mut self, ms: u64) -> Backend {
        self.timeout_ms = Some(ms);
        self
    }

    /// A copy of this backend with a per-query memory budget in MiB
    /// (overrides the `PYTOND_QUERY_MEM_MB` default; `0` disables it).
    pub fn with_mem_budget_mb(mut self, mb: u64) -> Backend {
        self.mem_budget_mb = Some(mb);
        self
    }

    /// Engine configuration.
    pub fn config(&self) -> EngineConfig {
        EngineConfig::new(self.profile, self.threads)
            .with_timeout(self.timeout_ms)
            .with_mem_budget(self.mem_budget_mb)
    }

    /// Display name (e.g. `duckdb-sim/4t`, `hyper-sim/auto`).
    pub fn name(&self) -> String {
        if self.threads == 0 {
            format!("{}/auto", self.profile.name())
        } else {
            format!("{}/{}t", self.profile.name(), self.threads)
        }
    }
}

/// The result of compiling a `@pytond` function: the prepared plan the
/// in-process engine executes, plus the generated SQL as an export format.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The `@pytond` source this was compiled from (the plan-cache key, so
    /// [`Pytond::execute`] can share re-planned entries with [`Pytond::run`]).
    pub source: String,
    /// TondIR straight out of translation (the "Grizzly-simulated" program).
    pub raw_ir: Program,
    /// TondIR after optimization.
    pub optimized_ir: Program,
    /// Generated SQL text — the *export* rendering for the dialect's real
    /// backend (and the differential oracle); the in-process engine runs
    /// [`Compiled::prepared`] instead of re-parsing this.
    pub sql: String,
    /// The optimization level used.
    pub level: OptLevel,
    /// The dialect used for the SQL export.
    pub dialect: Dialect,
    /// The bound + cost-optimized plan, lowered directly from
    /// [`Compiled::optimized_ir`] (no SQL round-trip). [`Pytond::execute`]
    /// runs it as-is while the database statistics have not moved.
    pub prepared: Arc<PreparedQuery>,
}

impl Compiled {
    /// Pretty-prints the optimized IR (paper notation).
    pub fn ir_text(&self) -> String {
        pytond_tondir::printer::print_program(&self.optimized_ir)
    }
}

/// Key of one cached prepared plan: the full source text (not a hash — a
/// 64-bit digest could collide and silently serve the wrong plan) × opt
/// level × profile × the statistics version the plan was optimized under.
/// Putting the stats version in the key means a lookup at the *current*
/// version can never return a stale plan — after an append, old entries
/// simply stop being found and age out of their shard's FIFO.
type PlanKey = (String, OptLevel, Profile, u64);

/// Lock shards in the plan cache: concurrent clients compiling or looking
/// up different sources contend on different mutexes.
const PLAN_CACHE_SHARDS: usize = 16;

/// Soft cap on cached plans across all shards (each shard holds at most
/// `PLAN_CACHE_CAP / PLAN_CACHE_SHARDS`). When an insert finds its shard
/// full, the shard evicts its oldest entries first — O(1) amortized, see
/// [`CacheShard`].
const PLAN_CACHE_CAP: usize = 512;

/// Per-shard entry cap.
const SHARD_CAP: usize = PLAN_CACHE_CAP / PLAN_CACHE_SHARDS;

/// One cached plan + the FIFO stamp of its most recent insert (used to
/// recognize stale FIFO records, see [`CacheShard::insert`]).
#[derive(Debug)]
struct CacheEntry {
    plan: Arc<PreparedQuery>,
    stamp: u64,
}

/// One lock shard of the plan cache: a map plus an insertion-order queue
/// that makes eviction O(1) amortized (the previous design scanned the
/// whole map under the lock on every insert at the cap).
///
/// Every insert pushes `(key, stamp)` onto the FIFO and records the stamp
/// in the map entry. Re-inserting an existing key refreshes the stamp, so
/// the key's older FIFO records no longer match and are skipped (and
/// discarded) when popped. Each FIFO record is pushed once and popped at
/// most once — eviction work is constant per insert, regardless of map
/// size.
#[derive(Debug, Default)]
struct CacheShard {
    map: FxHashMap<PlanKey, CacheEntry>,
    fifo: VecDeque<(PlanKey, u64)>,
    next_stamp: u64,
}

impl CacheShard {
    fn lookup(&self, key: &PlanKey) -> Option<Arc<PreparedQuery>> {
        self.map.get(key).map(|e| e.plan.clone())
    }

    fn insert(&mut self, key: PlanKey, plan: Arc<PreparedQuery>) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if self
            .map
            .insert(key.clone(), CacheEntry { plan, stamp })
            .is_none()
        {
            // A genuinely new key: make room by retiring oldest-inserted
            // entries. FIFO records whose stamp no longer matches the map
            // are leftovers of a key that was re-inserted later — drop
            // them without evicting.
            while self.map.len() > SHARD_CAP {
                let (old_key, old_stamp) = self
                    .fifo
                    .pop_front()
                    .expect("cache FIFO lost track of a live entry");
                if self.map.get(&old_key).is_some_and(|e| e.stamp == old_stamp) {
                    self.map.remove(&old_key);
                }
            }
        }
        self.fifo.push_back((key, stamp));
    }
}

/// The sharded prepared-plan cache: `PLAN_CACHE_SHARDS` independent
/// mutexes, selected by key hash.
#[derive(Debug)]
struct PlanCache {
    shards: Vec<Mutex<CacheShard>>,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache {
            shards: (0..PLAN_CACHE_SHARDS)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
        }
    }
}

impl PlanCache {
    fn shard(&self, key: &PlanKey) -> &Mutex<CacheShard> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % PLAN_CACHE_SHARDS]
    }

    fn lookup(&self, key: &PlanKey) -> Option<Arc<PreparedQuery>> {
        self.shard(key)
            .lock()
            .expect("plan cache shard poisoned")
            .lookup(key)
    }

    fn insert(&self, key: PlanKey, plan: Arc<PreparedQuery>) {
        self.shard(&key)
            .lock()
            .expect("plan cache shard poisoned")
            .insert(key, plan);
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache shard poisoned").map.len())
            .sum()
    }
}

/// The PyTond compiler + embedded database.
///
/// `Pytond` is `Send + Sync` and every method — including
/// [`Pytond::register_table`] and [`Pytond::append`] — takes `&self`:
/// share one instance behind an `Arc` across any number of client threads.
/// Reads pin an immutable database snapshot for the life of the query;
/// writes publish a new version without blocking in-flight reads (see
/// `docs/SERVING.md`).
#[derive(Debug, Default)]
pub struct Pytond {
    db: Database,
    /// Catalog versions publish in lockstep with database versions: readers
    /// pin whichever version is current, writers replace it under
    /// [`Pytond::write`].
    catalog: Versioned<Catalog>,
    /// Serializes [`Pytond::register_table`]/[`Pytond::append`] so the
    /// catalog and the database move together (a reader may still observe
    /// the catalog one version ahead of or behind the database — both are
    /// internally consistent, see `docs/SERVING.md`).
    write: Mutex<()>,
    /// Sharded prepared-plan cache for [`Pytond::run`]/[`Pytond::run_at`]:
    /// keys carry the stats version, so entries planned under older
    /// statistics are never returned for current-version lookups and age
    /// out FIFO per shard.
    plan_cache: PlanCache,
}

impl Pytond {
    /// An empty instance.
    pub fn new() -> Pytond {
        Pytond::default()
    }

    /// Registers a table, inferring its schema; `unique` lists single- or
    /// multi-column unique keys (the catalog constraints of Section III-A).
    /// Publishes a new database + catalog version, so cached prepared plans
    /// re-plan on their next use; in-flight queries keep the snapshot they
    /// pinned.
    pub fn register_table(&self, name: &str, rel: Relation, unique: &[&[&str]]) {
        let _writer = self.write.lock().expect("facade writer poisoned");
        let mut schema = TableSchema::new(name, rel.schema());
        for key in unique {
            schema = schema.with_unique(key);
        }
        schema = schema.with_rows(rel.num_rows() as u64);
        let mut catalog = (*self.catalog.load()).clone();
        catalog.add(schema);
        self.db.register(name, rel);
        self.catalog.publish(Arc::new(catalog));
    }

    /// Appends rows to a registered table (schema must match). Statistics
    /// update incrementally and a new version publishes: cached prepared
    /// plans re-plan on their next use, so cost-based join orders track the
    /// new row counts. In-flight queries keep the version they pinned. A
    /// failed append changes nothing.
    pub fn append(&self, name: &str, rel: &Relation) -> Result<()> {
        let _writer = self.write.lock().expect("facade writer poisoned");
        self.db.append(name, rel)?;
        // The catalog keys by the name as registered while the database
        // lowercases; match case-insensitively so the row count never
        // silently goes stale.
        let cur = self.catalog.load();
        let entry = cur
            .tables()
            .find(|t| t.name.eq_ignore_ascii_case(name))
            .cloned();
        if let Some(schema) = entry {
            let rows = self.db.table(name).map_or(0, |t| t.num_rows() as u64);
            let mut catalog = (*cur).clone();
            catalog.add(schema.with_rows(rows));
            self.catalog.publish(Arc::new(catalog));
        }
        Ok(())
    }

    /// Pins the current catalog version (schemas + constraints). The
    /// returned `Arc` is immutable; later `register_table`/`append` calls
    /// publish new versions without disturbing it.
    pub fn catalog(&self) -> Arc<Catalog> {
        self.catalog.load()
    }

    /// The embedded database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Compiles the first `@pytond` function at the default level (O4).
    pub fn compile(&self, source: &str, dialect: Dialect) -> Result<Compiled> {
        self.compile_at(source, dialect, OptLevel::O4)
    }

    /// Compiles at an explicit optimization level (Figure 10's ablation):
    /// runs the front-end, lowers the optimized IR directly into a prepared
    /// plan, and renders the dialect's SQL export.
    pub fn compile_at(&self, source: &str, dialect: Dialect, level: OptLevel) -> Result<Compiled> {
        let catalog = self.catalog.load();
        let raw_ir = pytond_translate::translate_source(source, &catalog)?;
        pytond_tondir::analysis::validate(&raw_ir, &catalog)?;
        let optimized_ir = pytond_optimizer::optimize(raw_ir.clone(), &catalog, level);
        pytond_tondir::analysis::validate(&optimized_ir, &catalog)?;
        let sql = pytond_sqlgen::generate_sql(&optimized_ir, &catalog, dialect)?;
        let profile = Backend::profile_for(dialect);
        let prepared = match pytond_sqldb::lower::prepare_program(
            &self.db,
            &optimized_ir,
            &catalog,
            profile,
        ) {
            Ok(p) => Arc::new(p),
            // Profile-gated queries (e.g. window functions on the LingoDB
            // profile) must still *compile*: the SQL export targets the
            // paper's real backend, and the gate historically fired at
            // execute time. Carry a plan validated under the ungated
            // profile instead; `execute` re-validates for the requested
            // backend because the profiles then differ.
            Err(Error::Unsupported(_)) => Arc::new(pytond_sqldb::lower::prepare_program(
                &self.db,
                &optimized_ir,
                &catalog,
                Profile::Vectorized,
            )?),
            Err(e) => return Err(e),
        };
        // Cache under the profile the plan was actually validated for — a
        // gate-skipping plan must never satisfy a Lingo-profile lookup —
        // and under the stats version it was planned at.
        self.plan_cache.insert(
            plan_key(source, level, prepared.profile(), prepared.stats_version()),
            prepared.clone(),
        );
        Ok(Compiled {
            source: source.to_string(),
            raw_ir,
            optimized_ir,
            sql,
            level,
            dialect,
            prepared,
        })
    }

    /// Returns the cached prepared plan for a source, compiling and caching
    /// it if absent or planned under stale statistics. On a cache hit this
    /// performs zero lexing, parsing, binding or planning.
    pub fn prepare(
        &self,
        source: &str,
        backend: &Backend,
        level: OptLevel,
    ) -> Result<Arc<PreparedQuery>> {
        let key = plan_key(source, level, backend.profile, self.db.stats_version());
        if let Some(p) = self.plan_cache.lookup(&key) {
            return Ok(p);
        }
        // Miss (or the stats version moved, making this a fresh key): run
        // the compile pipeline (translate → validate → optimize → lower →
        // bind/plan) and cache under the version the plan was planned at.
        // sqlgen is not involved — SQL text is an export format, not the
        // wire format.
        let catalog = self.catalog.load();
        let raw_ir = pytond_translate::translate_source(source, &catalog)?;
        pytond_tondir::analysis::validate(&raw_ir, &catalog)?;
        let optimized_ir = pytond_optimizer::optimize(raw_ir, &catalog, level);
        pytond_tondir::analysis::validate(&optimized_ir, &catalog)?;
        let prepared = Arc::new(pytond_sqldb::lower::prepare_program(
            &self.db,
            &optimized_ir,
            &catalog,
            backend.profile,
        )?);
        self.plan_cache.insert(
            plan_key(source, level, backend.profile, prepared.stats_version()),
            prepared.clone(),
        );
        Ok(prepared)
    }

    /// Executes a previously compiled function. While the database
    /// statistics have not moved (and the backend matches the compiled
    /// profile) this runs the carried prepared plan with no per-call
    /// compilation work; otherwise it transparently re-plans from the
    /// already-optimized IR — through the plan cache, so even a stale
    /// `Compiled` pays the re-plan once, not on every call.
    pub fn execute(&self, compiled: &Compiled, backend: &Backend) -> Result<Relation> {
        if compiled.prepared.profile() == backend.profile && compiled.prepared.is_current(&self.db)
        {
            return self
                .db
                .execute_prepared(&compiled.prepared, &backend.config());
        }
        let key = plan_key(
            &compiled.source,
            compiled.level,
            backend.profile,
            self.db.stats_version(),
        );
        if let Some(p) = self.plan_cache.lookup(&key) {
            return self.db.execute_prepared(&p, &backend.config());
        }
        let catalog = self.catalog.load();
        let prepared = Arc::new(pytond_sqldb::lower::prepare_program(
            &self.db,
            &compiled.optimized_ir,
            &catalog,
            backend.profile,
        )?);
        self.plan_cache.insert(
            plan_key(
                &compiled.source,
                compiled.level,
                backend.profile,
                prepared.stats_version(),
            ),
            prepared.clone(),
        );
        self.db.execute_prepared(&prepared, &backend.config())
    }

    /// Compile + execute in one call, through the prepared-plan cache:
    /// repeated runs of the same source execute the cached plan directly.
    pub fn run(&self, source: &str, backend: &Backend) -> Result<Relation> {
        self.run_at(source, backend, OptLevel::O4)
    }

    /// Compile at a level + execute (optimization ablations), through the
    /// prepared-plan cache.
    pub fn run_at(&self, source: &str, backend: &Backend, level: OptLevel) -> Result<Relation> {
        let prepared = self.prepare(source, backend, level)?;
        self.db.execute_prepared(&prepared, &backend.config())
    }

    /// EXPLAIN rendering of the (cached) prepared plan for a source.
    pub fn explain(&self, source: &str, backend: &Backend, level: OptLevel) -> Result<String> {
        Ok(self.prepare(source, backend, level)?.explain())
    }

    /// Registers a `@pytond` program as a standing materialized view: the
    /// source is compiled once (through the full translate → optimize →
    /// SQL pipeline), the result is materialized, and every subsequent
    /// [`Pytond::append`] refreshes it — incrementally where the plan
    /// shape allows, by traced full recompute otherwise. See
    /// [`Database::register_view_with`] and the `pytond_sqldb::mv` module
    /// docs for the delta rules and the consistency contract.
    pub fn register_view(&self, name: &str, source: &str, backend: &Backend) -> Result<()> {
        let compiled = self.compile(source, backend.dialect())?;
        self.db
            .register_view_with(name, &compiled.sql, &backend.config())
    }

    /// The current published state of a standing view registered with
    /// [`Pytond::register_view`]: the materialized result plus the snapshot
    /// version it is consistent with. Never torn; under `PYTOND_NO_IVM=1`
    /// it recomputes from scratch on every call (the differential oracle).
    pub fn view(&self, name: &str) -> Result<Arc<ViewState>> {
        self.db.view(name)
    }

    /// The `view:` trace header of a standing view: last refresh mode
    /// (`delta` vs `recompute`), rows propagated, refresh time, and the
    /// per-table maintenance matrix.
    pub fn view_trace(&self, name: &str) -> Result<String> {
        self.db.view_trace(name)
    }

    /// Number of prepared plans currently cached, summed across the lock
    /// shards. Bounded by [`Pytond::plan_cache_capacity`] — the cache-bound
    /// regression suite asserts on this.
    pub fn cached_plans(&self) -> usize {
        self.plan_cache.len()
    }

    /// Upper bound on [`Pytond::cached_plans`]: the per-shard FIFO cap
    /// times the shard count.
    pub fn plan_cache_capacity(&self) -> usize {
        SHARD_CAP * PLAN_CACHE_SHARDS
    }
}

/// Cache key for one (source, level, profile, stats version) combination.
fn plan_key(source: &str, level: OptLevel, profile: Profile, stats_version: u64) -> PlanKey {
    (source.to_string(), level, profile, stats_version)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_common::{Column, Value};

    fn instance() -> Pytond {
        let py = Pytond::new();
        py.register_table(
            "t",
            Relation::new(vec![
                ("k".into(), Column::from_strs(&["a", "b", "a", "c"])),
                ("v".into(), Column::from_i64(vec![1, 2, 3, 4])),
                ("w".into(), Column::from_f64(vec![0.5, 1.5, 2.5, 3.5])),
            ])
            .unwrap(),
            &[],
        );
        py
    }

    #[test]
    fn filter_project_end_to_end() {
        let py = instance();
        let out = py
            .run(
                "@pytond\ndef q(t):\n    big = t[t.v >= 2]\n    return big[['k', 'v']]\n",
                &Backend::duckdb_sim(1),
            )
            .unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.names(), vec!["k", "v"]);
    }

    #[test]
    fn groupby_end_to_end_all_backends() {
        let py = instance();
        let src = "@pytond\ndef q(t):\n    g = t.groupby(['k']).agg(total=('v', 'sum'), n=('v', 'count'))\n    return g.sort_values(by=['total'], ascending=False)\n";
        let reference = py.run(src, &Backend::duckdb_sim(1)).unwrap();
        assert_eq!(reference.num_rows(), 3);
        assert_eq!(reference.get(0, "total"), Some(Value::Int(4)));
        for backend in [
            Backend::hyper_sim(1),
            Backend::lingodb_sim(1),
            Backend::duckdb_sim(4),
            Backend::hyper_sim(4),
        ] {
            let out = py.run(src, &backend).unwrap();
            assert!(
                reference.approx_eq(&out, 1e-9),
                "{} diverged: {:?}",
                backend.name(),
                reference.diff(&out, 1e-9)
            );
        }
    }

    #[test]
    fn optimization_levels_agree_semantically() {
        let py = instance();
        let src = "@pytond\ndef q(t):\n    big = t[t.v > 1]\n    p = big[['k', 'w']]\n    g = p.groupby(['k']).agg(s=('w', 'sum'))\n    return g.sort_values(by=['k'])\n";
        let baseline = py
            .run_at(src, &Backend::duckdb_sim(1), OptLevel::O0)
            .unwrap();
        for level in OptLevel::all() {
            let out = py.run_at(src, &Backend::duckdb_sim(1), level).unwrap();
            assert!(
                baseline.approx_eq(&out, 1e-9),
                "{} diverged: {:?}",
                level.name(),
                baseline.diff(&out, 1e-9)
            );
        }
    }

    #[test]
    fn o4_produces_fewer_ctes_than_o0() {
        let py = instance();
        let src = "@pytond\ndef q(t):\n    a = t[t.v > 0]\n    b = a[['k', 'v']]\n    c = b[b.v < 100]\n    return c\n";
        let o0 = py.compile_at(src, Dialect::DuckDb, OptLevel::O0).unwrap();
        let o4 = py.compile_at(src, Dialect::DuckDb, OptLevel::O4).unwrap();
        assert!(
            o4.optimized_ir.rules.len() < o0.optimized_ir.rules.len(),
            "O0={} O4={}",
            o0.optimized_ir.rules.len(),
            o4.optimized_ir.rules.len()
        );
    }

    #[test]
    fn repeated_runs_hit_the_plan_cache() {
        let py = instance();
        let src = "@pytond\ndef q(t):\n    return t[t.v > 2]\n";
        let backend = Backend::duckdb_sim(1);
        let first = py.prepare(src, &backend, OptLevel::O4).unwrap();
        let second = py.prepare(src, &backend, OptLevel::O4).unwrap();
        // Same Arc ⇒ the second lookup did zero compilation or planning.
        assert!(Arc::ptr_eq(&first, &second));
        // Different level or profile ⇒ distinct cache entries.
        let o0 = py.prepare(src, &backend, OptLevel::O0).unwrap();
        assert!(!Arc::ptr_eq(&first, &o0));
        let hyper = py
            .prepare(src, &Backend::hyper_sim(1), OptLevel::O4)
            .unwrap();
        assert!(!Arc::ptr_eq(&first, &hyper));
        // And the cached plan still computes the right answer.
        let out = py.run(src, &backend).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn append_invalidates_cached_plans() {
        let py = instance();
        let src = "@pytond\ndef q(t):\n    return t[t.v > 2]\n";
        let backend = Backend::duckdb_sim(1);
        let before = py.prepare(src, &backend, OptLevel::O4).unwrap();
        py.append(
            "t",
            &Relation::new(vec![
                ("k".into(), Column::from_strs(&["d"])),
                ("v".into(), Column::from_i64(vec![9])),
                ("w".into(), Column::from_f64(vec![4.5])),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(!before.is_current(py.database()));
        let after = py.prepare(src, &backend, OptLevel::O4).unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "stale plan must be replaced");
        assert!(after.is_current(py.database()));
        let out = py.run(src, &backend).unwrap();
        assert_eq!(out.num_rows(), 3);
        // Catalog row count tracked the append.
        assert_eq!(py.catalog().table("t").unwrap().row_count, Some(5));
    }

    #[test]
    fn execute_reuses_prepared_plan_and_survives_staleness() {
        let py = instance();
        let src = "@pytond\ndef q(t):\n    return t[t.v >= 2]\n";
        let compiled = py.compile(src, Dialect::DuckDb).unwrap();
        let backend = Backend::duckdb_sim(1);
        let fresh = py.execute(&compiled, &backend).unwrap();
        assert_eq!(fresh.num_rows(), 3);
        // Mutate the data: the carried plan goes stale but execute re-plans
        // transparently and sees the new rows.
        py.append(
            "t",
            &Relation::new(vec![
                ("k".into(), Column::from_strs(&["e"])),
                ("v".into(), Column::from_i64(vec![7])),
                ("w".into(), Column::from_f64(vec![9.5])),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(!compiled.prepared.is_current(py.database()));
        let stale = py.execute(&compiled, &backend).unwrap();
        assert_eq!(stale.num_rows(), 4);
        // Cross-profile execution re-plans for the requested backend.
        let hyper = py.execute(&compiled, &Backend::hyper_sim(1)).unwrap();
        assert!(stale.approx_eq(&hyper, 1e-9));
    }

    #[test]
    fn facade_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pytond>();
        assert_send_sync::<Database>();
    }

    /// The cache-bound regression for the O(1)-amortized sharded eviction:
    /// feeding far more distinct sources than the capacity must (a) keep
    /// the total entry count at or under the cap, (b) keep recently
    /// inserted plans cached (FIFO evicts oldest-first, not wholesale
    /// clears), and (c) keep re-inserted keys correct.
    #[test]
    fn plan_cache_stays_bounded_under_many_sources() {
        let py = instance();
        let backend = Backend::duckdb_sim(1);
        let cap = py.plan_cache_capacity();
        let src = |i: usize| format!("@pytond\ndef q(t):\n    return t[t.v > {i}]\n");
        for i in 0..cap * 2 {
            py.prepare(&src(i), &backend, OptLevel::O4).unwrap();
        }
        assert!(
            py.cached_plans() <= cap,
            "cache exceeded its bound: {} > {cap}",
            py.cached_plans()
        );
        // The most recent insert is still cached (same Arc on re-lookup).
        let last = src(cap * 2 - 1);
        let a = py.prepare(&last, &backend, OptLevel::O4).unwrap();
        let b = py.prepare(&last, &backend, OptLevel::O4).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "fresh entry was evicted prematurely");
        // Re-inserting an existing key must not inflate the count or evict
        // the entry itself (the stale-FIFO-record path).
        let before = py.cached_plans();
        for _ in 0..8 {
            py.prepare(&last, &backend, OptLevel::O4).unwrap();
        }
        assert_eq!(py.cached_plans(), before);
        let c = py.prepare(&last, &backend, OptLevel::O4).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn compiled_sql_is_inspectable() {
        let py = instance();
        let c = py
            .compile(
                "@pytond\ndef q(t):\n    return t[t.v > 2]\n",
                Dialect::DuckDb,
            )
            .unwrap();
        assert!(c.sql.starts_with("WITH"), "{}", c.sql);
        assert!(c.ir_text().contains(":-"), "{}", c.ir_text());
    }
}
