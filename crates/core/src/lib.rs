//! PyTond: compile Pandas/NumPy Python source to optimized SQL and execute
//! it in-database.
//!
//! This crate wires the whole pipeline of the paper's Figure 1 together:
//!
//! ```text
//! @pytond source ──pyparse──► AST ──translate──► TondIR ──optimizer──► TondIR
//!                                                              │
//!                                             sqlgen ◄─────────┘
//!                                                │
//!                                  SQL text ──sqldb──► Relation
//! ```
//!
//! # Quick start
//!
//! ```
//! use pytond::{Pytond, Backend};
//! use pytond_common::{Column, Relation};
//!
//! let mut py = Pytond::new();
//! py.register_table(
//!     "sales",
//!     Relation::new(vec![
//!         ("region".into(), Column::from_strs(&["eu", "us", "eu"])),
//!         ("amount".into(), Column::from_f64(vec![10.0, 20.0, 5.0])),
//!     ])
//!     .unwrap(),
//!     &[],
//! );
//! let out = py
//!     .run(
//!         r#"
//! @pytond
//! def total_by_region(sales):
//!     big = sales[sales.amount > 6.0]
//!     return big.groupby(['region']).agg(total=('amount', 'sum'))
//! "#,
//!         &Backend::duckdb_sim(1),
//!     )
//!     .unwrap();
//! assert_eq!(out.num_rows(), 2);
//! ```

pub use pytond_optimizer::OptLevel;
pub use pytond_sqldb::{Database, EngineConfig, Profile};
pub use pytond_sqlgen::Dialect;

use pytond_common::{Relation, Result};
use pytond_tondir::{Catalog, Program, TableSchema};

/// A named backend: engine profile + thread count (the paper's
/// DuckDB/Hyper/LingoDB × 1–4 threads matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backend {
    /// Engine profile.
    pub profile: Profile,
    /// Worker threads.
    pub threads: usize,
}

impl Backend {
    /// DuckDB-like vectorized profile.
    pub fn duckdb_sim(threads: usize) -> Backend {
        Backend {
            profile: Profile::Vectorized,
            threads,
        }
    }

    /// Hyper-like fused profile.
    pub fn hyper_sim(threads: usize) -> Backend {
        Backend {
            profile: Profile::Fused,
            threads,
        }
    }

    /// LingoDB-like restricted profile.
    pub fn lingodb_sim(threads: usize) -> Backend {
        Backend {
            profile: Profile::Lingo,
            threads,
        }
    }

    /// The SQL dialect this backend's paper counterpart expects.
    pub fn dialect(&self) -> Dialect {
        match self.profile {
            Profile::Vectorized => Dialect::DuckDb,
            Profile::Fused => Dialect::Hyper,
            Profile::Lingo => Dialect::LingoDb,
        }
    }

    /// Engine configuration.
    pub fn config(&self) -> EngineConfig {
        EngineConfig::new(self.profile, self.threads)
    }

    /// Display name (e.g. `duckdb-sim/4t`).
    pub fn name(&self) -> String {
        format!("{}/{}t", self.profile.name(), self.threads)
    }
}

/// The result of compiling a `@pytond` function.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// TondIR straight out of translation (the "Grizzly-simulated" program).
    pub raw_ir: Program,
    /// TondIR after optimization.
    pub optimized_ir: Program,
    /// Generated SQL text.
    pub sql: String,
    /// The optimization level used.
    pub level: OptLevel,
    /// The dialect used.
    pub dialect: Dialect,
}

impl Compiled {
    /// Pretty-prints the optimized IR (paper notation).
    pub fn ir_text(&self) -> String {
        pytond_tondir::printer::print_program(&self.optimized_ir)
    }
}

/// The PyTond compiler + embedded database.
#[derive(Debug, Default)]
pub struct Pytond {
    db: Database,
    catalog: Catalog,
}

impl Pytond {
    /// An empty instance.
    pub fn new() -> Pytond {
        Pytond::default()
    }

    /// Registers a table, inferring its schema; `unique` lists single- or
    /// multi-column unique keys (the catalog constraints of Section III-A).
    pub fn register_table(&mut self, name: &str, rel: Relation, unique: &[&[&str]]) {
        let mut schema = TableSchema::new(name, rel.schema());
        for key in unique {
            schema = schema.with_unique(key);
        }
        schema = schema.with_rows(rel.num_rows() as u64);
        self.catalog.add(schema);
        self.db.register(name, rel);
    }

    /// The catalog (schemas + constraints).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The embedded database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Compiles the first `@pytond` function at the default level (O4).
    pub fn compile(&self, source: &str, dialect: Dialect) -> Result<Compiled> {
        self.compile_at(source, dialect, OptLevel::O4)
    }

    /// Compiles at an explicit optimization level (Figure 10's ablation).
    pub fn compile_at(&self, source: &str, dialect: Dialect, level: OptLevel) -> Result<Compiled> {
        let raw_ir = pytond_translate::translate_source(source, &self.catalog)?;
        pytond_tondir::analysis::validate(&raw_ir, &self.catalog)?;
        let optimized_ir = pytond_optimizer::optimize(raw_ir.clone(), &self.catalog, level);
        pytond_tondir::analysis::validate(&optimized_ir, &self.catalog)?;
        let sql = pytond_sqlgen::generate_sql(&optimized_ir, &self.catalog, dialect)?;
        Ok(Compiled {
            raw_ir,
            optimized_ir,
            sql,
            level,
            dialect,
        })
    }

    /// Executes previously compiled SQL.
    pub fn execute(&self, compiled: &Compiled, backend: &Backend) -> Result<Relation> {
        self.db.execute_sql(&compiled.sql, &backend.config())
    }

    /// Compile + execute in one call.
    pub fn run(&self, source: &str, backend: &Backend) -> Result<Relation> {
        let compiled = self.compile(source, backend.dialect())?;
        self.execute(&compiled, backend)
    }

    /// Compile at a level + execute (optimization ablations).
    pub fn run_at(&self, source: &str, backend: &Backend, level: OptLevel) -> Result<Relation> {
        let compiled = self.compile_at(source, backend.dialect(), level)?;
        self.execute(&compiled, backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pytond_common::{Column, Value};

    fn instance() -> Pytond {
        let mut py = Pytond::new();
        py.register_table(
            "t",
            Relation::new(vec![
                ("k".into(), Column::from_strs(&["a", "b", "a", "c"])),
                ("v".into(), Column::from_i64(vec![1, 2, 3, 4])),
                ("w".into(), Column::from_f64(vec![0.5, 1.5, 2.5, 3.5])),
            ])
            .unwrap(),
            &[],
        );
        py
    }

    #[test]
    fn filter_project_end_to_end() {
        let py = instance();
        let out = py
            .run(
                "@pytond\ndef q(t):\n    big = t[t.v >= 2]\n    return big[['k', 'v']]\n",
                &Backend::duckdb_sim(1),
            )
            .unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.names(), vec!["k", "v"]);
    }

    #[test]
    fn groupby_end_to_end_all_backends() {
        let py = instance();
        let src = "@pytond\ndef q(t):\n    g = t.groupby(['k']).agg(total=('v', 'sum'), n=('v', 'count'))\n    return g.sort_values(by=['total'], ascending=False)\n";
        let reference = py.run(src, &Backend::duckdb_sim(1)).unwrap();
        assert_eq!(reference.num_rows(), 3);
        assert_eq!(reference.get(0, "total"), Some(Value::Int(4)));
        for backend in [
            Backend::hyper_sim(1),
            Backend::lingodb_sim(1),
            Backend::duckdb_sim(4),
            Backend::hyper_sim(4),
        ] {
            let out = py.run(src, &backend).unwrap();
            assert!(
                reference.approx_eq(&out, 1e-9),
                "{} diverged: {:?}",
                backend.name(),
                reference.diff(&out, 1e-9)
            );
        }
    }

    #[test]
    fn optimization_levels_agree_semantically() {
        let py = instance();
        let src = "@pytond\ndef q(t):\n    big = t[t.v > 1]\n    p = big[['k', 'w']]\n    g = p.groupby(['k']).agg(s=('w', 'sum'))\n    return g.sort_values(by=['k'])\n";
        let baseline = py
            .run_at(src, &Backend::duckdb_sim(1), OptLevel::O0)
            .unwrap();
        for level in OptLevel::all() {
            let out = py.run_at(src, &Backend::duckdb_sim(1), level).unwrap();
            assert!(
                baseline.approx_eq(&out, 1e-9),
                "{} diverged: {:?}",
                level.name(),
                baseline.diff(&out, 1e-9)
            );
        }
    }

    #[test]
    fn o4_produces_fewer_ctes_than_o0() {
        let py = instance();
        let src = "@pytond\ndef q(t):\n    a = t[t.v > 0]\n    b = a[['k', 'v']]\n    c = b[b.v < 100]\n    return c\n";
        let o0 = py.compile_at(src, Dialect::DuckDb, OptLevel::O0).unwrap();
        let o4 = py.compile_at(src, Dialect::DuckDb, OptLevel::O4).unwrap();
        assert!(
            o4.optimized_ir.rules.len() < o0.optimized_ir.rules.len(),
            "O0={} O4={}",
            o0.optimized_ir.rules.len(),
            o4.optimized_ir.rules.len()
        );
    }

    #[test]
    fn compiled_sql_is_inspectable() {
        let py = instance();
        let c = py
            .compile(
                "@pytond\ndef q(t):\n    return t[t.v > 2]\n",
                Dialect::DuckDb,
            )
            .unwrap();
        assert!(c.sql.starts_with("WITH"), "{}", c.sql);
        assert!(c.ir_text().contains(":-"), "{}", c.ir_text());
    }
}
