//! Logical query plans.

use crate::ast::AggName;
use crate::expr::BExpr;
use crate::table::Schema;
use pytond_common::Value;

/// Join kinds at the plan level (includes semi/anti from IN-subqueries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JKind {
    /// Inner equi-join (+ optional residual).
    Inner,
    /// Left outer.
    Left,
    /// Right outer.
    Right,
    /// Full outer.
    Full,
    /// Cartesian product.
    Cross,
    /// Left semi (EXISTS / IN).
    Semi,
    /// Left anti (NOT EXISTS / NOT IN).
    Anti,
}

/// One bound aggregate computation.
#[derive(Debug, Clone, PartialEq)]
pub struct BAgg {
    /// Aggregate function.
    pub func: AggName,
    /// Argument (`None` = COUNT(*)).
    pub arg: Option<BExpr>,
    /// DISTINCT modifier.
    pub distinct: bool,
}

/// A logical plan node. Every node can report its output [`Schema`].
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Scan of a base table or materialized CTE.
    Scan {
        /// Table / CTE name.
        table: String,
        /// Output schema (possibly pruned).
        schema: Schema,
        /// Column positions kept from the stored table (`None` = all).
        projection: Option<Vec<usize>>,
        /// Pushed-down row predicate over the **stored** table's column
        /// indices (not the projected output). Zone-prunable conjuncts let
        /// the executor skip whole morsels before evaluating the rest.
        pred: Option<BExpr>,
    },
    /// Inline constant rows.
    Values {
        /// Output schema.
        schema: Schema,
        /// Row values.
        rows: Vec<Vec<Value>>,
    },
    /// Row filter.
    Filter {
        /// Input.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        pred: BExpr,
    },
    /// Expression projection.
    Project {
        /// Input.
        input: Box<LogicalPlan>,
        /// One expression per output column.
        exprs: Vec<BExpr>,
        /// Output schema.
        schema: Schema,
    },
    /// Join.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Kind.
        kind: JKind,
        /// Equi-join keys on the left schema.
        left_keys: Vec<BExpr>,
        /// Equi-join keys on the right schema.
        right_keys: Vec<BExpr>,
        /// Residual predicate over the concatenated schema.
        residual: Option<BExpr>,
        /// Output schema (left ++ right; left only for semi/anti).
        schema: Schema,
    },
    /// Hash aggregation (scalar aggregation when `group` is empty).
    Aggregate {
        /// Input.
        input: Box<LogicalPlan>,
        /// Group-key expressions over the input schema.
        group: Vec<BExpr>,
        /// Aggregates over the input schema.
        aggs: Vec<BAgg>,
        /// Output schema: group keys then aggregates.
        schema: Schema,
    },
    /// Sort.
    Sort {
        /// Input.
        input: Box<LogicalPlan>,
        /// `(key, ascending)` pairs over the input schema.
        keys: Vec<(BExpr, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input.
        input: Box<LogicalPlan>,
        /// Maximum rows.
        n: u64,
    },
    /// `row_number() OVER (ORDER BY ...)`: appends one Int column.
    Window {
        /// Input.
        input: Box<LogicalPlan>,
        /// Ordering keys (empty = natural order).
        order: Vec<(BExpr, bool)>,
        /// Output schema (input ++ row_number field).
        schema: Schema,
    },
    /// Duplicate elimination over all columns.
    Distinct {
        /// Input.
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Values { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::Window { schema, .. } => schema,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
        }
    }

    /// Single-line operator name (for EXPLAIN-style rendering).
    pub fn name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::Values { .. } => "Values",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Limit { .. } => "Limit",
            LogicalPlan::Window { .. } => "Window",
            LogicalPlan::Distinct { .. } => "Distinct",
        }
    }

    /// Children of this node.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => Vec::new(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Window { input, .. }
            | LogicalPlan::Distinct { input } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Indented multi-line plan rendering.
    pub fn explain(&self) -> String {
        fn rec(p: &LogicalPlan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            match p {
                LogicalPlan::Scan {
                    table,
                    schema,
                    pred,
                    ..
                } => match pred {
                    Some(p) => {
                        out.push_str(&format!("Scan {table} [{} cols] where {p}\n", schema.len()));
                    }
                    None => out.push_str(&format!("Scan {table} [{} cols]\n", schema.len())),
                },
                LogicalPlan::Join {
                    kind,
                    left_keys,
                    right_keys,
                    ..
                } => {
                    let keys: Vec<String> = left_keys
                        .iter()
                        .zip(right_keys)
                        .map(|(l, r)| format!("{l}={r}"))
                        .collect();
                    if keys.is_empty() {
                        out.push_str(&format!("Join {kind:?}\n"));
                    } else {
                        out.push_str(&format!("Join {kind:?} on [{}]\n", keys.join(", ")));
                    }
                }
                LogicalPlan::Aggregate { group, aggs, .. } => {
                    out.push_str(&format!(
                        "Aggregate [{} groups, {} aggs]\n",
                        group.len(),
                        aggs.len()
                    ));
                }
                other => out.push_str(&format!("{}\n", other.name())),
            }
            for c in p.children() {
                rec(c, depth + 1, out);
            }
        }
        let mut s = String::new();
        rec(self, 0, &mut s);
        s
    }

    /// Table names of every `Scan` in depth-first (left-to-right) order —
    /// the executor's join order for left-deep trees. Tests use this to
    /// assert cost-based join-order decisions.
    pub fn scan_order(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn rec(p: &LogicalPlan, out: &mut Vec<String>) {
            if let LogicalPlan::Scan { table, .. } = p {
                out.push(table.clone());
            }
            for c in p.children() {
                rec(c, out);
            }
        }
        rec(self, &mut out);
        out
    }

    /// Number of plan nodes (used by optimizer tests).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }
}

/// A fully bound query: CTEs (materialized in order) plus the root plan.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// `(name, plan)` pairs, to materialize in order.
    pub ctes: Vec<(String, LogicalPlan)>,
    /// Root plan.
    pub root: LogicalPlan,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Field, Schema};
    use pytond_common::DType;

    #[test]
    fn schema_passthrough_nodes() {
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            schema: Schema::new(vec![Field::new("a", DType::Int)]),
            projection: None,
            pred: None,
        };
        let filter = LogicalPlan::Filter {
            input: Box::new(scan),
            pred: BExpr::Lit(pytond_common::Value::Bool(true)),
        };
        assert_eq!(filter.schema().len(), 1);
        assert_eq!(filter.node_count(), 2);
        assert!(filter.explain().contains("Scan t"));
    }
}
