//! Bound (index-resolved) expressions and their vectorized evaluation.
//!
//! Evaluation produces a whole output [`Column`] per call, optionally
//! restricted to a selection vector — the late-materialization hook the fused
//! profile uses to skip intermediate copies.
//!
//! Null semantics: arithmetic propagates NULL through validity masks;
//! comparisons collapse NULL to `false` (predicate semantics — identical to
//! the Pandas baseline, where NaN comparisons yield `False`, which keeps the
//! two differential-testing paths consistent).

use crate::ast::BinOp;
use pytond_common::{date, Column, DType, Error, Result, Value};

/// A scalar function recognized by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SFunc {
    /// Absolute value.
    Abs,
    /// `ROUND(x, digits)`.
    Round,
    /// Year of a date.
    Year,
    /// Month of a date.
    Month,
    /// Day-of-month of a date.
    Day,
    /// `SUBSTRING(s, start1, len)`.
    Substring,
    /// String length.
    Length,
    /// Upper-case.
    Upper,
    /// Lower-case.
    Lower,
    /// First non-null argument.
    Coalesce,
    /// `ADD_MONTHS(d, n)` (INTERVAL folding).
    AddMonths,
    /// `ADD_YEARS(d, n)`.
    AddYears,
    /// `ADD_DAYS(d, n)`.
    AddDays,
    /// Floor.
    Floor,
    /// Ceiling.
    Ceil,
    /// Square root.
    Sqrt,
    /// Power.
    Power,
    /// `STRPOS(s, sub)` (1-based, 0 when absent).
    StrPos,
}

impl SFunc {
    /// Parses the upper-cased SQL name.
    pub fn parse(name: &str) -> Option<SFunc> {
        Some(match name {
            "ABS" => SFunc::Abs,
            "ROUND" => SFunc::Round,
            "YEAR" => SFunc::Year,
            "MONTH" => SFunc::Month,
            "DAY" => SFunc::Day,
            "SUBSTRING" | "SUBSTR" => SFunc::Substring,
            "LENGTH" | "LEN" | "CHAR_LENGTH" => SFunc::Length,
            "UPPER" => SFunc::Upper,
            "LOWER" => SFunc::Lower,
            "COALESCE" => SFunc::Coalesce,
            "ADD_MONTHS" => SFunc::AddMonths,
            "ADD_YEARS" => SFunc::AddYears,
            "ADD_DAYS" => SFunc::AddDays,
            "FLOOR" => SFunc::Floor,
            "CEIL" | "CEILING" => SFunc::Ceil,
            "SQRT" => SFunc::Sqrt,
            "POWER" | "POW" => SFunc::Power,
            "STRPOS" | "POSITION" | "INSTR" => SFunc::StrPos,
            _ => return None,
        })
    }
}

/// A compiled LIKE pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct LikePattern {
    segments: Vec<LikeSeg>,
}

#[derive(Debug, Clone, PartialEq)]
enum LikeSeg {
    /// Literal text.
    Lit(String),
    /// `%` — any run of characters.
    Any,
    /// `_` — exactly one character.
    One,
}

impl LikePattern {
    /// Compiles a SQL LIKE pattern.
    pub fn compile(pat: &str) -> LikePattern {
        let mut segments = Vec::new();
        let mut lit = String::new();
        for c in pat.chars() {
            match c {
                '%' => {
                    if !lit.is_empty() {
                        segments.push(LikeSeg::Lit(std::mem::take(&mut lit)));
                    }
                    if segments.last() != Some(&LikeSeg::Any) {
                        segments.push(LikeSeg::Any);
                    }
                }
                '_' => {
                    if !lit.is_empty() {
                        segments.push(LikeSeg::Lit(std::mem::take(&mut lit)));
                    }
                    segments.push(LikeSeg::One);
                }
                c => lit.push(c),
            }
        }
        if !lit.is_empty() {
            segments.push(LikeSeg::Lit(lit));
        }
        LikePattern { segments }
    }

    /// Tests a string against the pattern.
    pub fn matches(&self, s: &str) -> bool {
        fn rec(segs: &[LikeSeg], s: &str) -> bool {
            match segs.first() {
                None => s.is_empty(),
                Some(LikeSeg::Lit(l)) => s
                    .strip_prefix(l.as_str())
                    .is_some_and(|rest| rec(&segs[1..], rest)),
                Some(LikeSeg::One) => {
                    let mut chars = s.chars();
                    chars.next().is_some() && rec(&segs[1..], chars.as_str())
                }
                Some(LikeSeg::Any) => {
                    if segs.len() == 1 {
                        return true;
                    }
                    let mut rest = s;
                    loop {
                        if rec(&segs[1..], rest) {
                            return true;
                        }
                        let mut chars = rest.chars();
                        if chars.next().is_none() {
                            return false;
                        }
                        rest = chars.as_str();
                    }
                }
            }
        }
        rec(&self.segments, s)
    }
}

/// A bound expression: column references are input-batch indices.
#[derive(Debug, Clone, PartialEq)]
pub enum BExpr {
    /// Input column by position.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Box<BExpr>,
        /// Right operand.
        r: Box<BExpr>,
    },
    /// Logical NOT.
    Not(Box<BExpr>),
    /// Arithmetic negation.
    Neg(Box<BExpr>),
    /// NULL test.
    IsNull {
        /// Tested expression.
        e: Box<BExpr>,
        /// `true` for IS NOT NULL.
        negated: bool,
    },
    /// LIKE with a pre-compiled pattern.
    Like {
        /// Tested expression.
        e: Box<BExpr>,
        /// Compiled pattern.
        pattern: LikePattern,
        /// `true` for NOT LIKE.
        negated: bool,
    },
    /// IN over a literal list.
    InList {
        /// Tested expression.
        e: Box<BExpr>,
        /// Candidates.
        list: Vec<Value>,
        /// `true` for NOT IN.
        negated: bool,
    },
    /// CASE.
    Case {
        /// `(condition, value)` arms.
        arms: Vec<(BExpr, BExpr)>,
        /// ELSE value.
        else_value: Option<Box<BExpr>>,
    },
    /// Scalar function.
    Func {
        /// Function.
        f: SFunc,
        /// Arguments.
        args: Vec<BExpr>,
    },
    /// Type cast.
    Cast {
        /// Source.
        e: Box<BExpr>,
        /// Target type.
        to: DType,
    },
}

impl std::fmt::Display for BExpr {
    /// Compact SQL-ish rendering for EXPLAIN output; input columns print as
    /// `#index` (names are not known at this level).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BExpr::Col(i) => write!(f, "#{i}"),
            BExpr::Lit(v) => write!(f, "{v:?}"),
            BExpr::Bin { op, l, r } => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                    BinOp::Eq => "=",
                    BinOp::Ne => "<>",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                    BinOp::Concat => "||",
                };
                write!(f, "({l} {sym} {r})")
            }
            BExpr::Not(e) => write!(f, "NOT {e}"),
            BExpr::Neg(e) => write!(f, "-{e}"),
            BExpr::IsNull { e, negated } => {
                write!(f, "{e} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            BExpr::Like { e, negated, .. } => {
                write!(f, "{e} {}LIKE <pat>", if *negated { "NOT " } else { "" })
            }
            BExpr::InList { e, list, negated } => {
                write!(
                    f,
                    "{e} {}IN ({} values)",
                    if *negated { "NOT " } else { "" },
                    list.len()
                )
            }
            BExpr::Case { arms, .. } => write!(f, "CASE [{} arms]", arms.len()),
            BExpr::Func { f: func, args } => write!(f, "{func:?}({} args)", args.len()),
            BExpr::Cast { e, to } => write!(f, "CAST({e} AS {to})"),
        }
    }
}

impl BExpr {
    /// Collects the input column indices the expression touches.
    pub fn columns_used(&self, out: &mut Vec<usize>) {
        match self {
            BExpr::Col(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            BExpr::Lit(_) => {}
            BExpr::Bin { l, r, .. } => {
                l.columns_used(out);
                r.columns_used(out);
            }
            BExpr::Not(e) | BExpr::Neg(e) => e.columns_used(out),
            BExpr::IsNull { e, .. } | BExpr::Like { e, .. } | BExpr::InList { e, .. } => {
                e.columns_used(out)
            }
            BExpr::Case { arms, else_value } => {
                for (c, v) in arms {
                    c.columns_used(out);
                    v.columns_used(out);
                }
                if let Some(e) = else_value {
                    e.columns_used(out);
                }
            }
            BExpr::Func { args, .. } => args.iter().for_each(|a| a.columns_used(out)),
            BExpr::Cast { e, .. } => e.columns_used(out),
        }
    }

    /// Rewrites column indices through `map` (for pushdown across projections).
    pub fn remap_columns(&mut self, map: &impl Fn(usize) -> usize) {
        match self {
            BExpr::Col(i) => *i = map(*i),
            BExpr::Lit(_) => {}
            BExpr::Bin { l, r, .. } => {
                l.remap_columns(map);
                r.remap_columns(map);
            }
            BExpr::Not(e) | BExpr::Neg(e) => e.remap_columns(map),
            BExpr::IsNull { e, .. } | BExpr::Like { e, .. } | BExpr::InList { e, .. } => {
                e.remap_columns(map)
            }
            BExpr::Case { arms, else_value } => {
                for (c, v) in arms {
                    c.remap_columns(map);
                    v.remap_columns(map);
                }
                if let Some(e) = else_value {
                    e.remap_columns(map);
                }
            }
            BExpr::Func { args, .. } => args.iter_mut().for_each(|a| a.remap_columns(map)),
            BExpr::Cast { e, .. } => e.remap_columns(map),
        }
    }

    /// Static result type given input column types.
    pub fn dtype(&self, input: &[DType]) -> DType {
        match self {
            BExpr::Col(i) => input.get(*i).copied().unwrap_or(DType::Float),
            BExpr::Lit(v) => v.dtype().unwrap_or(DType::Float),
            BExpr::Bin { op, l, r } => match op {
                BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or => DType::Bool,
                BinOp::Concat => DType::Str,
                BinOp::Div => DType::Float,
                _ => {
                    let lt = l.dtype(input);
                    let rt = r.dtype(input);
                    match (lt, rt) {
                        (DType::Int, DType::Int) => DType::Int,
                        (DType::Date, DType::Int) | (DType::Int, DType::Date) => DType::Date,
                        (DType::Date, DType::Date) => DType::Int,
                        _ => DType::Float,
                    }
                }
            },
            BExpr::Not(_) | BExpr::IsNull { .. } | BExpr::Like { .. } | BExpr::InList { .. } => {
                DType::Bool
            }
            BExpr::Neg(e) => e.dtype(input),
            BExpr::Case { arms, else_value } => {
                // Prefer a non-null-literal arm's type.
                for (_, v) in arms {
                    if !matches!(v, BExpr::Lit(Value::Null)) {
                        return v.dtype(input);
                    }
                }
                else_value
                    .as_ref()
                    .map(|e| e.dtype(input))
                    .unwrap_or(DType::Float)
            }
            BExpr::Func { f, args } => match f {
                SFunc::Year | SFunc::Month | SFunc::Day | SFunc::Length | SFunc::StrPos => {
                    DType::Int
                }
                SFunc::Substring | SFunc::Upper | SFunc::Lower => DType::Str,
                SFunc::AddMonths | SFunc::AddYears | SFunc::AddDays => DType::Date,
                SFunc::Coalesce => args.first().map(|a| a.dtype(input)).unwrap_or(DType::Float),
                SFunc::Abs
                | SFunc::Round
                | SFunc::Floor
                | SFunc::Ceil
                | SFunc::Sqrt
                | SFunc::Power => match args.first().map(|a| a.dtype(input)) {
                    Some(DType::Int) if matches!(f, SFunc::Abs) => DType::Int,
                    _ => DType::Float,
                },
            },
            BExpr::Cast { to, .. } => *to,
        }
    }

    /// Evaluates over `batch`, optionally restricted to `sel` row indices.
    /// The output column has `sel.len()` rows when `sel` is given.
    pub fn eval(&self, batch: &crate::table::Batch, sel: Option<&[usize]>) -> Result<Column> {
        match sel {
            Some(s) => self.eval_rows(batch, RowsRef::Sel(s)),
            None => self.eval_rows(batch, RowsRef::All),
        }
    }

    /// Evaluates over the contiguous row range `[start, end)` of `batch`.
    ///
    /// Semantically identical to [`BExpr::eval`] with the selection
    /// `start..end`, but column leaves slice their subrange (a memcpy)
    /// instead of gathering through a per-row index vector — the kernel
    /// entry point the fused pipeline driver uses for zone-aligned scan
    /// morsels. `end` must not exceed the batch's row count.
    pub fn eval_range(
        &self,
        batch: &crate::table::Batch,
        start: usize,
        end: usize,
    ) -> Result<Column> {
        self.eval_rows(batch, RowsRef::Range(start, end))
    }

    fn eval_rows(&self, batch: &crate::table::Batch, rows: RowsRef<'_>) -> Result<Column> {
        let n = match rows {
            RowsRef::All => batch.num_rows(),
            RowsRef::Sel(s) => s.len(),
            RowsRef::Range(start, end) => end - start,
        };
        match self {
            BExpr::Col(i) => {
                let col = batch
                    .cols
                    .get(*i)
                    .ok_or_else(|| Error::Exec(format!("column index {i} out of range")))?;
                Ok(match rows {
                    RowsRef::All => (**col).clone(),
                    RowsRef::Sel(s) => col.gather(s),
                    RowsRef::Range(start, end) => col.slice(start, end),
                })
            }
            BExpr::Lit(v) => Ok(lit_column(v, n)),
            BExpr::Bin { op, l, r } => {
                // Code-space fast path: comparing a dictionary-encoded string
                // column against a string literal evaluates the predicate
                // once per dictionary entry and maps rows through the
                // resulting table — no per-row byte comparison and no
                // materialized literal column. (An equality literal missing
                // from the dictionary yields an all-false table.)
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                ) {
                    let lit_side = match (l.as_ref(), r.as_ref()) {
                        (e, BExpr::Lit(Value::Str(s))) => Some((e, s, false)),
                        (BExpr::Lit(Value::Str(s)), e) => Some((e, s, true)),
                        _ => None,
                    };
                    if let Some((e, s, flipped)) = lit_side {
                        let c = e.eval_rows(batch, rows)?;
                        if let Some((codes, dict, valid)) = c.dict_parts() {
                            return Ok(dict_cmp_lit(*op, codes, dict, valid, s, flipped));
                        }
                        let litc = lit_column(&Value::Str(s.clone()), c.len());
                        return if flipped {
                            eval_bin(*op, &litc, &c)
                        } else {
                            eval_bin(*op, &c, &litc)
                        };
                    }
                }
                let lc = l.eval_rows(batch, rows)?;
                let rc = r.eval_rows(batch, rows)?;
                eval_bin(*op, &lc, &rc)
            }
            BExpr::Not(e) => {
                let c = e.eval_rows(batch, rows)?;
                match c {
                    Column::Bool(d, _) => Ok(Column::from_bool(d.iter().map(|b| !b).collect())),
                    _ => Err(Error::Exec("NOT requires a boolean".into())),
                }
            }
            BExpr::Neg(e) => {
                let c = e.eval_rows(batch, rows)?;
                match c {
                    Column::Int(d, v) => Ok(Column::Int(d.iter().map(|x| -x).collect(), v)),
                    Column::Float(d, v) => Ok(Column::Float(d.iter().map(|x| -x).collect(), v)),
                    _ => Err(Error::Exec("negation requires a numeric".into())),
                }
            }
            BExpr::IsNull { e, negated } => {
                let c = e.eval_rows(batch, rows)?;
                let out: Vec<bool> = (0..c.len()).map(|i| c.is_valid(i) == *negated).collect();
                Ok(Column::from_bool(out))
            }
            BExpr::Like {
                e,
                pattern,
                negated,
            } => {
                let c = e.eval_rows(batch, rows)?;
                match &c {
                    Column::Str(d, valid) => {
                        let out: Vec<bool> = d
                            .iter()
                            .enumerate()
                            .map(|(i, s)| {
                                valid.as_ref().map_or(true, |v| v[i])
                                    && pattern.matches(s) != *negated
                            })
                            .collect();
                        Ok(Column::from_bool(out))
                    }
                    Column::DictStr { codes, dict, valid } => {
                        // Match once per dictionary entry, then map codes.
                        let table: Vec<bool> = dict
                            .strs()
                            .iter()
                            .map(|s| pattern.matches(s) != *negated)
                            .collect();
                        let out: Vec<bool> = codes
                            .iter()
                            .enumerate()
                            .map(|(i, &cd)| {
                                valid.as_ref().map_or(true, |v| v[i]) && table[cd as usize]
                            })
                            .collect();
                        Ok(Column::from_bool(out))
                    }
                    _ => Err(Error::Exec("LIKE requires strings".into())),
                }
            }
            BExpr::InList { e, list, negated } => {
                let c = e.eval_rows(batch, rows)?;
                Ok(Column::from_bool(eval_in_list(&c, list, *negated)))
            }
            BExpr::Case { arms, else_value } => {
                let conds: Vec<Column> = arms
                    .iter()
                    .map(|(c, _)| c.eval_rows(batch, rows))
                    .collect::<Result<_>>()?;
                let vals: Vec<Column> = arms
                    .iter()
                    .map(|(_, v)| v.eval_rows(batch, rows))
                    .collect::<Result<_>>()?;
                let els = else_value
                    .as_ref()
                    .map(|e| e.eval_rows(batch, rows))
                    .transpose()?;
                // Output type from the first branch value (ELSE included).
                let dtype = vals
                    .iter()
                    .chain(els.iter())
                    .map(|c| c.dtype())
                    .next()
                    .unwrap_or(DType::Float);
                let mut out = Column::with_capacity(dtype, n);
                'rows: for i in 0..n {
                    for (c, v) in conds.iter().zip(&vals) {
                        if matches!(c.get(i), Value::Bool(true)) {
                            out.push(coerce(v.get(i), dtype)?)?;
                            continue 'rows;
                        }
                    }
                    match &els {
                        Some(e) => out.push(coerce(e.get(i), dtype)?)?,
                        None => out.push_null(),
                    }
                }
                Ok(out)
            }
            BExpr::Func { f, args } => {
                let cols: Vec<Column> = args
                    .iter()
                    .map(|a| a.eval_rows(batch, rows))
                    .collect::<Result<_>>()?;
                eval_func(*f, &cols, n)
            }
            BExpr::Cast { e, to } => {
                let c = e.eval_rows(batch, rows)?;
                c.cast(*to)
            }
        }
    }

    /// Evaluates a predicate to a plain `Vec<bool>`.
    pub fn eval_mask(
        &self,
        batch: &crate::table::Batch,
        sel: Option<&[usize]>,
    ) -> Result<Vec<bool>> {
        match self.eval(batch, sel)? {
            Column::Bool(d, _) => Ok(d),
            other => Err(Error::Exec(format!(
                "predicate evaluated to {} not bool",
                other.dtype()
            ))),
        }
    }

    /// [`BExpr::eval_mask`] over the contiguous row range `[start, end)`
    /// — the range-sliced counterpart (see [`BExpr::eval_range`]).
    pub fn eval_mask_range(
        &self,
        batch: &crate::table::Batch,
        start: usize,
        end: usize,
    ) -> Result<Vec<bool>> {
        match self.eval_range(batch, start, end)? {
            Column::Bool(d, _) => Ok(d),
            other => Err(Error::Exec(format!(
                "predicate evaluated to {} not bool",
                other.dtype()
            ))),
        }
    }
}

/// Internal row addressing for the shared kernel walk: the classic optional
/// selection vector, or a contiguous range whose column leaves slice
/// instead of gathering.
#[derive(Clone, Copy)]
enum RowsRef<'s> {
    /// Every row of the batch.
    All,
    /// Explicit row indices.
    Sel(&'s [usize]),
    /// The contiguous range `[start, end)`.
    Range(usize, usize),
}

fn coerce(v: Value, to: DType) -> Result<Value> {
    Ok(match (&v, to) {
        (Value::Int(i), DType::Float) => Value::Float(*i as f64),
        (Value::Float(f), DType::Int) => Value::Int(*f as i64),
        _ => v,
    })
}

/// Materializes a literal as a constant column without per-row dispatch.
fn lit_column(v: &Value, n: usize) -> Column {
    match v {
        Value::Int(x) => Column::Int(vec![*x; n], None),
        Value::Float(x) => Column::Float(vec![*x; n], None),
        Value::Bool(x) => Column::Bool(vec![*x; n], None),
        Value::Str(s) => Column::Str(vec![s.clone(); n], None),
        Value::Date(d) => Column::Date(vec![*d; n], None),
        Value::Null => {
            if n == 0 {
                Column::Float(Vec::new(), None)
            } else {
                Column::Float(vec![0.0; n], Some(vec![false; n]))
            }
        }
    }
}

/// Compares a dictionary-encoded string column against one string literal
/// entirely in code space: the ordering predicate runs once per dictionary
/// entry (not per row), then rows map through the bool table. `flipped`
/// marks a literal on the left (`lit op col`). NULL rows collapse to `false`
/// (predicate semantics) and never index the table.
fn dict_cmp_lit(
    op: BinOp,
    codes: &[u32],
    dict: &pytond_common::Dictionary,
    valid: Option<&[bool]>,
    lit: &str,
    flipped: bool,
) -> Column {
    use std::cmp::Ordering;
    let want = |o: Ordering| -> bool {
        match op {
            BinOp::Eq => o == Ordering::Equal,
            BinOp::Ne => o != Ordering::Equal,
            BinOp::Lt => o == Ordering::Less,
            BinOp::Le => o != Ordering::Greater,
            BinOp::Gt => o == Ordering::Greater,
            BinOp::Ge => o != Ordering::Less,
            _ => unreachable!("caller passes comparison operators only"),
        }
    };
    let table: Vec<bool> = dict
        .strs()
        .iter()
        .map(|s| {
            want(if flipped {
                lit.cmp(s.as_str())
            } else {
                s.as_str().cmp(lit)
            })
        })
        .collect();
    let out: Vec<bool> = codes
        .iter()
        .enumerate()
        .map(|(i, &c)| valid.map_or(true, |v| v[i]) && table[c as usize])
        .collect();
    Column::from_bool(out)
}

/// Vectorized binary kernels.
///
/// Dispatches **once** per column pair to a monomorphic loop over raw typed
/// slices (see [`Column::as_i64_slice`] and friends); only genuinely mixed
/// combinations (e.g. date vs string) fall back to the row-at-a-time
/// [`mod@reference`] semantics. Null handling: arithmetic merges validity masks,
/// comparisons collapse NULL to `false`.
pub fn eval_bin(op: BinOp, l: &Column, r: &Column) -> Result<Column> {
    use BinOp::*;
    let n = l.len();
    if r.len() != n {
        return Err(Error::Exec("binary operand length mismatch".into()));
    }
    match op {
        And | Or => match (l, r) {
            (Column::Bool(a, _), Column::Bool(b, _)) => {
                let out = if op == And {
                    a.iter().zip(b).map(|(&x, &y)| x && y).collect()
                } else {
                    a.iter().zip(b).map(|(&x, &y)| x || y).collect()
                };
                Ok(Column::from_bool(out))
            }
            _ => Err(Error::Exec("AND/OR require booleans".into())),
        },
        Eq | Ne | Lt | Le | Gt | Ge => eval_cmp(op, l, r),
        Concat => eval_concat(l, r, n),
        Add | Sub | Mul | Div | Mod => eval_arith(op, l, r),
    }
}

/// String concatenation: a typed pass for string-string inputs, a
/// scratch-buffer `Display` pass (no `format!` allocation churn) otherwise.
fn eval_concat(l: &Column, r: &Column, n: usize) -> Result<Column> {
    // Concatenation genuinely needs bytes: decode dict operands up front so
    // both sides ride the typed string-string pass below.
    if matches!(l, Column::DictStr { .. }) || matches!(r, Column::DictStr { .. }) {
        return eval_concat(&l.decode_str(), &r.decode_str(), n);
    }
    if let (Column::Str(a, av), Column::Str(b, bv)) = (l, r) {
        let valid = merge_validity(av, bv);
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            if valid.as_ref().map_or(true, |v| v[i]) {
                let mut s = String::with_capacity(a[i].len() + b[i].len());
                s.push_str(&a[i]);
                s.push_str(&b[i]);
                data.push(s);
            } else {
                data.push(String::new());
            }
        }
        return Ok(Column::Str(data, valid));
    }
    // Mixed operands format through Display into a reused scratch buffer.
    use std::fmt::Write;
    let valid = merge_validity(&validity_of(l), &validity_of(r));
    let mut data = Vec::with_capacity(n);
    let mut scratch = String::new();
    for i in 0..n {
        if valid.as_ref().map_or(true, |v| v[i]) {
            scratch.clear();
            write!(scratch, "{}{}", l.get(i), r.get(i)).expect("write to String");
            data.push(scratch.clone());
        } else {
            data.push(String::new());
        }
    }
    Ok(Column::Str(data, valid))
}

fn eval_arith(op: BinOp, l: &Column, r: &Column) -> Result<Column> {
    use BinOp::*;
    use Column::{Date, Float, Int};

    /// One monomorphic float loop per operator, with per-side converters.
    macro_rules! fzip {
        ($a:expr, $av:expr, $b:expr, $bv:expr, $ca:expr, $cb:expr) => {{
            let valid = merge_validity($av, $bv);
            let data: Vec<f64> = match op {
                Add => $a.iter().zip($b).map(|(&x, &y)| $ca(x) + $cb(y)).collect(),
                Sub => $a.iter().zip($b).map(|(&x, &y)| $ca(x) - $cb(y)).collect(),
                Mul => $a.iter().zip($b).map(|(&x, &y)| $ca(x) * $cb(y)).collect(),
                Div => $a.iter().zip($b).map(|(&x, &y)| $ca(x) / $cb(y)).collect(),
                _ => $a.iter().zip($b).map(|(&x, &y)| $ca(x) % $cb(y)).collect(),
            };
            Ok(Column::Float(data, valid))
        }};
    }
    let id = |x: f64| x;
    let i2f = |x: i64| x as f64;

    match (l, r) {
        // Int ∘ Int stays Int for +,-,*,%; / divides as floats.
        (Int(a, av), Int(b, bv)) => match op {
            Add => Ok(Int(
                a.iter().zip(b).map(|(&x, &y)| x.wrapping_add(y)).collect(),
                merge_validity(av, bv),
            )),
            Sub => Ok(Int(
                a.iter().zip(b).map(|(&x, &y)| x.wrapping_sub(y)).collect(),
                merge_validity(av, bv),
            )),
            Mul => Ok(Int(
                a.iter().zip(b).map(|(&x, &y)| x.wrapping_mul(y)).collect(),
                merge_validity(av, bv),
            )),
            Mod => Ok(Int(
                a.iter()
                    .zip(b)
                    .map(|(&x, &y)| if y == 0 { 0 } else { x % y })
                    .collect(),
                merge_validity(av, bv),
            )),
            _ => fzip!(a, av, b, bv, i2f, i2f),
        },
        // Date ± Int days.
        (Date(a, av), Int(b, bv)) if matches!(op, Add | Sub) => {
            let data: Vec<i32> = if op == Add {
                a.iter().zip(b).map(|(&x, &y)| x + y as i32).collect()
            } else {
                a.iter().zip(b).map(|(&x, &y)| x - y as i32).collect()
            };
            Ok(Date(data, merge_validity(av, bv)))
        }
        // Date - Date → days.
        (Date(a, av), Date(b, bv)) if op == Sub => Ok(Int(
            a.iter().zip(b).map(|(&x, &y)| i64::from(x - y)).collect(),
            merge_validity(av, bv),
        )),
        (Float(a, av), Float(b, bv)) => fzip!(a, av, b, bv, id, id),
        (Int(a, av), Float(b, bv)) => fzip!(a, av, b, bv, i2f, id),
        (Float(a, av), Int(b, bv)) => fzip!(a, av, b, bv, id, i2f),
        // Anything else (bool arithmetic, date in float math) widens to f64.
        _ => {
            let af = to_f64_vec(l)?;
            let bf = to_f64_vec(r)?;
            fzip!(af, &validity_of(l), &bf, &validity_of(r), id, id)
        }
    }
}

fn eval_cmp(op: BinOp, l: &Column, r: &Column) -> Result<Column> {
    use BinOp::*;
    use Column::{Bool, Date, Float, Int, Str};
    let n = l.len();
    let want = |o: std::cmp::Ordering| -> bool {
        match op {
            Eq => o == std::cmp::Ordering::Equal,
            Ne => o != std::cmp::Ordering::Equal,
            Lt => o == std::cmp::Ordering::Less,
            Le => o != std::cmp::Ordering::Greater,
            Gt => o == std::cmp::Ordering::Greater,
            Ge => o != std::cmp::Ordering::Less,
            _ => unreachable!(),
        }
    };

    /// One monomorphic comparison loop per type pair; NULL collapses to
    /// `false` (predicate semantics), incomparable values too.
    macro_rules! czip {
        ($a:expr, $av:expr, $b:expr, $bv:expr, $cmp:expr) => {{
            let out: Vec<bool> = match ($av.as_deref(), $bv.as_deref()) {
                (None, None) => $a
                    .iter()
                    .zip($b.iter())
                    .map(|(x, y)| $cmp(x, y).map(&want).unwrap_or(false))
                    .collect(),
                (av, bv) => $a
                    .iter()
                    .zip($b.iter())
                    .enumerate()
                    .map(|(i, (x, y))| {
                        av.map_or(true, |v| v[i])
                            && bv.map_or(true, |v| v[i])
                            && $cmp(x, y).map(&want).unwrap_or(false)
                    })
                    .collect(),
            };
            Ok(Column::from_bool(out))
        }};
    }

    match (l, r) {
        (Int(a, av), Int(b, bv)) => czip!(a, av, b, bv, |x: &i64, y: &i64| Some(x.cmp(y))),
        (Float(a, av), Float(b, bv)) => {
            czip!(a, av, b, bv, |x: &f64, y: &f64| x.partial_cmp(y))
        }
        (Int(a, av), Float(b, bv)) => {
            czip!(a, av, b, bv, |x: &i64, y: &f64| (*x as f64).partial_cmp(y))
        }
        (Float(a, av), Int(b, bv)) => {
            czip!(a, av, b, bv, |x: &f64, y: &i64| x.partial_cmp(&(*y as f64)))
        }
        (Date(a, av), Date(b, bv)) => czip!(a, av, b, bv, |x: &i32, y: &i32| Some(x.cmp(y))),
        (Int(a, av), Date(b, bv)) => {
            czip!(a, av, b, bv, |x: &i64, y: &i32| Some(x.cmp(&i64::from(*y))))
        }
        (Date(a, av), Int(b, bv)) => {
            czip!(a, av, b, bv, |x: &i32, y: &i64| Some(i64::from(*x).cmp(y)))
        }
        (Str(a, av), Str(b, bv)) => {
            czip!(a, av, b, bv, |x: &String, y: &String| Some(x.cmp(y)))
        }
        // Same-dictionary equality compares codes directly — no byte access.
        (
            Column::DictStr {
                codes: a,
                dict: da,
                valid: av,
            },
            Column::DictStr {
                codes: b,
                dict: db,
                valid: bv,
            },
        ) if matches!(op, Eq | Ne) && std::sync::Arc::ptr_eq(da, db) => {
            czip!(a, av, b, bv, |x: &u32, y: &u32| Some(x.cmp(y)))
        }
        (Bool(a, av), Bool(b, bv)) => czip!(a, av, b, bv, |x: &bool, y: &bool| Some(x.cmp(y))),
        // Genuinely mixed pairs (date vs string literal, ...) stay row-wise.
        _ => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(l.get(i).sql_cmp(&r.get(i)).map(&want).unwrap_or(false));
            }
            Ok(Column::from_bool(out))
        }
    }
}

/// IN-list membership with typed fast paths for the common literal shapes
/// (int/date column against int/date candidates, string column against
/// string candidates); anything else keeps the row-wise `sql_cmp` semantics.
fn eval_in_list(c: &Column, list: &[Value], negated: bool) -> Vec<bool> {
    match c {
        Column::Int(d, valid) => {
            if let Some(ints) = list
                .iter()
                .map(|v| match v {
                    Value::Int(i) => Some(*i),
                    Value::Date(x) => Some(i64::from(*x)),
                    _ => None,
                })
                .collect::<Option<Vec<i64>>>()
            {
                return d
                    .iter()
                    .enumerate()
                    .map(|(i, x)| {
                        valid.as_ref().map_or(true, |v| v[i]) && ints.contains(x) != negated
                    })
                    .collect();
            }
        }
        Column::Date(d, valid) => {
            if let Some(ints) = list
                .iter()
                .map(|v| match v {
                    Value::Int(i) => Some(*i),
                    Value::Date(x) => Some(i64::from(*x)),
                    _ => None,
                })
                .collect::<Option<Vec<i64>>>()
            {
                return d
                    .iter()
                    .enumerate()
                    .map(|(i, x)| {
                        valid.as_ref().map_or(true, |v| v[i])
                            && ints.contains(&i64::from(*x)) != negated
                    })
                    .collect();
            }
        }
        Column::DictStr { codes, dict, valid }
            if list.iter().all(|v| matches!(v, Value::Str(_))) =>
        {
            // Translate each candidate against the dictionary once; membership
            // then runs in code space. Candidates absent from the dictionary
            // can never match (but still flip under NOT IN).
            let table: Vec<bool> = dict
                .strs()
                .iter()
                .map(|s| list.iter().any(|v| v.as_str() == Some(s)) != negated)
                .collect();
            return codes
                .iter()
                .enumerate()
                .map(|(i, &c)| valid.as_ref().map_or(true, |v| v[i]) && table[c as usize])
                .collect();
        }
        Column::Str(d, valid) if list.iter().all(|v| matches!(v, Value::Str(_))) => {
            return d
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    valid.as_ref().map_or(true, |v| v[i])
                        && list.iter().any(|v| v.as_str() == Some(x)) != negated
                })
                .collect();
        }
        _ => {}
    }
    (0..c.len())
        .map(|i| {
            let v = c.get(i);
            if v.is_null() {
                return false;
            }
            list.iter()
                .any(|cand| v.sql_cmp(cand) == Some(std::cmp::Ordering::Equal))
                != negated
        })
        .collect()
}

/// Row-at-a-time reference evaluator for the binary kernels.
///
/// Implements the same SQL semantics as [`eval_bin`] by constructing a scalar
/// [`Value`] per row — the shape the engine had before the typed kernels.
/// Property tests assert the vectorized kernels stay **bit-identical** to
/// this evaluator on every valid row (placeholder data under null rows is
/// unspecified in both). Not used on any hot path.
pub mod reference {
    use super::*;

    /// Reference implementation of [`super::eval_bin`].
    pub fn eval_bin(op: BinOp, l: &Column, r: &Column) -> Result<Column> {
        use BinOp::*;
        let n = l.len();
        if r.len() != n {
            return Err(Error::Exec("binary operand length mismatch".into()));
        }
        match op {
            And | Or => {
                if !matches!((l, r), (Column::Bool(..), Column::Bool(..))) {
                    return Err(Error::Exec("AND/OR require booleans".into()));
                }
                let out: Vec<bool> = (0..n)
                    .map(|i| {
                        // Null placeholders are stored as `false`.
                        let x = bool_data(l, i);
                        let y = bool_data(r, i);
                        if op == And {
                            x && y
                        } else {
                            x || y
                        }
                    })
                    .collect();
                Ok(Column::from_bool(out))
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                let want = |o: std::cmp::Ordering| -> bool {
                    match op {
                        Eq => o == std::cmp::Ordering::Equal,
                        Ne => o != std::cmp::Ordering::Equal,
                        Lt => o == std::cmp::Ordering::Less,
                        Le => o != std::cmp::Ordering::Greater,
                        Gt => o == std::cmp::Ordering::Greater,
                        _ => o != std::cmp::Ordering::Less,
                    }
                };
                let out: Vec<bool> = (0..n)
                    .map(|i| l.get(i).sql_cmp(&r.get(i)).map(want).unwrap_or(false))
                    .collect();
                Ok(Column::from_bool(out))
            }
            Concat => {
                let mut out = Column::with_capacity(DType::Str, n);
                for i in 0..n {
                    match (l.get(i), r.get(i)) {
                        (Value::Null, _) | (_, Value::Null) => out.push_null(),
                        (Value::Str(a), Value::Str(b)) => out.push(Value::Str(a + &b))?,
                        (a, b) => out.push(Value::Str(format!("{a}{b}")))?,
                    }
                }
                Ok(out)
            }
            Add | Sub | Mul | Div | Mod => {
                let dtype = arith_dtype(op, l.dtype(), r.dtype());
                let mut out = Column::with_capacity(dtype, n);
                for i in 0..n {
                    out.push(scalar_arith(op, &l.get(i), &r.get(i))?)?;
                }
                Ok(out)
            }
        }
    }

    fn bool_data(c: &Column, i: usize) -> bool {
        match c {
            Column::Bool(d, _) => d[i],
            _ => unreachable!("checked by caller"),
        }
    }

    /// The result dtype the typed kernels produce for an arithmetic pair.
    pub fn arith_dtype(op: BinOp, l: DType, r: DType) -> DType {
        use BinOp::*;
        match (l, r) {
            (DType::Int, DType::Int) if matches!(op, Add | Sub | Mul | Mod) => DType::Int,
            (DType::Date, DType::Int) if matches!(op, Add | Sub) => DType::Date,
            (DType::Date, DType::Date) if op == Sub => DType::Int,
            _ => DType::Float,
        }
    }

    fn scalar_arith(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
        use BinOp::*;
        if a.is_null() || b.is_null() {
            return Ok(Value::Null);
        }
        Ok(match (a, b) {
            (Value::Int(x), Value::Int(y)) => match op {
                Add => Value::Int(x.wrapping_add(*y)),
                Sub => Value::Int(x.wrapping_sub(*y)),
                Mul => Value::Int(x.wrapping_mul(*y)),
                Mod => Value::Int(if *y == 0 { 0 } else { x % y }),
                _ => Value::Float(*x as f64 / *y as f64),
            },
            (Value::Date(x), Value::Int(y)) if matches!(op, Add | Sub) => {
                if op == Add {
                    Value::Date(x + *y as i32)
                } else {
                    Value::Date(x - *y as i32)
                }
            }
            (Value::Date(x), Value::Date(y)) if op == Sub => Value::Int(i64::from(x - y)),
            _ => {
                let (x, y) = match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => {
                        return Err(Error::Exec("cannot use strings in arithmetic".into()));
                    }
                };
                Value::Float(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    _ => x % y,
                })
            }
        })
    }
}

fn eval_func(f: SFunc, cols: &[Column], n: usize) -> Result<Column> {
    let arg = |i: usize| -> Result<&Column> {
        cols.get(i)
            .ok_or_else(|| Error::Exec(format!("function missing argument {i}")))
    };
    /// Applies `f` element-wise as a float kernel: direct slice loops for
    /// int/float inputs, `to_f64_vec` widening for the rest.
    macro_rules! fmap {
        ($c:expr, $f:expr) => {{
            match $c {
                Column::Float(d, v) => {
                    Ok(Column::Float(d.iter().map(|&x| $f(x)).collect(), v.clone()))
                }
                Column::Int(d, v) => Ok(Column::Float(
                    d.iter().map(|&x| $f(x as f64)).collect(),
                    v.clone(),
                )),
                c => {
                    let d = to_f64_vec(c)?;
                    Ok(Column::Float(
                        d.iter().map(|&x| $f(x)).collect(),
                        validity_of(c),
                    ))
                }
            }
        }};
    }
    match f {
        SFunc::Abs => match arg(0)? {
            Column::Int(d, v) => Ok(Column::Int(d.iter().map(|x| x.abs()).collect(), v.clone())),
            c => fmap!(c, f64::abs),
        },
        SFunc::Round => {
            let digits = match cols.get(1) {
                Some(c) if !c.is_empty() => c.get(0).as_i64().unwrap_or(0),
                _ => 0,
            } as i32;
            let scale = 10f64.powi(digits);
            fmap!(arg(0)?, |x: f64| (x * scale).round() / scale)
        }
        SFunc::Floor => fmap!(arg(0)?, f64::floor),
        SFunc::Ceil => fmap!(arg(0)?, f64::ceil),
        SFunc::Sqrt => fmap!(arg(0)?, f64::sqrt),
        SFunc::Power => {
            let a = to_f64_vec(arg(0)?)?;
            let b = to_f64_vec(arg(1)?)?;
            Ok(Column::Float(
                a.iter().zip(&b).map(|(&x, &y)| x.powf(y)).collect(),
                merge_validity(&validity_of(arg(0)?), &validity_of(arg(1)?)),
            ))
        }
        SFunc::Year | SFunc::Month | SFunc::Day => match arg(0)? {
            Column::Date(d, v) => {
                let out: Vec<i64> = d
                    .iter()
                    .map(|&x| match f {
                        SFunc::Year => i64::from(date::year(x)),
                        SFunc::Month => i64::from(date::month(x)),
                        _ => i64::from(date::day(x)),
                    })
                    .collect();
                Ok(Column::Int(out, v.clone()))
            }
            _ => Err(Error::Exec("date function requires a date column".into())),
        },
        SFunc::AddMonths | SFunc::AddYears | SFunc::AddDays => {
            let base = match arg(0)? {
                Column::Date(d, v) => (d, v.clone()),
                _ => return Err(Error::Exec("date arithmetic requires a date".into())),
            };
            let k = arg(1)?;
            let out: Vec<i32> = base
                .0
                .iter()
                .enumerate()
                .map(|(i, &x)| {
                    let n = k
                        .get(i.min(k.len().saturating_sub(1)))
                        .as_i64()
                        .unwrap_or(0) as i32;
                    match f {
                        SFunc::AddMonths => date::add_months(x, n),
                        SFunc::AddYears => date::add_years(x, n),
                        _ => x + n,
                    }
                })
                .collect();
            Ok(Column::Date(out, base.1))
        }
        SFunc::Substring => {
            let s = arg(0)?;
            let start = arg(1)?;
            let len = cols.get(2);
            let mut out = Column::with_capacity(DType::Str, n);
            for i in 0..n {
                match s.get(i) {
                    Value::Str(text) => {
                        let st = (start.get(i).as_i64().unwrap_or(1).max(1) - 1) as usize;
                        let l = len
                            .map(|c| c.get(i).as_i64().unwrap_or(i64::MAX).max(0) as usize)
                            .unwrap_or(usize::MAX);
                        let sub: String = text.chars().skip(st).take(l).collect();
                        out.push(Value::Str(sub))?;
                    }
                    _ => out.push_null(),
                }
            }
            Ok(out)
        }
        SFunc::Length => match arg(0)? {
            Column::Str(d, v) => Ok(Column::Int(
                d.iter().map(|s| s.chars().count() as i64).collect(),
                v.clone(),
            )),
            Column::DictStr { codes, dict, valid } => {
                // Length runs once per dictionary entry, then maps codes.
                let table: Vec<i64> = dict
                    .strs()
                    .iter()
                    .map(|s| s.chars().count() as i64)
                    .collect();
                Ok(Column::Int(
                    codes
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| {
                            if valid.as_ref().map_or(true, |v| v[i]) {
                                table[c as usize]
                            } else {
                                0
                            }
                        })
                        .collect(),
                    valid.clone(),
                ))
            }
            _ => Err(Error::Exec("LENGTH requires strings".into())),
        },
        SFunc::Upper | SFunc::Lower => {
            let cased = |s: &str| {
                if f == SFunc::Upper {
                    s.to_uppercase()
                } else {
                    s.to_lowercase()
                }
            };
            match arg(0)? {
                Column::Str(d, v) => {
                    Ok(Column::Str(d.iter().map(|s| cased(s)).collect(), v.clone()))
                }
                Column::DictStr { codes, dict, valid } => {
                    // Case-folding stays encoded: fold each dictionary entry
                    // once into a fresh dictionary, codes carry over verbatim.
                    let mut folded = pytond_common::Dictionary::default();
                    let remap: Vec<u32> = dict
                        .strs()
                        .iter()
                        .map(|s| folded.intern(&cased(s)))
                        .collect();
                    Ok(Column::DictStr {
                        codes: codes
                            .iter()
                            .enumerate()
                            .map(|(i, &c)| {
                                if valid.as_ref().map_or(true, |v| v[i]) {
                                    remap[c as usize]
                                } else {
                                    0
                                }
                            })
                            .collect(),
                        dict: std::sync::Arc::new(folded),
                        valid: valid.clone(),
                    })
                }
                _ => Err(Error::Exec("UPPER/LOWER require strings".into())),
            }
        }
        SFunc::StrPos => {
            let s = arg(0)?;
            let sub = arg(1)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                match (s.get(i), sub.get(i)) {
                    (Value::Str(a), Value::Str(b)) => {
                        out.push(a.find(&b).map(|p| p as i64 + 1).unwrap_or(0));
                    }
                    _ => out.push(0),
                }
            }
            Ok(Column::from_i64(out))
        }
        SFunc::Coalesce => {
            let dtype = cols
                .iter()
                .map(|c| c.dtype())
                .next()
                .unwrap_or(DType::Float);
            let mut out = Column::with_capacity(dtype, n);
            'rows: for i in 0..n {
                for c in cols {
                    let v = c.get(i);
                    if !v.is_null() {
                        out.push(coerce(v, dtype)?)?;
                        continue 'rows;
                    }
                }
                out.push_null();
            }
            Ok(out)
        }
    }
}

fn to_f64_vec(c: &Column) -> Result<Vec<f64>> {
    Ok(match c {
        Column::Int(d, _) => d.iter().map(|&x| x as f64).collect(),
        Column::Float(d, _) => d.clone(),
        Column::Date(d, _) => d.iter().map(|&x| f64::from(x)).collect(),
        Column::Bool(d, _) => d.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
        Column::Str(..) | Column::DictStr { .. } => {
            return Err(Error::Exec("cannot use strings in arithmetic".into()));
        }
    })
}

fn validity_of(c: &Column) -> Option<Vec<bool>> {
    c.validity().map(|v| v.to_vec())
}

fn merge_validity(a: &Option<Vec<bool>>, b: &Option<Vec<bool>>) -> Option<Vec<bool>> {
    match (a, b) {
        (None, None) => None,
        (Some(v), None) | (None, Some(v)) => Some(v.clone()),
        (Some(x), Some(y)) => Some(x.iter().zip(y).map(|(&a, &b)| a && b).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Batch;

    fn batch() -> Batch {
        Batch::from_columns(vec![
            Column::from_i64(vec![1, 2, 3, 4]),
            Column::from_f64(vec![10.0, 20.0, 30.0, 40.0]),
            Column::from_strs(&["apple", "banana", "cherry", "date"]),
            Column::from_dates(vec![0, 100, 200, 300]),
        ])
    }

    #[test]
    fn column_and_literal() {
        let b = batch();
        let c = BExpr::Col(0).eval(&b, None).unwrap();
        assert_eq!(c.as_int(), &[1, 2, 3, 4]);
        let l = BExpr::Lit(Value::Int(7)).eval(&b, None).unwrap();
        assert_eq!(l.as_int(), &[7, 7, 7, 7]);
    }

    #[test]
    fn selection_vector_restricts_rows() {
        let b = batch();
        let c = BExpr::Col(2).eval(&b, Some(&[3, 0])).unwrap();
        assert_eq!(c.as_str_col(), &["date".to_string(), "apple".into()]);
    }

    #[test]
    fn arithmetic_type_rules() {
        let b = batch();
        let add = BExpr::Bin {
            op: BinOp::Add,
            l: Box::new(BExpr::Col(0)),
            r: Box::new(BExpr::Lit(Value::Int(10))),
        };
        assert_eq!(add.eval(&b, None).unwrap().as_int(), &[11, 12, 13, 14]);
        let div = BExpr::Bin {
            op: BinOp::Div,
            l: Box::new(BExpr::Col(0)),
            r: Box::new(BExpr::Lit(Value::Int(2))),
        };
        assert_eq!(
            div.eval(&b, None).unwrap().as_float(),
            &[0.5, 1.0, 1.5, 2.0]
        );
    }

    #[test]
    fn date_arithmetic() {
        let b = batch();
        let plus = BExpr::Bin {
            op: BinOp::Add,
            l: Box::new(BExpr::Col(3)),
            r: Box::new(BExpr::Lit(Value::Int(5))),
        };
        assert_eq!(plus.eval(&b, None).unwrap().as_date(), &[5, 105, 205, 305]);
    }

    #[test]
    fn comparisons_and_masks() {
        let b = batch();
        let gt = BExpr::Bin {
            op: BinOp::Gt,
            l: Box::new(BExpr::Col(1)),
            r: Box::new(BExpr::Lit(Value::Float(25.0))),
        };
        assert_eq!(
            gt.eval_mask(&b, None).unwrap(),
            vec![false, false, true, true]
        );
    }

    #[test]
    fn like_patterns() {
        let p = LikePattern::compile("%an%");
        assert!(p.matches("banana"));
        assert!(!p.matches("apple"));
        let p2 = LikePattern::compile("a__le");
        assert!(p2.matches("apple"));
        assert!(!p2.matches("ample2"));
        let p3 = LikePattern::compile("ch%");
        assert!(p3.matches("cherry"));
        let p4 = LikePattern::compile("%ROSE%");
        assert!(p4.matches("dark ROSE metal"));
        assert!(!p4.matches("rose"));
    }

    #[test]
    fn in_list_and_case() {
        let b = batch();
        let inl = BExpr::InList {
            e: Box::new(BExpr::Col(0)),
            list: vec![Value::Int(2), Value::Int(4)],
            negated: false,
        };
        assert_eq!(
            inl.eval_mask(&b, None).unwrap(),
            vec![false, true, false, true]
        );
        let case = BExpr::Case {
            arms: vec![(inl, BExpr::Lit(Value::Int(1)))],
            else_value: Some(Box::new(BExpr::Lit(Value::Int(0)))),
        };
        assert_eq!(case.eval(&b, None).unwrap().as_int(), &[0, 1, 0, 1]);
    }

    #[test]
    fn functions() {
        let b = batch();
        let year = BExpr::Func {
            f: SFunc::Year,
            args: vec![BExpr::Col(3)],
        };
        assert_eq!(year.eval(&b, None).unwrap().as_int()[0], 1970);
        let sub = BExpr::Func {
            f: SFunc::Substring,
            args: vec![
                BExpr::Col(2),
                BExpr::Lit(Value::Int(1)),
                BExpr::Lit(Value::Int(3)),
            ],
        };
        assert_eq!(sub.eval(&b, None).unwrap().as_str_col()[1], "ban");
        let len = BExpr::Func {
            f: SFunc::Length,
            args: vec![BExpr::Col(2)],
        };
        assert_eq!(len.eval(&b, None).unwrap().as_int(), &[5, 6, 6, 4]);
    }

    #[test]
    fn null_propagation_in_arithmetic() {
        let mut c = Column::new(DType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push_null();
        let b = Batch::from_columns(vec![c]);
        let add = BExpr::Bin {
            op: BinOp::Add,
            l: Box::new(BExpr::Col(0)),
            r: Box::new(BExpr::Lit(Value::Int(1))),
        };
        let out = add.eval(&b, None).unwrap();
        assert_eq!(out.get(0), Value::Int(2));
        assert_eq!(out.get(1), Value::Null);
    }

    #[test]
    fn is_null_and_coalesce() {
        let mut c = Column::new(DType::Float);
        c.push(Value::Float(1.0)).unwrap();
        c.push_null();
        let b = Batch::from_columns(vec![c]);
        let isnull = BExpr::IsNull {
            e: Box::new(BExpr::Col(0)),
            negated: false,
        };
        assert_eq!(isnull.eval_mask(&b, None).unwrap(), vec![false, true]);
        let coal = BExpr::Func {
            f: SFunc::Coalesce,
            args: vec![BExpr::Col(0), BExpr::Lit(Value::Float(9.0))],
        };
        assert_eq!(coal.eval(&b, None).unwrap().as_float(), &[1.0, 9.0]);
    }

    #[test]
    fn columns_used_and_remap() {
        let e = BExpr::Bin {
            op: BinOp::Add,
            l: Box::new(BExpr::Col(2)),
            r: Box::new(BExpr::Col(0)),
        };
        let mut used = Vec::new();
        e.columns_used(&mut used);
        assert_eq!(used, vec![2, 0]);
        let mut e2 = e.clone();
        e2.remap_columns(&|i| i + 10);
        let mut used2 = Vec::new();
        e2.columns_used(&mut used2);
        assert_eq!(used2, vec![12, 10]);
    }

    #[test]
    fn dtype_inference() {
        let types = vec![DType::Int, DType::Float, DType::Str, DType::Date];
        let add_ii = BExpr::Bin {
            op: BinOp::Add,
            l: Box::new(BExpr::Col(0)),
            r: Box::new(BExpr::Col(0)),
        };
        assert_eq!(add_ii.dtype(&types), DType::Int);
        let div = BExpr::Bin {
            op: BinOp::Div,
            l: Box::new(BExpr::Col(0)),
            r: Box::new(BExpr::Col(0)),
        };
        assert_eq!(div.dtype(&types), DType::Float);
        let cmp = BExpr::Bin {
            op: BinOp::Lt,
            l: Box::new(BExpr::Col(0)),
            r: Box::new(BExpr::Col(1)),
        };
        assert_eq!(cmp.dtype(&types), DType::Bool);
    }
}
