//! Pipeline extraction: decomposing a physical plan into single-pass fused
//! pipelines.
//!
//! A *pipeline* is a maximal chain of streaming operators between two
//! pipeline breakers. Its **source** is either a predicated base-table scan
//! (driven zone-at-a-time so zone-map pruning stays a claim-time skip) or
//! the materialized output of a breaker (join build, aggregation merge,
//! sort, DISTINCT, limit, window). Its **stages** — filters, projections and
//! hash-join probes — consume one claimed morsel at a time without ever
//! materializing a full intermediate relation. Its **sink** either stitches
//! the surviving chunks back into a batch (`Materialize`) or feeds them to
//! the fixed-grid aggregation tail (`Aggregate`).
//!
//! Extraction is purely structural (no data access): join probes fuse only
//! when the key layout can be proven fixed-width from static expression
//! dtypes, so the driver never discovers mid-flight that a chunk cannot be
//! packed. Everything else — byte-keyed joins, right/full/cross joins, and
//! every breaker — falls back to the materializing operators in
//! [`crate::exec`], which double as the `PYTOND_NO_FUSE=1` differential
//! oracle. See `docs/EXECUTION.md` § Fusion.

use crate::expr::BExpr;
use crate::plan::{BAgg, BoundQuery, JKind, LogicalPlan};
use pytond_common::hash::FixedKeySpec;
use pytond_common::{Column, DType};

/// One streaming operator inside a pipeline, applied per claimed morsel.
pub enum Stage<'p> {
    /// Shrink the chunk's selection by a predicate; no columns move.
    Filter(&'p BExpr),
    /// Replace the chunk with the evaluated projection (morsel-sized
    /// materialization; survivors only).
    Project(&'p [BExpr]),
    /// Probe a hash table built once from the join's right input.
    Probe(ProbeStage<'p>),
}

/// A fused hash-join probe: the build side executes once (as its own
/// sub-plan, possibly pipelined itself); probing then streams morsel by
/// morsel through the packed fixed-width key layout planned here.
pub struct ProbeStage<'p> {
    /// Join kind — extraction admits only `Inner`/`Left`/`Semi`/`Anti`.
    pub kind: JKind,
    /// Probe-side (left) key expressions.
    pub left_keys: &'p [BExpr],
    /// Build-side (right) key expressions.
    pub right_keys: &'p [BExpr],
    /// Residual predicate, applied to each joined chunk.
    pub residual: Option<&'p BExpr>,
    /// The build-side plan, executed once when the pipeline starts.
    pub build: &'p LogicalPlan,
    /// Fixed-width key layout, planned jointly over both sides from static
    /// dtypes. Identical to what the materializing join would plan from the
    /// evaluated columns: join semantics (`nulls_matter = false`) make the
    /// layout a function of dtypes alone.
    pub spec: FixedKeySpec,
    /// String key positions packed as 32-bit dictionary codes (0 when
    /// dictionary encoding is disabled — those joins break the pipeline).
    pub dict_keys: usize,
}

/// What terminates a pipeline.
pub enum Sink<'p> {
    /// Stitch surviving chunks into a batch, in morsel order.
    Materialize,
    /// Stream each chunk's group-key and aggregate-argument columns into
    /// the fixed-morsel-grid aggregation (`docs/EXECUTION.md` § determinism:
    /// the narrow columns are concatenated in morsel order, so the grid and
    /// merge tree are byte-identical to the materializing path's).
    Aggregate {
        /// Group-key expressions over the last stage's output.
        group: &'p [BExpr],
        /// Aggregates over the last stage's output.
        aggs: &'p [BAgg],
    },
}

/// A single-pass fused pipeline: `source → stages… → sink`.
pub struct Pipeline<'p> {
    /// Where morsels come from: a predicated `Scan` (fused, zone-aligned)
    /// or any breaker node (materialized once, then chunked).
    pub source: &'p LogicalPlan,
    /// Streaming operators in execution order.
    pub stages: Vec<Stage<'p>>,
    /// The pipeline's terminal.
    pub sink: Sink<'p>,
}

impl Pipeline<'_> {
    /// Fused operators in this pipeline: the source, each stage, and an
    /// aggregation sink (a materialize sink is stitching, not an operator).
    pub fn ops(&self) -> usize {
        1 + self.stages.len() + usize::from(matches!(self.sink, Sink::Aggregate { .. }))
    }

    /// Full intermediate materializations the fused drive avoids, compared
    /// to the operator-at-a-time oracle: one per stage output that streams
    /// onward, plus the predicated scan's survivor gather — minus the final
    /// stage output when the sink materializes it anyway.
    pub fn intermediates_avoided(&self) -> usize {
        let fused_scan = usize::from(matches!(
            self.source,
            LogicalPlan::Scan { pred: Some(_), .. }
        ));
        (self.stages.len() + fused_scan)
            .saturating_sub(usize::from(matches!(self.sink, Sink::Materialize)))
    }
}

/// Extracts the pipeline rooted at `plan`, or `None` when fusion would not
/// save anything (the node is a breaker, or the chain has no streaming
/// stage worth driving).
pub fn extract(plan: &LogicalPlan) -> Option<Pipeline<'_>> {
    match plan {
        LogicalPlan::Aggregate {
            input, group, aggs, ..
        } => {
            let (source, stages) = chain(input);
            // Worth fusing only if something streams: a stage, or a
            // predicated scan whose survivor gather we skip.
            if stages.is_empty() && !scan_with_pred(source) {
                return None;
            }
            Some(Pipeline {
                source,
                stages,
                sink: Sink::Aggregate { group, aggs },
            })
        }
        LogicalPlan::Filter { .. } | LogicalPlan::Project { .. } | LogicalPlan::Join { .. } => {
            let (source, stages) = chain(plan);
            if stages.is_empty() {
                return None;
            }
            // A lone bare-column projection over a materialized source is
            // zero-copy (Arc shares) on the materializing path; chunking it
            // would only add copies.
            if !scan_with_pred(source) && stages.len() == 1 {
                if let Stage::Project(exprs) = &stages[0] {
                    if exprs.iter().all(|e| matches!(e, BExpr::Col(_))) {
                        return None;
                    }
                }
            }
            Some(Pipeline {
                source,
                stages,
                sink: Sink::Materialize,
            })
        }
        _ => None,
    }
}

fn scan_with_pred(plan: &LogicalPlan) -> bool {
    matches!(plan, LogicalPlan::Scan { pred: Some(_), .. })
}

/// Walks down from `plan` collecting fusable stages until a breaker, which
/// becomes the source. Returned stages are in execution order (source
/// first).
fn chain(plan: &LogicalPlan) -> (&LogicalPlan, Vec<Stage<'_>>) {
    let mut rev: Vec<Stage<'_>> = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            LogicalPlan::Filter { input, pred } => {
                rev.push(Stage::Filter(pred));
                cur = input;
            }
            LogicalPlan::Project { input, exprs, .. } => {
                rev.push(Stage::Project(exprs));
                cur = input;
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                left_keys,
                right_keys,
                residual,
                ..
            } => match probe_spec(left, right, *kind, left_keys, right_keys) {
                Some((spec, dict_keys)) => {
                    rev.push(Stage::Probe(ProbeStage {
                        kind: *kind,
                        left_keys,
                        right_keys,
                        residual: residual.as_ref(),
                        build: right,
                        spec,
                        dict_keys,
                    }));
                    cur = left;
                }
                None => break,
            },
            _ => break,
        }
    }
    rev.reverse();
    (cur, rev)
}

/// Plans the fixed-width key layout for a candidate fused probe (returning
/// it with the count of dict-coded string key positions), or `None` when the
/// join must break the pipeline: non-streaming kinds (right/full joins need
/// unmatched-build backfill, cross joins have no keys), keyless joins, or
/// key layouts that only the byte-encoded fallback can represent.
///
/// The layout is planned from zero-row columns of the keys' static dtypes.
/// For join semantics [`FixedKeySpec::plan`] ignores nullability, so this
/// yields exactly the spec the materializing join plans from evaluated
/// columns — the packed keys, and therefore every match, agree bit for bit.
///
/// String keys plan as zero-row dictionary-encoded placeholders sharing one
/// dictionary `Arc`, so they pack as 32-bit code slots — a promise the
/// runtime keeps by re-encoding every probe chunk into the build side's
/// dictionary (see `exec`'s probe preparation). Under `PYTOND_NO_DICT=1`
/// the placeholders stay plain strings, the plan falls back to `None`, and
/// string-keyed joins break the pipeline exactly as they did before
/// dictionary encoding existed.
fn probe_spec(
    left: &LogicalPlan,
    right: &LogicalPlan,
    kind: JKind,
    left_keys: &[BExpr],
    right_keys: &[BExpr],
) -> Option<(FixedKeySpec, usize)> {
    if !matches!(kind, JKind::Inner | JKind::Left | JKind::Semi | JKind::Anti)
        || left_keys.is_empty()
    {
        return None;
    }
    let dict = !crate::db::no_dict();
    let typed = |plan: &LogicalPlan, keys: &[BExpr]| -> Vec<Column> {
        let dtypes: Vec<DType> = plan.schema().fields.iter().map(|f| f.dtype).collect();
        keys.iter()
            .map(|e| match e.dtype(&dtypes) {
                DType::Str if dict => Column::DictStr {
                    codes: Vec::new(),
                    dict: pytond_common::empty_dict(),
                    valid: None,
                },
                dt => Column::new(dt),
            })
            .collect()
    };
    let lcols = typed(left, left_keys);
    let rcols = typed(right, right_keys);
    let lrefs: Vec<&Column> = lcols.iter().collect();
    let rrefs: Vec<&Column> = rcols.iter().collect();
    let dict_keys = if dict {
        lcols.iter().filter(|c| c.dtype() == DType::Str).count()
    } else {
        0
    };
    FixedKeySpec::plan(&[&lrefs, &rrefs], false).map(|spec| (spec, dict_keys))
}

/// Renders the pipeline decomposition of a bound query, in execution order
/// (build sides and breaker sources before the pipelines that consume
/// them) — the grouping EXPLAIN and `QueryTrace::plan` show under the fused
/// profiles.
pub fn describe(q: &BoundQuery) -> String {
    let mut lines: Vec<String> = Vec::new();
    for (_, plan) in &q.ctes {
        walk(plan, &mut lines);
    }
    walk(&q.root, &mut lines);
    let mut out = String::from("pipelines:\n");
    if lines.is_empty() {
        out.push_str("  (none: every operator is a breaker)\n");
    }
    for (i, l) in lines.iter().enumerate() {
        out.push_str(&format!("  P{i}: {l}\n"));
    }
    out
}

fn walk(plan: &LogicalPlan, out: &mut Vec<String>) {
    match extract(plan) {
        Some(p) => {
            if !matches!(p.source, LogicalPlan::Scan { .. }) {
                walk(p.source, out);
            }
            for st in &p.stages {
                if let Stage::Probe(pr) = st {
                    walk(pr.build, out);
                }
            }
            out.push(render(&p));
        }
        None => {
            for child in plan.children() {
                walk(child, out);
            }
        }
    }
}

fn render(p: &Pipeline<'_>) -> String {
    let mut parts: Vec<String> = Vec::new();
    parts.push(match p.source {
        LogicalPlan::Scan {
            table,
            pred: Some(_),
            ..
        } => format!("scan {table} (fused pred)"),
        LogicalPlan::Scan { table, .. } => format!("scan {table}"),
        other => other.name().to_lowercase(),
    });
    for st in &p.stages {
        parts.push(match st {
            Stage::Filter(_) => "filter".into(),
            Stage::Project(_) => "project".into(),
            Stage::Probe(pr) if pr.dict_keys > 0 => {
                format!("probe({:?}, dict-key)", pr.kind).to_lowercase()
            }
            Stage::Probe(pr) => format!("probe({:?})", pr.kind).to_lowercase(),
        });
    }
    parts.push(match p.sink {
        Sink::Materialize => "materialize".into(),
        Sink::Aggregate { .. } => "aggregate".into(),
    });
    format!(
        "{} [{} ops, {} intermediates avoided]",
        parts.join(" → "),
        p.ops(),
        p.intermediates_avoided()
    )
}
