//! SQL lexer: keywords, identifiers (plain and `"quoted"`), numbers,
//! `'string'` literals with `''` escaping, operators and comments.

use pytond_common::{Error, Result};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword or identifier, upper-cased for keyword matching; the original
    /// spelling is kept alongside.
    Word {
        /// Upper-cased form used for keyword comparison.
        upper: String,
        /// Original spelling (identifier case is preserved).
        original: String,
        /// `true` when the word was written in double quotes.
        quoted: bool,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (content, unescaped).
    Str(String),
    /// Operator / punctuation.
    Op(&'static str),
    /// End of input.
    Eof,
}

impl Tok {
    /// `true` when this token is the given keyword.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Word { upper, quoted: false, .. } if upper == kw)
    }
}

const OPERATORS: &[&str] = &[
    "<>", "!=", "<=", ">=", "||", "(", ")", ",", ";", "+", "-", "*", "/", "%", "<", ">", "=", ".",
];

/// Tokenizes SQL text.
pub fn tokenize(src: &str) -> Result<Vec<Tok>> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let mut toks = Vec::new();
    while pos < b.len() {
        let c = b[pos];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'-' if b.get(pos + 1) == Some(&b'-') => {
                while pos < b.len() && b[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'\'' => {
                pos += 1;
                let mut s = String::new();
                loop {
                    if pos >= b.len() {
                        return Err(Error::Sql("unterminated string literal".into()));
                    }
                    if b[pos] == b'\'' {
                        if b.get(pos + 1) == Some(&b'\'') {
                            s.push('\'');
                            pos += 2;
                        } else {
                            pos += 1;
                            break;
                        }
                    } else {
                        s.push(b[pos] as char);
                        pos += 1;
                    }
                }
                toks.push(Tok::Str(s));
            }
            b'"' => {
                pos += 1;
                let start = pos;
                while pos < b.len() && b[pos] != b'"' {
                    pos += 1;
                }
                if pos >= b.len() {
                    return Err(Error::Sql("unterminated quoted identifier".into()));
                }
                let original = std::str::from_utf8(&b[start..pos]).unwrap().to_string();
                pos += 1;
                toks.push(Tok::Word {
                    upper: original.to_uppercase(),
                    original,
                    quoted: true,
                });
            }
            b'0'..=b'9' => {
                let start = pos;
                let mut is_float = false;
                while pos < b.len() {
                    match b[pos] {
                        b'0'..=b'9' => pos += 1,
                        b'.' if !is_float && matches!(b.get(pos + 1), Some(b'0'..=b'9')) => {
                            is_float = true;
                            pos += 1;
                        }
                        b'e' | b'E'
                            if matches!(b.get(pos + 1), Some(b'0'..=b'9'))
                                || (matches!(b.get(pos + 1), Some(b'+' | b'-'))
                                    && matches!(b.get(pos + 2), Some(b'0'..=b'9'))) =>
                        {
                            is_float = true;
                            pos += 1;
                            if matches!(b[pos], b'+' | b'-') {
                                pos += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&b[start..pos]).unwrap();
                if is_float {
                    toks.push(Tok::Float(
                        text.parse()
                            .map_err(|_| Error::Sql(format!("bad float literal '{text}'")))?,
                    ));
                } else {
                    toks.push(Tok::Int(text.parse().map_err(|_| {
                        Error::Sql(format!("bad integer literal '{text}'"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = pos;
                while pos < b.len() && (b[pos].is_ascii_alphanumeric() || b[pos] == b'_') {
                    pos += 1;
                }
                let original = std::str::from_utf8(&b[start..pos]).unwrap().to_string();
                toks.push(Tok::Word {
                    upper: original.to_uppercase(),
                    original,
                    quoted: false,
                });
            }
            _ => {
                let rest = &src[pos..];
                let mut matched = false;
                for op in OPERATORS {
                    if rest.starts_with(op) {
                        toks.push(Tok::Op(op));
                        pos += op.len();
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    return Err(Error::Sql(format!("unexpected character '{}'", c as char)));
                }
            }
        }
    }
    toks.push(Tok::Eof);
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_identifiers() {
        let t = tokenize("SELECT a FROM t").unwrap();
        assert!(t[0].is_kw("SELECT"));
        assert!(matches!(&t[1], Tok::Word { original, .. } if original == "a"));
    }

    #[test]
    fn string_escaping() {
        let t = tokenize("'o''brien'").unwrap();
        assert_eq!(t[0], Tok::Str("o'brien".into()));
    }

    #[test]
    fn numbers() {
        let t = tokenize("1 2.5 1e3").unwrap();
        assert_eq!(t[0], Tok::Int(1));
        assert_eq!(t[1], Tok::Float(2.5));
        assert_eq!(t[2], Tok::Float(1000.0));
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT -- comment\n1").unwrap();
        assert_eq!(t.len(), 3); // SELECT, 1, EOF
    }

    #[test]
    fn quoted_identifiers_not_keywords() {
        let t = tokenize("\"select\"").unwrap();
        assert!(matches!(&t[0], Tok::Word { quoted: true, .. }));
        assert!(!t[0].is_kw("SELECT"));
    }

    #[test]
    fn multi_char_operators() {
        let t = tokenize("a <> b <= c || d").unwrap();
        assert_eq!(t[1], Tok::Op("<>"));
        assert_eq!(t[3], Tok::Op("<="));
        assert_eq!(t[5], Tok::Op("||"));
    }
}
