//! An in-memory columnar SQL engine — the RDBMS substrate of the PyTond
//! reproduction.
//!
//! The paper executes its generated SQL on DuckDB (vectorized), Hyper
//! (compiled/pipeline-fused) and LingoDB (research prototype). This crate is
//! a from-scratch engine whose execution profiles emulate those paradigms:
//!
//! * [`Profile::Vectorized`] ("DuckDB-like") — operator-at-a-time execution
//!   with full intermediate materialization between operators and columnar
//!   kernels inside them;
//! * [`Profile::Fused`] ("Hyper-like") — the physical planner collapses
//!   scan→filter→project chains into single-pass fused operators with late
//!   materialization, emulating data-centric compiled pipelines;
//! * [`Profile::Lingo`] ("LingoDB-like") — the fused engine with the
//!   prototype's documented gaps: no window functions (which is why the
//!   paper's Grizzly/LingoDB pairing is impossible) and no aggregates over
//!   disjunctive CASE conditions (the shape of PyTond's Q12 SQL, reproducing
//!   the paper's "join processing could not process our generated SQL for
//!   Q12").
//!
//! All profiles share one SQL front-end (lexer → parser → binder), one
//! logical optimizer (predicate pushdown, projection pruning, join-key
//! extraction, IN-subquery to semi/anti join) and one morsel-parallel
//! runtime driven by `std::thread::scope`.
//!
//! Compilation and execution are split: [`Database::prepare`] runs the
//! front-end + optimizer once and returns a [`PreparedQuery`] that
//! [`Database::execute_prepared`] runs any number of times with zero
//! per-call planning. TondIR programs enter without any SQL text through
//! [`lower::prepare_program`] (the same binder/optimizer, so the direct and
//! text paths produce identical plans); `register`/`append` bump a stats
//! version that tells plan caches when cost-based join orders went stale.
//!
//! ```
//! use pytond_sqldb::{Database, EngineConfig};
//! use pytond_common::{Column, Relation};
//!
//! let mut db = Database::new();
//! db.register(
//!     "t",
//!     Relation::new(vec![
//!         ("a".into(), Column::from_i64(vec![1, 2, 3])),
//!         ("b".into(), Column::from_f64(vec![10.0, 20.0, 30.0])),
//!     ])
//!     .unwrap(),
//! );
//! let out = db
//!     .execute_sql("SELECT a, b * 2 AS b2 FROM t WHERE a >= 2", &EngineConfig::default())
//!     .unwrap();
//! assert_eq!(out.num_rows(), 2);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod bind;
pub mod db;
pub mod exec;
pub mod expr;
pub mod lex;
pub mod lower;
pub mod mv;
pub mod optimize;
pub mod parser;
pub mod pipeline;
pub mod plan;
pub mod stats;
pub mod table;

pub use db::{Database, EngineConfig, PreparedQuery, Profile, QueryTrace, Snapshot};
pub use mv::{RefreshMode, ViewState};
pub use plan::LogicalPlan;
pub use pytond_common::cancel::CancelToken;
