//! Direct TondIR → logical-plan lowering: the in-process fast path of the
//! paper's Figure 1 pipeline.
//!
//! Historically the engine consumed TondIR through SQL *text*: `sqlgen`
//! rendered the program, and every execution re-lexed, re-parsed, re-bound
//! and re-optimized that string. This module lowers an optimized TondIR
//! [`Program`] straight into the engine's structured [`crate::ast`] — one
//! CTE per rule, exactly the shape `sqlgen` renders — and hands it to the
//! shared binder/optimizer ([`Database::prepare_query`]) to produce a
//! [`PreparedQuery`]. No SQL text, lexer or parser is involved.
//!
//! Funneling through the same binder and optimizer as the text path is a
//! deliberate design decision: the binder stays the single source of
//! plan-construction truth, so the direct path cannot drift from the parsed
//! path. The lowering mirrors `pytond-sqlgen` atom-for-atom (FROM-item
//! order, implicit-join equality order, predicate order), which makes the
//! two paths produce **identical** bound plans — results and EXPLAIN join
//! orders are bit-equal, a property the differential suite
//! (`tests/differential_prepare.rs`) asserts over every TPC-H query and
//! hybrid workload. `sqlgen` itself remains the dialect *exporter* (DuckDB /
//! Hyper / LingoDB SQL for external engines) and the differential oracle.
//!
//! Dialect independence: external functions lower to canonical spellings
//! (`SUBSTRING`, `LENGTH`, `YEAR`, ...) that bind to the same engine
//! functions every dialect's rendering parses back to, so one lowered plan
//! serves all three backend profiles (profile-specific *semantic* gates,
//! e.g. LingoDB's window-function rejection, still run at prepare time).

use crate::ast::{AggName, BinOp, Cte, JoinKind, Query, Select, SelectItem, SqlExpr, TableRef};
use crate::db::{Database, PreparedQuery, Profile};
use pytond_common::{Error, Result};
use pytond_tondir::analysis::SchemaEnv;
use pytond_tondir::{
    AggFunc, Atom, Body, Catalog, Const, OuterKind, Program, Rule, ScalarOp, Term,
};
use std::collections::HashMap;

/// One pending outer-join marker: `(kind, left alias, right alias, ON pairs)`.
type OuterMarker<'a> = (
    &'a OuterKind,
    &'a String,
    &'a String,
    &'a Vec<(String, String)>,
);

/// Lowers an optimized TondIR program and prepares it against `db` in one
/// step: the compile-side entry point for the in-process engine.
pub fn prepare_program(
    db: &Database,
    program: &Program,
    catalog: &Catalog,
    profile: Profile,
) -> Result<PreparedQuery> {
    let query = lower_program(program, catalog)?;
    db.prepare_query(&query, profile)
}

/// Lowers a TondIR program into the engine's SQL AST (no text): each rule
/// becomes one CTE (constant relations hoisted as `VALUES` CTEs), and the
/// program's last rule feeds a final `SELECT *`.
pub fn lower_program(program: &Program, catalog: &Catalog) -> Result<Query> {
    if program.rules.is_empty() {
        return Err(Error::CodeGen("empty program".into()));
    }
    let mut env = SchemaEnv::from_catalog(catalog);
    let mut ctes: Vec<Cte> = Vec::new();
    let mut seen_names: Vec<String> = Vec::new();
    let mut const_counter = 0usize;
    for rule in &program.rules {
        if seen_names.contains(&rule.head.rel) {
            return Err(Error::CodeGen(format!(
                "relation '{}' defined twice; the translator must uniquify rule names",
                rule.head.rel
            )));
        }
        let lowerer = RuleLower {
            env: &env,
            const_counter: &mut const_counter,
        };
        let (select, extra_ctes) = lowerer.lower_rule(rule)?;
        ctes.extend(extra_ctes);
        ctes.push(Cte {
            name: rule.head.rel.clone(),
            columns: Some(rule.head.cols.iter().map(|(n, _)| n.clone()).collect()),
            select,
        });
        seen_names.push(rule.head.rel.clone());
        env.define(&rule.head);
    }
    let last = program.rules.last().expect("non-empty");
    let mut body = Select::empty();
    body.items.push(SelectItem::Wildcard);
    body.from.push(TableRef::Table {
        name: last.head.rel.clone(),
        alias: None,
    });
    Ok(Query { ctes, body })
}

/// Folds conjuncts into one left-associative AND chain (the same tree the
/// parser builds from `c1 AND c2 AND c3`).
fn and_join(mut conds: Vec<SqlExpr>) -> Option<SqlExpr> {
    let mut iter = conds.drain(..);
    let first = iter.next()?;
    Some(iter.fold(first, |acc, c| SqlExpr::bin(BinOp::And, acc, c)))
}

struct RuleLower<'a> {
    env: &'a SchemaEnv,
    const_counter: &'a mut usize,
}

impl<'a> RuleLower<'a> {
    /// Lowers one rule body + head into a [`Select`], returning any hoisted
    /// constant-relation CTEs.
    fn lower_rule(self, rule: &Rule) -> Result<(Select, Vec<Cte>)> {
        let mut extra_ctes = Vec::new();
        // Pure constant rule: R(c0) :- (c0 = [...]) becomes a VALUES body.
        if rule.body.atoms.len() == 1 {
            if let Atom::ConstRel { rows, .. } = &rule.body.atoms[0] {
                let mut s = Select::empty();
                s.values = Some(
                    rows.iter()
                        .map(|r| r.iter().map(lower_const).collect())
                        .collect(),
                );
                return Ok((s, extra_ctes));
            }
        }

        // Variable bindings: var → lowered SQL expression.
        let mut bindings: HashMap<String, SqlExpr> = HashMap::new();
        // Extra equality conditions from repeated variables (implicit joins).
        let mut conditions: Vec<SqlExpr> = Vec::new();
        // FROM items in atom order.
        let mut from_items: Vec<TableRef> = Vec::new();
        // Alias of each relation access for outer-join wiring.
        let mut alias_of: HashMap<String, usize> = HashMap::new(); // alias → from_items idx
        let mut outer_markers: Vec<OuterMarker<'_>> = Vec::new();

        for atom in &rule.body.atoms {
            match atom {
                Atom::Rel { rel, alias, vars } => {
                    let cols = self.env.columns(rel).map_err(|e| {
                        Error::CodeGen(format!("rule '{}': {}", rule.head.rel, e.message()))
                    })?;
                    if cols.len() != vars.len() {
                        return Err(Error::CodeGen(format!(
                            "rule '{}': relation '{rel}' has {} columns, access binds {}",
                            rule.head.rel,
                            cols.len(),
                            vars.len()
                        )));
                    }
                    alias_of.insert(alias.clone(), from_items.len());
                    from_items.push(TableRef::Table {
                        name: rel.clone(),
                        alias: (alias != rel).then(|| alias.clone()),
                    });
                    for (col, var) in cols.iter().zip(vars) {
                        let expr = SqlExpr::qcol(alias, col);
                        match bindings.get(var) {
                            Some(prev) => {
                                conditions.push(SqlExpr::bin(BinOp::Eq, prev.clone(), expr));
                            }
                            None => {
                                bindings.insert(var.clone(), expr);
                            }
                        }
                    }
                }
                Atom::ConstRel { vars, rows } => {
                    *self.const_counter += 1;
                    let name = format!("const_rel_{}", self.const_counter);
                    let mut values = Select::empty();
                    values.values = Some(
                        rows.iter()
                            .map(|r| r.iter().map(lower_const).collect())
                            .collect(),
                    );
                    extra_ctes.push(Cte {
                        name: name.clone(),
                        columns: Some(vars.clone()),
                        select: values,
                    });
                    alias_of.insert(name.clone(), from_items.len());
                    from_items.push(TableRef::Table {
                        name: name.clone(),
                        alias: None,
                    });
                    for var in vars {
                        let expr = SqlExpr::qcol(&name, var);
                        match bindings.get(var) {
                            Some(prev) => {
                                conditions.push(SqlExpr::bin(BinOp::Eq, prev.clone(), expr));
                            }
                            None => {
                                bindings.insert(var.clone(), expr);
                            }
                        }
                    }
                }
                Atom::Assign { var, term } => {
                    let lowered = self.lower_term(term, &bindings)?;
                    bindings.insert(var.clone(), lowered);
                }
                Atom::Pred(term) => {
                    conditions.push(self.lower_term(term, &bindings)?);
                }
                Atom::Exists {
                    body,
                    keys,
                    negated,
                } => {
                    conditions.push(self.lower_exists(body, keys, *negated, &bindings)?);
                }
                Atom::OuterJoin {
                    kind,
                    left,
                    right,
                    on,
                } => {
                    outer_markers.push((kind, left, right, on));
                }
            }
        }

        // FROM clause: outer-join markers splice explicit JOIN nodes.
        let from = if outer_markers.is_empty() {
            from_items
        } else {
            self.lower_outer_from(from_items, &alias_of, &outer_markers, &bindings)?
        };

        // SELECT list.
        let mut items = Vec::new();
        for (name, var) in &rule.head.cols {
            let expr = bindings.get(var).ok_or_else(|| {
                Error::CodeGen(format!(
                    "rule '{}': head variable '{var}' is unbound",
                    rule.head.rel
                ))
            })?;
            items.push(SelectItem::Expr {
                expr: expr.clone(),
                alias: Some(name.clone()),
            });
        }
        let mut s = Select::empty();
        s.distinct = rule.head.distinct;
        s.items = items;
        s.from = from;
        s.where_clause = and_join(conditions);
        if let Some(group) = &rule.head.group {
            s.group_by = group
                .iter()
                .map(|v| {
                    bindings
                        .get(v)
                        .cloned()
                        .ok_or_else(|| Error::CodeGen(format!("group variable '{v}' unbound")))
                })
                .collect::<Result<_>>()?;
        }
        if let Some(sort) = &rule.head.sort {
            s.order_by =
                sort.iter()
                    .map(|(v, asc)| {
                        let expr = bindings.get(v).cloned().ok_or_else(|| {
                            Error::CodeGen(format!("sort variable '{v}' unbound"))
                        })?;
                        Ok((expr, *asc))
                    })
                    .collect::<Result<_>>()?;
        }
        s.limit = rule.head.limit;
        Ok((s, extra_ctes))
    }

    /// Splices outer-join markers into a JOIN chain; relations untouched by
    /// markers stay as separate (comma-join) FROM items, in original order.
    fn lower_outer_from(
        &self,
        from_items: Vec<TableRef>,
        alias_of: &HashMap<String, usize>,
        markers: &[OuterMarker<'_>],
        bindings: &HashMap<String, SqlExpr>,
    ) -> Result<Vec<TableRef>> {
        let mut joined: Vec<bool> = vec![false; from_items.len()];
        let mut chain: Option<TableRef> = None;
        for (kind, left, right, on) in markers {
            let li = *alias_of
                .get(*left)
                .ok_or_else(|| Error::CodeGen(format!("outer join alias '{left}' unknown")))?;
            let ri = *alias_of
                .get(*right)
                .ok_or_else(|| Error::CodeGen(format!("outer join alias '{right}' unknown")))?;
            let jkind = match kind {
                OuterKind::Left => JoinKind::Left,
                OuterKind::Right => JoinKind::Right,
                OuterKind::Full => JoinKind::Full,
            };
            let conds: Vec<SqlExpr> =
                on.iter()
                    .map(|(l, r)| {
                        let le = bindings.get(l).cloned().ok_or_else(|| {
                            Error::CodeGen(format!("join variable '{l}' unbound"))
                        })?;
                        let re = bindings.get(r).cloned().ok_or_else(|| {
                            Error::CodeGen(format!("join variable '{r}' unbound"))
                        })?;
                        Ok(SqlExpr::bin(BinOp::Eq, le, re))
                    })
                    .collect::<Result<_>>()?;
            let on_expr = and_join(conds);
            let base = match chain.take() {
                None => from_items[li].clone(),
                Some(c) => {
                    // Later markers extend the one chain; a left side that
                    // is not already part of it would silently drop a
                    // relation, so reject disjoint outer-join groups (same
                    // check as sqlgen, keeping the paths identical).
                    if !joined[li] {
                        return Err(Error::CodeGen(format!(
                            "disjoint outer-join chains are not supported \
                             (alias '{left}' is not part of the join chain)"
                        )));
                    }
                    c
                }
            };
            chain = Some(TableRef::Join {
                left: Box::new(base),
                right: Box::new(from_items[ri].clone()),
                kind: jkind,
                on: on_expr,
            });
            joined[li] = true;
            joined[ri] = true;
        }
        let mut parts = Vec::new();
        if let Some(c) = chain {
            parts.push(c);
        }
        for (i, item) in from_items.into_iter().enumerate() {
            if !joined[i] {
                parts.push(item);
            }
        }
        Ok(parts)
    }

    /// `exists(B)` / `not exists(B)` → `key [NOT] IN (SELECT inner ...)`.
    fn lower_exists(
        &self,
        body: &Body,
        keys: &[(String, String)],
        negated: bool,
        outer_bindings: &HashMap<String, SqlExpr>,
    ) -> Result<SqlExpr> {
        if keys.len() != 1 {
            return Err(Error::CodeGen(
                "exists atoms must correlate on exactly one key (isin)".into(),
            ));
        }
        let mut inner_bindings: HashMap<String, SqlExpr> = HashMap::new();
        let mut inner_from: Vec<TableRef> = Vec::new();
        let mut inner_conds: Vec<SqlExpr> = Vec::new();
        for atom in &body.atoms {
            match atom {
                Atom::Rel { rel, alias, vars } => {
                    let cols = self
                        .env
                        .columns(rel)
                        .map_err(|e| Error::CodeGen(e.message().to_string()))?;
                    inner_from.push(TableRef::Table {
                        name: rel.clone(),
                        alias: (alias != rel).then(|| alias.clone()),
                    });
                    for (col, var) in cols.iter().zip(vars) {
                        let expr = SqlExpr::qcol(alias, col);
                        match inner_bindings.get(var) {
                            Some(prev) => {
                                inner_conds.push(SqlExpr::bin(BinOp::Eq, prev.clone(), expr));
                            }
                            None => {
                                inner_bindings.insert(var.clone(), expr);
                            }
                        }
                    }
                }
                Atom::Pred(t) => {
                    inner_conds.push(self.lower_term(t, &inner_bindings)?);
                }
                Atom::Assign { var, term } => {
                    let lowered = self.lower_term(term, &inner_bindings)?;
                    inner_bindings.insert(var.clone(), lowered);
                }
                other => {
                    return Err(Error::CodeGen(format!(
                        "unsupported atom inside exists: {other:?}"
                    )))
                }
            }
        }
        let (outer_var, inner_var) = &keys[0];
        let outer_expr = outer_bindings
            .get(outer_var)
            .cloned()
            .ok_or_else(|| Error::CodeGen(format!("exists outer key '{outer_var}' unbound")))?;
        let inner_expr = inner_bindings
            .get(inner_var)
            .cloned()
            .ok_or_else(|| Error::CodeGen(format!("exists inner key '{inner_var}' unbound")))?;
        let mut sub = Select::empty();
        sub.items.push(SelectItem::Expr {
            expr: inner_expr,
            alias: None,
        });
        sub.from = inner_from;
        sub.where_clause = and_join(inner_conds);
        Ok(SqlExpr::InSubquery {
            expr: Box::new(outer_expr),
            query: Box::new(sub),
            negated,
        })
    }

    // ---------------- terms ----------------

    fn lower_term(&self, t: &Term, bindings: &HashMap<String, SqlExpr>) -> Result<SqlExpr> {
        Ok(match t {
            Term::Var(v) => bindings
                .get(v)
                .cloned()
                .ok_or_else(|| Error::CodeGen(format!("variable '{v}' unbound")))?,
            Term::Const(c) => lower_const(c),
            Term::Agg { func, arg } => {
                let (name, lowered_arg) = match func {
                    AggFunc::Sum => (AggName::Sum, Some(self.lower_term(arg, bindings)?)),
                    AggFunc::Min => (AggName::Min, Some(self.lower_term(arg, bindings)?)),
                    AggFunc::Max => (AggName::Max, Some(self.lower_term(arg, bindings)?)),
                    AggFunc::Avg => (AggName::Avg, Some(self.lower_term(arg, bindings)?)),
                    AggFunc::Count => {
                        // count over a bare "1" constant means COUNT(*).
                        if matches!(**arg, Term::Const(Const::Int(1))) {
                            (AggName::Count, None)
                        } else {
                            (AggName::Count, Some(self.lower_term(arg, bindings)?))
                        }
                    }
                    AggFunc::CountDistinct => {
                        let inner = self.lower_term(arg, bindings)?;
                        return Ok(SqlExpr::Agg {
                            func: AggName::Count,
                            arg: Some(Box::new(inner)),
                            distinct: true,
                        });
                    }
                };
                SqlExpr::Agg {
                    func: name,
                    arg: lowered_arg.map(Box::new),
                    distinct: false,
                }
            }
            Term::Ext { func, args } => self.lower_ext(func, args, bindings)?,
            Term::If { cond, then, els } => SqlExpr::Case {
                arms: vec![(
                    self.lower_term(cond, bindings)?,
                    self.lower_term(then, bindings)?,
                )],
                else_value: Some(Box::new(self.lower_term(els, bindings)?)),
            },
            Term::Bin { op, lhs, rhs } => {
                if matches!(op, ScalarOp::Like | ScalarOp::NotLike) {
                    let Term::Const(Const::Str(pattern)) = rhs.as_ref() else {
                        return Err(Error::CodeGen(
                            "LIKE requires a string-literal pattern".into(),
                        ));
                    };
                    return Ok(SqlExpr::Like {
                        expr: Box::new(self.lower_term(lhs, bindings)?),
                        pattern: pattern.clone(),
                        negated: matches!(op, ScalarOp::NotLike),
                    });
                }
                SqlExpr::bin(
                    lower_op(*op),
                    self.lower_term(lhs, bindings)?,
                    self.lower_term(rhs, bindings)?,
                )
            }
            Term::Not(inner) => SqlExpr::Not(Box::new(self.lower_term(inner, bindings)?)),
            Term::IsNull(inner) => SqlExpr::IsNull {
                expr: Box::new(self.lower_term(inner, bindings)?),
                negated: false,
            },
        })
    }

    /// External functions lower to the canonical spellings every dialect's
    /// rendering binds back to (see module docs).
    fn lower_ext(
        &self,
        func: &str,
        args: &[Term],
        bindings: &HashMap<String, SqlExpr>,
    ) -> Result<SqlExpr> {
        let lowered: Vec<SqlExpr> = args
            .iter()
            .map(|a| self.lower_term(a, bindings))
            .collect::<Result<_>>()?;
        if func == "uid" {
            let order_by = lowered.first().map(|e| (e.clone(), true)).into_iter();
            return Ok(SqlExpr::RowNumber {
                order_by: order_by.collect(),
            });
        }
        let name = match func {
            "year" => "YEAR",
            "month" => "MONTH",
            "day" => "DAY",
            "substr" => "SUBSTRING",
            "strlen" => "LENGTH",
            "round" => "ROUND",
            "abs" => "ABS",
            "floor" => "FLOOR",
            "ceil" => "CEIL",
            "sqrt" => "SQRT",
            "power" => "POWER",
            "upper" => "UPPER",
            "lower" => "LOWER",
            "coalesce" => "COALESCE",
            "add_months" => "ADD_MONTHS",
            "add_years" => "ADD_YEARS",
            "add_days" => "ADD_DAYS",
            "strpos" => "STRPOS",
            other => {
                return Err(Error::CodeGen(format!(
                    "unknown external function '{other}'"
                )))
            }
        };
        Ok(SqlExpr::Func {
            name: name.to_string(),
            args: lowered,
        })
    }
}

fn lower_op(op: ScalarOp) -> BinOp {
    match op {
        ScalarOp::Add => BinOp::Add,
        ScalarOp::Sub => BinOp::Sub,
        ScalarOp::Mul => BinOp::Mul,
        ScalarOp::Div => BinOp::Div,
        ScalarOp::Mod => BinOp::Mod,
        ScalarOp::Eq => BinOp::Eq,
        ScalarOp::Ne => BinOp::Ne,
        ScalarOp::Lt => BinOp::Lt,
        ScalarOp::Le => BinOp::Le,
        ScalarOp::Gt => BinOp::Gt,
        ScalarOp::Ge => BinOp::Ge,
        ScalarOp::And => BinOp::And,
        ScalarOp::Or => BinOp::Or,
        ScalarOp::Concat => BinOp::Concat,
        // LIKE / NOT LIKE are handled structurally in `lower_term`.
        ScalarOp::Like | ScalarOp::NotLike => unreachable!("LIKE lowered structurally"),
    }
}

fn lower_const(c: &Const) -> SqlExpr {
    match c {
        Const::Int(i) => SqlExpr::Int(*i),
        Const::Float(f) => SqlExpr::Float(*f),
        Const::Bool(b) => SqlExpr::Bool(*b),
        Const::Str(s) => SqlExpr::Str(s.clone()),
        Const::Date(d) => SqlExpr::DateLit(*d),
        Const::Null => SqlExpr::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::EngineConfig;
    use pytond_common::{Column, DType, Relation, Value};
    use pytond_tondir::builder::{assign, cmp, head, rel, rule};
    use pytond_tondir::{Head, TableSchema};

    fn catalog() -> Catalog {
        Catalog::new().with(TableSchema::new(
            "r",
            vec![
                ("a".into(), DType::Int),
                ("b".into(), DType::Float),
                ("c".into(), DType::Float),
            ],
        ))
    }

    fn db() -> Database {
        let db = Database::new();
        db.register(
            "r",
            Relation::new(vec![
                ("a".into(), Column::from_i64(vec![1, 2, 3, 4])),
                ("b".into(), Column::from_f64(vec![1.0, 2.0, 3.0, 4.0])),
                ("c".into(), Column::from_f64(vec![0.5, 0.5, 0.5, 0.5])),
            ])
            .unwrap(),
        );
        db
    }

    #[test]
    fn aggregation_rule_lowers_and_runs() {
        let p = Program {
            rules: vec![rule(
                Head {
                    rel: "r1".into(),
                    cols: vec![("a".into(), "a".into()), ("s".into(), "s".into())],
                    group: Some(vec!["a".into()]),
                    sort: Some(vec![("a".into(), true)]),
                    limit: None,
                    distinct: false,
                },
                vec![
                    rel("r", "r", &["a", "b", "c"]),
                    assign("s", Term::agg(AggFunc::Sum, Term::var("b"))),
                ],
            )],
        };
        let db = db();
        let prepared = prepare_program(&db, &p, &catalog(), Profile::Vectorized).unwrap();
        let out = db
            .execute_prepared(&prepared, &EngineConfig::default())
            .unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.names(), vec!["a", "s"]);
        assert_eq!(out.column("s").unwrap().get(0), Value::Float(1.0));
    }

    #[test]
    fn lowered_ast_matches_parsed_sqlgen_output() {
        // The structural guarantee underpinning the differential suite: the
        // lowered AST for a filter + sort rule is exactly what parsing the
        // sqlgen text yields.
        let p = Program {
            rules: vec![rule(
                Head {
                    rel: "out".into(),
                    cols: vec![("a".into(), "a".into())],
                    group: None,
                    sort: Some(vec![("a".into(), false)]),
                    limit: Some(10),
                    distinct: false,
                },
                vec![
                    rel("r", "r", &["a", "b", "c"]),
                    cmp(ScalarOp::Gt, Term::var("b"), Term::float(5.0)),
                ],
            )],
        };
        let lowered = lower_program(&p, &catalog()).unwrap();
        let parsed = crate::parser::parse_sql(
            "WITH out(a) AS (SELECT r.a AS a FROM r WHERE r.b > 5.0 ORDER BY r.a DESC LIMIT 10) \
             SELECT * FROM out",
        )
        .unwrap();
        assert_eq!(lowered, parsed);
    }

    #[test]
    fn duplicate_rule_names_rejected() {
        let r1 = rule(head("dup", &["a"]), vec![rel("r", "r", &["a", "b", "c"])]);
        let p = Program {
            rules: vec![r1.clone(), r1],
        };
        assert!(lower_program(&p, &catalog()).is_err());
    }

    #[test]
    fn empty_program_rejected() {
        assert!(lower_program(&Program::default(), &catalog()).is_err());
    }

    #[test]
    fn exists_lowers_to_in_subquery() {
        let p = Program {
            rules: vec![rule(
                head("out", &["a"]),
                vec![
                    rel("r", "r", &["a", "b", "c"]),
                    Atom::Exists {
                        body: Body::new(vec![
                            rel("r", "inner1", &["a2", "b2", "c2"]),
                            cmp(ScalarOp::Gt, Term::var("b2"), Term::float(1.0)),
                        ]),
                        keys: vec![("a".into(), "a2".into())],
                        negated: true,
                    },
                ],
            )],
        };
        let lowered = lower_program(&p, &catalog()).unwrap();
        let parsed = crate::parser::parse_sql(
            "WITH out(a) AS (SELECT r.a AS a FROM r WHERE r.a NOT IN \
             (SELECT inner1.a FROM r AS inner1 WHERE inner1.b > 1.0)) SELECT * FROM out",
        )
        .unwrap();
        assert_eq!(lowered, parsed);
    }

    #[test]
    fn const_rel_hoists_values_cte() {
        let p = Program {
            rules: vec![rule(
                head("out", &["a", "c0"]),
                vec![
                    rel("r", "r", &["a", "b", "c"]),
                    Atom::ConstRel {
                        vars: vec!["c0".into()],
                        rows: vec![vec![Const::Int(0)], vec![Const::Int(1)]],
                    },
                ],
            )],
        };
        let lowered = lower_program(&p, &catalog()).unwrap();
        assert_eq!(lowered.ctes.len(), 2);
        assert_eq!(lowered.ctes[0].name, "const_rel_1");
        let db = db();
        let prepared = prepare_program(&db, &p, &catalog(), Profile::Vectorized).unwrap();
        let out = db
            .execute_prepared(&prepared, &EngineConfig::default())
            .unwrap();
        assert_eq!(out.num_rows(), 8); // 4 rows × 2 constants
    }
}
