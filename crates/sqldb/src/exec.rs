//! Physical execution: morsel-parallel operators over materialized batches.
//!
//! The executor walks the logical plan operator-at-a-time. Parallelism is
//! morsel-driven: filters, projections, join probes and partial aggregations
//! split their input row range across `threads` workers via
//! `std::thread::scope`, then merge deterministically (range order for row
//! streams, first-occurrence order for groups — matching the Pandas
//! baseline's group order, which keeps differential tests exact).
//!
//! Profile differences:
//!
//! * **vectorized** — every operator materializes its full output before the
//!   next starts (DuckDB-style operator-at-a-time with intermediate vectors);
//! * **fused** — `Project`/`Aggregate` directly consume the selection vector
//!   of a child `Filter` (late materialization), skipping the intermediate
//!   copy of every column — the observable effect of Hyper-style pipeline
//!   compilation at this engine's abstraction level.

use crate::ast::AggName;
use crate::db::Database;
use crate::expr::BExpr;
use crate::plan::{BAgg, BoundQuery, JKind, LogicalPlan};
use crate::table::{Batch, Schema, StoredTable};
use pytond_common::hash::{encode_value, FxHashMap, FxHashSet};
use pytond_common::{Column, DType, Error, Result, Value};
use std::sync::Arc;

/// Runtime options (derived from [`crate::db::EngineConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Worker threads for morsel-parallel operators.
    pub threads: usize,
    /// Fused (late-materialization) execution.
    pub fused: bool,
    /// Rows per morsel.
    pub morsel: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 1,
            fused: false,
            morsel: 16 * 1024,
        }
    }
}

/// Executes a bound query, materializing CTEs in order.
pub fn execute(db: &Database, q: &BoundQuery, opts: ExecOptions) -> Result<(Batch, Schema)> {
    let mut exec = Executor {
        db,
        temps: FxHashMap::default(),
        opts,
    };
    for (name, plan) in &q.ctes {
        let batch = exec.exec(plan)?;
        let schema = plan.schema().clone();
        exec.temps.insert(
            name.to_lowercase(),
            StoredTable {
                schema: Schema::new(
                    schema
                        .fields
                        .iter()
                        .map(|f| crate::table::Field::new(f.name.clone(), f.dtype))
                        .collect(),
                ),
                batch,
            },
        );
    }
    let batch = exec.exec(&q.root)?;
    Ok((batch, q.root.schema().clone()))
}

struct Executor<'a> {
    db: &'a Database,
    temps: FxHashMap<String, StoredTable>,
    opts: ExecOptions,
}

impl<'a> Executor<'a> {
    fn exec(&self, plan: &LogicalPlan) -> Result<Batch> {
        match plan {
            LogicalPlan::Scan {
                table, projection, ..
            } => {
                let stored = self
                    .temps
                    .get(&table.to_lowercase())
                    .or_else(|| self.db.table(table))
                    .ok_or_else(|| Error::Exec(format!("unknown table '{table}'")))?;
                let batch = match projection {
                    None => stored.batch.clone(),
                    Some(cols) => Batch {
                        cols: cols.iter().map(|&i| stored.batch.cols[i].clone()).collect(),
                    },
                };
                Ok(batch)
            }
            LogicalPlan::Values { schema, rows } => {
                let mut cols: Vec<Column> = schema
                    .fields
                    .iter()
                    .map(|f| Column::with_capacity(f.dtype, rows.len()))
                    .collect();
                for row in rows {
                    for (c, v) in cols.iter_mut().zip(row) {
                        c.push(v.clone())?;
                    }
                }
                Ok(Batch::from_columns(cols))
            }
            LogicalPlan::Filter { input, pred } => {
                let batch = self.exec(input)?;
                let sel = self.filter_sel(&batch, pred)?;
                Ok(batch.gather(&sel))
            }
            LogicalPlan::Project { exprs, input, .. } => {
                let (batch, sel) = self.exec_with_sel(input)?;
                self.project(&batch, exprs, sel.as_deref())
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                left_keys,
                right_keys,
                residual,
                ..
            } => {
                let lb = self.exec(left)?;
                let rb = self.exec(right)?;
                self.join(&lb, &rb, *kind, left_keys, right_keys, residual.as_ref())
            }
            LogicalPlan::Aggregate {
                input, group, aggs, ..
            } => {
                let (batch, sel) = self.exec_with_sel(input)?;
                self.aggregate(&batch, sel.as_deref(), group, aggs)
            }
            LogicalPlan::Sort { input, keys } => {
                let batch = self.exec(input)?;
                self.sort(&batch, keys)
            }
            LogicalPlan::Limit { input, n } => {
                let batch = self.exec(input)?;
                let keep: Vec<usize> = (0..batch.num_rows().min(*n as usize)).collect();
                Ok(batch.gather(&keep))
            }
            LogicalPlan::Window { input, order, .. } => {
                let batch = self.exec(input)?;
                self.window(&batch, order)
            }
            LogicalPlan::Distinct { input } => {
                let batch = self.exec(input)?;
                let n = batch.num_rows();
                let mut seen: FxHashSet<Vec<u8>> = FxHashSet::default();
                let mut keep = Vec::new();
                let mut buf = Vec::new();
                for i in 0..n {
                    buf.clear();
                    for c in &batch.cols {
                        encode_value(&mut buf, &c.get(i));
                    }
                    if seen.insert(buf.clone()) {
                        keep.push(i);
                    }
                }
                Ok(batch.gather(&keep))
            }
        }
    }

    /// Fused-profile hook: when the child is a Filter, return the *unfiltered*
    /// child batch plus the selection vector so the parent evaluates lazily.
    fn exec_with_sel(&self, input: &LogicalPlan) -> Result<(Batch, Option<Vec<usize>>)> {
        if self.opts.fused {
            if let LogicalPlan::Filter { input: inner, pred } = input {
                let batch = self.exec(inner)?;
                let sel = self.filter_sel(&batch, pred)?;
                return Ok((batch, Some(sel)));
            }
        }
        Ok((self.exec(input)?, None))
    }

    /// Evaluates a predicate, returning the surviving row indices.
    fn filter_sel(&self, batch: &Batch, pred: &BExpr) -> Result<Vec<usize>> {
        let n = batch.num_rows();
        let chunks = par_ranges(n, self.opts, |start, end| {
            let sel: Vec<usize> = (start..end).collect();
            let mask = pred.eval_mask(batch, Some(&sel))?;
            Ok(sel
                .into_iter()
                .zip(mask)
                .filter_map(|(i, keep)| keep.then_some(i))
                .collect::<Vec<usize>>())
        })?;
        Ok(chunks.concat())
    }

    fn project(&self, batch: &Batch, exprs: &[BExpr], sel: Option<&[usize]>) -> Result<Batch> {
        let n = sel.map_or(batch.num_rows(), |s| s.len());
        let mut out_cols: Vec<Column> = Vec::with_capacity(exprs.len());
        for e in exprs {
            let chunks = par_ranges(n, self.opts, |start, end| {
                let local_sel: Vec<usize> = match sel {
                    Some(s) => s[start..end].to_vec(),
                    None => (start..end).collect(),
                };
                e.eval(batch, Some(&local_sel))
            })?;
            let mut it = chunks.into_iter();
            let mut col = it.next().unwrap_or_else(|| Column::new(DType::Int));
            for c in it {
                col.append(&c)?;
            }
            out_cols.push(col);
        }
        Ok(Batch::from_columns(out_cols))
    }

    // ---------------- join ----------------

    fn join(
        &self,
        left: &Batch,
        right: &Batch,
        kind: JKind,
        left_keys: &[BExpr],
        right_keys: &[BExpr],
        residual: Option<&BExpr>,
    ) -> Result<Batch> {
        // Keyless joins.
        if left_keys.is_empty() {
            return self.keyless_join(left, right, kind, residual);
        }
        // Build: hash the right side.
        let rkey_cols: Vec<Column> = right_keys
            .iter()
            .map(|e| e.eval(right, None))
            .collect::<Result<_>>()?;
        let mut table: FxHashMap<Vec<u8>, Vec<u32>> = FxHashMap::default();
        {
            let mut buf = Vec::new();
            for i in 0..right.num_rows() {
                buf.clear();
                let mut null_key = false;
                for k in &rkey_cols {
                    let v = normalize_key(k.get(i));
                    if v.is_null() {
                        null_key = true;
                        break;
                    }
                    encode_value(&mut buf, &v);
                }
                if !null_key {
                    table.entry(buf.clone()).or_default().push(i as u32);
                }
            }
        }
        // Probe: left side, in parallel ranges.
        let lkey_cols: Vec<Column> = left_keys
            .iter()
            .map(|e| e.eval(left, None))
            .collect::<Result<_>>()?;
        let keep_unmatched_left = matches!(kind, JKind::Left | JKind::Full);
        let probe_chunks = par_ranges(left.num_rows(), self.opts, |start, end| {
            let mut li: Vec<Option<usize>> = Vec::new();
            let mut ri: Vec<Option<usize>> = Vec::new();
            let mut matched_right: Vec<u32> = Vec::new();
            let mut buf = Vec::new();
            for i in start..end {
                buf.clear();
                let mut null_key = false;
                for k in &lkey_cols {
                    let v = normalize_key(k.get(i));
                    if v.is_null() {
                        null_key = true;
                        break;
                    }
                    encode_value(&mut buf, &v);
                }
                let matches = if null_key {
                    None
                } else {
                    table.get(buf.as_slice())
                };
                match (matches, kind) {
                    (Some(rows), JKind::Semi) => {
                        if !rows.is_empty() {
                            li.push(Some(i));
                            ri.push(None);
                        }
                    }
                    (Some(rows), JKind::Anti) => {
                        if rows.is_empty() {
                            li.push(Some(i));
                            ri.push(None);
                        }
                    }
                    (None, JKind::Anti) => {
                        li.push(Some(i));
                        ri.push(None);
                    }
                    (None, JKind::Semi) => {}
                    (Some(rows), _) => {
                        for &r in rows {
                            li.push(Some(i));
                            ri.push(Some(r as usize));
                            matched_right.push(r);
                        }
                    }
                    (None, _) => {
                        if keep_unmatched_left {
                            li.push(Some(i));
                            ri.push(None);
                        }
                    }
                }
            }
            Ok((li, ri, matched_right))
        })?;
        let mut left_idx: Vec<Option<usize>> = Vec::new();
        let mut right_idx: Vec<Option<usize>> = Vec::new();
        let mut right_matched = vec![false; right.num_rows()];
        for (li, ri, mr) in probe_chunks {
            left_idx.extend(li);
            right_idx.extend(ri);
            for r in mr {
                right_matched[r as usize] = true;
            }
        }
        if matches!(kind, JKind::Right | JKind::Full) {
            for (r, m) in right_matched.iter().enumerate() {
                if !m {
                    left_idx.push(None);
                    right_idx.push(Some(r));
                }
            }
        }
        let mut out = match kind {
            JKind::Semi | JKind::Anti => {
                let li: Vec<usize> = left_idx.iter().map(|x| x.unwrap()).collect();
                left.gather(&li)
            }
            _ => {
                let mut cols = left.gather_opt(&left_idx).cols;
                cols.extend(right.gather_opt(&right_idx).cols);
                Batch { cols }
            }
        };
        if let Some(res) = residual {
            let sel = self.filter_sel(&out, res)?;
            out = out.gather(&sel);
        }
        Ok(out)
    }

    fn keyless_join(
        &self,
        left: &Batch,
        right: &Batch,
        kind: JKind,
        residual: Option<&BExpr>,
    ) -> Result<Batch> {
        match kind {
            JKind::Semi | JKind::Anti => {
                // Uncorrelated EXISTS: keep all or nothing.
                let keep = (right.num_rows() > 0) == matches!(kind, JKind::Semi);
                if keep {
                    Ok(left.clone())
                } else {
                    Ok(left.gather(&[]))
                }
            }
            _ => {
                let (ln, rn) = (left.num_rows(), right.num_rows());
                let mut li = Vec::with_capacity(ln * rn);
                let mut ri = Vec::with_capacity(ln * rn);
                for i in 0..ln {
                    for j in 0..rn {
                        li.push(i);
                        ri.push(j);
                    }
                }
                let mut cols = left.gather(&li).cols;
                cols.extend(right.gather(&ri).cols);
                let mut out = Batch { cols };
                if let Some(res) = residual {
                    let sel = self.filter_sel(&out, res)?;
                    out = out.gather(&sel);
                }
                Ok(out)
            }
        }
    }

    // ---------------- aggregate ----------------

    fn aggregate(
        &self,
        batch: &Batch,
        sel: Option<&[usize]>,
        group: &[BExpr],
        aggs: &[BAgg],
    ) -> Result<Batch> {
        let n = sel.map_or(batch.num_rows(), |s| s.len());
        // Evaluate group keys and aggregate arguments once, over the selection.
        let key_cols: Vec<Column> = group
            .iter()
            .map(|e| self.eval_parallel(batch, e, sel, n))
            .collect::<Result<_>>()?;
        let arg_cols: Vec<Option<Column>> = aggs
            .iter()
            .map(|a| {
                a.arg
                    .as_ref()
                    .map(|e| self.eval_parallel(batch, e, sel, n))
                    .transpose()
            })
            .collect::<Result<_>>()?;

        let arg_is_int: Vec<bool> = arg_cols
            .iter()
            .map(|c| c.as_ref().map_or(true, |c| c.dtype() == DType::Int))
            .collect();
        // Parallel partial aggregation.
        let arg_is_int_ref = &arg_is_int;
        let partials = par_ranges(n, self.opts, |start, end| {
            let mut map: FxHashMap<Vec<u8>, usize> = FxHashMap::default();
            let mut states: Vec<GroupState> = Vec::new();
            let mut buf = Vec::new();
            for i in start..end {
                buf.clear();
                for k in &key_cols {
                    encode_value(&mut buf, &normalize_key(k.get(i)));
                }
                let g = match map.get(buf.as_slice()) {
                    Some(&g) => g,
                    None => {
                        map.insert(buf.clone(), states.len());
                        states.push(GroupState::new(i, aggs, arg_is_int_ref));
                        states.len() - 1
                    }
                };
                states[g].update(i, aggs, &arg_cols)?;
            }
            Ok((map, states))
        })?;
        // Merge partials, ordering groups by global first occurrence.
        let mut global: FxHashMap<Vec<u8>, usize> = FxHashMap::default();
        let mut states: Vec<GroupState> = Vec::new();
        for (map, part_states) in partials {
            for (key, gi) in map {
                match global.get(&key) {
                    Some(&g) => states[g].merge(&part_states[gi], aggs),
                    None => {
                        global.insert(key, states.len());
                        states.push(part_states[gi].clone());
                    }
                }
            }
        }
        states.sort_by_key(|s| s.first_row);

        // Scalar aggregation over empty input still yields one row.
        if group.is_empty() && states.is_empty() {
            states.push(GroupState::new(0, aggs, &arg_is_int));
        }

        // Assemble output: group keys then aggregates.
        let mut out_cols = Vec::with_capacity(group.len() + aggs.len());
        for k in &key_cols {
            let firsts: Vec<usize> = states.iter().map(|s| s.first_row).collect();
            out_cols.push(k.gather(&firsts));
        }
        for (ai, agg) in aggs.iter().enumerate() {
            let vals: Vec<Value> = states.iter().map(|s| s.finalize(ai, agg)).collect();
            out_cols.push(Column::from_values(&vals)?);
        }
        Ok(Batch::from_columns(out_cols))
    }

    fn eval_parallel(
        &self,
        batch: &Batch,
        e: &BExpr,
        sel: Option<&[usize]>,
        n: usize,
    ) -> Result<Column> {
        let chunks = par_ranges(n, self.opts, |start, end| {
            let local: Vec<usize> = match sel {
                Some(s) => s[start..end].to_vec(),
                None => (start..end).collect(),
            };
            e.eval(batch, Some(&local))
        })?;
        let mut it = chunks.into_iter();
        let mut col = it.next().unwrap_or_else(|| Column::new(DType::Int));
        for c in it {
            col.append(&c)?;
        }
        Ok(col)
    }

    // ---------------- sort / window ----------------

    fn sort(&self, batch: &Batch, keys: &[(BExpr, bool)]) -> Result<Batch> {
        let n = batch.num_rows();
        let key_cols: Vec<(Column, bool)> = keys
            .iter()
            .map(|(e, asc)| Ok((e.eval(batch, None)?, *asc)))
            .collect::<Result<_>>()?;
        let indices = self.sorted_indices(n, &key_cols);
        Ok(batch.gather(&indices))
    }

    fn sorted_indices(&self, n: usize, key_cols: &[(Column, bool)]) -> Vec<usize> {
        let cmp = |&a: &usize, &b: &usize| {
            for (col, asc) in key_cols {
                let ord = col.get(a).total_cmp(&col.get(b));
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b) // stable tie-break on original position
        };
        let mut idx: Vec<usize> = (0..n).collect();
        if self.opts.threads > 1 && n > 4 * self.opts.morsel {
            // Parallel chunk sort + k-way merge.
            let chunk = n.div_ceil(self.opts.threads);
            let mut chunks: Vec<Vec<usize>> = idx.chunks(chunk).map(|c| c.to_vec()).collect();
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                for c in &mut chunks {
                    handles.push(s.spawn(|| c.sort_by(cmp)));
                }
            });
            // k-way merge
            let mut heads = vec![0usize; chunks.len()];
            let mut out = Vec::with_capacity(n);
            loop {
                let mut best: Option<(usize, usize)> = None; // (chunk, idx value)
                for (ci, c) in chunks.iter().enumerate() {
                    if heads[ci] < c.len() {
                        let cand = c[heads[ci]];
                        best = match best {
                            None => Some((ci, cand)),
                            Some((bci, bv)) => {
                                if cmp(&cand, &bv) == std::cmp::Ordering::Less {
                                    Some((ci, cand))
                                } else {
                                    Some((bci, bv))
                                }
                            }
                        };
                    }
                }
                match best {
                    Some((ci, v)) => {
                        out.push(v);
                        heads[ci] += 1;
                    }
                    None => break,
                }
            }
            out
        } else {
            idx.sort_by(cmp);
            idx
        }
    }

    fn window(&self, batch: &Batch, order: &[(BExpr, bool)]) -> Result<Batch> {
        let n = batch.num_rows();
        let ranks: Vec<i64> = if order.is_empty() {
            (1..=n as i64).collect()
        } else {
            let key_cols: Vec<(Column, bool)> = order
                .iter()
                .map(|(e, asc)| Ok((e.eval(batch, None)?, *asc)))
                .collect::<Result<_>>()?;
            let sorted = self.sorted_indices(n, &key_cols);
            let mut ranks = vec![0i64; n];
            for (pos, &row) in sorted.iter().enumerate() {
                ranks[row] = pos as i64 + 1;
            }
            ranks
        };
        let mut cols = batch.cols.clone();
        cols.push(Arc::new(Column::from_i64(ranks)));
        Ok(Batch { cols })
    }
}

/// Join/group keys normalize Int to Float encoding only when needed; here we
/// widen ints to floats so `1 = 1.0` matches across differently-typed sides.
fn normalize_key(v: Value) -> Value {
    match v {
        Value::Int(i) => Value::Float(i as f64),
        Value::Date(d) => Value::Float(f64::from(d)),
        Value::Bool(b) => Value::Float(f64::from(u8::from(b))),
        other => other,
    }
}

/// Splits `[0, n)` into per-thread ranges and runs `f` on each concurrently.
/// Results are returned in range order (deterministic).
fn par_ranges<T: Send>(
    n: usize,
    opts: ExecOptions,
    f: impl Fn(usize, usize) -> Result<T> + Sync + Send,
) -> Result<Vec<T>> {
    let threads = opts.threads.max(1);
    if threads == 1 || n <= opts.morsel {
        return Ok(vec![f(0, n)?]);
    }
    let chunk = n.div_ceil(threads).max(1);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
        .filter(|(s, e)| s < e)
        .collect();
    let fref = &f;
    let results: Vec<Result<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(s, e)| scope.spawn(move || fref(s, e)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    results.into_iter().collect()
}

// ---------------- aggregate state ----------------

/// Per-group accumulator states.
#[derive(Debug, Clone)]
struct GroupState {
    first_row: usize,
    accs: Vec<Acc>,
}

#[derive(Debug, Clone)]
enum Acc {
    SumI(i64, bool), // value, saw-any
    SumF(f64, bool),
    Count(i64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg(f64, i64),
    Distinct(FxHashSet<Vec<u8>>),
}

impl GroupState {
    fn new(first_row: usize, aggs: &[BAgg], arg_is_int: &[bool]) -> GroupState {
        let accs = aggs
            .iter()
            .enumerate()
            .map(|(i, a)| match (a.func, a.distinct) {
                (_, true) => Acc::Distinct(FxHashSet::default()),
                (AggName::Count, _) => Acc::Count(0),
                (AggName::Avg, _) => Acc::Avg(0.0, 0),
                (AggName::Min, _) => Acc::Min(None),
                (AggName::Max, _) => Acc::Max(None),
                (AggName::Sum, _) => {
                    if arg_is_int.get(i).copied().unwrap_or(false) && a.arg.is_some() {
                        Acc::SumI(0, false)
                    } else {
                        Acc::SumF(0.0, false)
                    }
                }
            })
            .collect();
        GroupState { first_row, accs }
    }

    fn update(&mut self, row: usize, aggs: &[BAgg], args: &[Option<Column>]) -> Result<()> {
        for (ai, agg) in aggs.iter().enumerate() {
            let v = match &args[ai] {
                Some(col) => col.get(row),
                None => Value::Int(1), // COUNT(*)
            };
            match &mut self.accs[ai] {
                Acc::Count(c) => {
                    if agg.arg.is_none() || !v.is_null() {
                        *c += 1;
                    }
                }
                Acc::SumF(s, any) => {
                    if let Some(x) = v.as_f64() {
                        *s += x;
                        *any = true;
                    }
                }
                Acc::SumI(s, any) => {
                    if let Some(x) = v.as_i64() {
                        *s += x;
                        *any = true;
                    }
                }
                Acc::Avg(s, c) => {
                    if let Some(x) = v.as_f64() {
                        *s += x;
                        *c += 1;
                    }
                }
                Acc::Min(m) => {
                    if !v.is_null()
                        && m.as_ref()
                            .map_or(true, |cur| v.sql_cmp(cur) == Some(std::cmp::Ordering::Less))
                    {
                        *m = Some(v);
                    }
                }
                Acc::Max(m) => {
                    if !v.is_null()
                        && m.as_ref().map_or(true, |cur| {
                            v.sql_cmp(cur) == Some(std::cmp::Ordering::Greater)
                        })
                    {
                        *m = Some(v);
                    }
                }
                Acc::Distinct(set) => {
                    if !v.is_null() {
                        let mut buf = Vec::new();
                        encode_value(&mut buf, &normalize_key(v));
                        set.insert(buf);
                    }
                }
            }
        }
        Ok(())
    }

    fn merge(&mut self, other: &GroupState, _aggs: &[BAgg]) {
        self.first_row = self.first_row.min(other.first_row);
        for (a, b) in self.accs.iter_mut().zip(&other.accs) {
            match (a, b) {
                (Acc::Count(x), Acc::Count(y)) => *x += y,
                (Acc::SumF(x, anyx), Acc::SumF(y, anyy)) => {
                    *x += y;
                    *anyx |= *anyy;
                }
                (Acc::SumI(x, anyx), Acc::SumI(y, anyy)) => {
                    *x += y;
                    *anyx |= *anyy;
                }
                (Acc::Avg(xs, xc), Acc::Avg(ys, yc)) => {
                    *xs += ys;
                    *xc += yc;
                }
                (Acc::Min(x), Acc::Min(y)) => {
                    if let Some(yv) = y {
                        if x.as_ref()
                            .map_or(true, |xv| yv.sql_cmp(xv) == Some(std::cmp::Ordering::Less))
                        {
                            *x = Some(yv.clone());
                        }
                    }
                }
                (Acc::Max(x), Acc::Max(y)) => {
                    if let Some(yv) = y {
                        if x.as_ref().map_or(true, |xv| {
                            yv.sql_cmp(xv) == Some(std::cmp::Ordering::Greater)
                        }) {
                            *x = Some(yv.clone());
                        }
                    }
                }
                (Acc::Distinct(x), Acc::Distinct(y)) => {
                    x.extend(y.iter().cloned());
                }
                _ => unreachable!("accumulator kinds align"),
            }
        }
    }

    fn finalize(&self, ai: usize, agg: &BAgg) -> Value {
        match &self.accs[ai] {
            Acc::Count(c) => Value::Int(*c),
            Acc::SumF(s, any) => {
                if *any {
                    Value::Float(*s)
                } else {
                    Value::Null
                }
            }
            Acc::SumI(s, any) => {
                if *any {
                    Value::Int(*s)
                } else {
                    Value::Null
                }
            }
            Acc::Avg(s, c) => {
                if *c > 0 {
                    Value::Float(s / *c as f64)
                } else {
                    Value::Null
                }
            }
            Acc::Min(m) | Acc::Max(m) => m.clone().unwrap_or(Value::Null),
            Acc::Distinct(set) => match agg.func {
                AggName::Count => Value::Int(set.len() as i64),
                _ => Value::Null,
            },
        }
    }
}
